//! Lockstep differential co-simulation.
//!
//! Runs the same [`ProgramImage`] on a plain-ROM reference machine and
//! on compressed-ROM variants (direct image, v1 container round-trip,
//! v2 container round-trip — one per [`DegradePolicy`]), comparing the
//! full architectural state after every retired instruction: PC, the 32
//! GPRs, hi/lo, the CP1 register file and condition flag, program
//! output, the ordered data-access log, and the memory words each
//! instruction touched. The first mismatch produces a
//! [`DivergenceReport`] with a disassembled window around the faulting
//! PC; the caller may attach a shrunk repro via [`minimize_lines`].

use std::fmt;

use ccrp::{CompressedImage, DegradePolicy};
use ccrp_asm::ProgramImage;
use ccrp_compress::{BlockAlignment, ByteCode, ByteHistogram, PositionalCode, PositionalHistogram};
use ccrp_emu::{Machine, MachineConfig, TraceSink};
use ccrp_isa::{disassemble_word, FpReg, Reg};

use crate::lockstep::{run_lockstep, LockstepVariant};

/// Records the data accesses one instruction performed, in order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecordingSink {
    /// `(address, is_store)` pairs in execution order.
    pub accesses: Vec<(u32, bool)>,
}

impl TraceSink for RecordingSink {
    fn instruction(&mut self, _pc: u32) {}

    fn data_access(&mut self, addr: u32, store: bool) {
        self.accesses.push((addr, store));
    }
}

/// First observed difference between the reference and a variant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DivergenceReport {
    /// Retired-instruction count at the divergence (1-based; 0 means
    /// the variant failed to construct).
    pub step: u64,
    /// Address of the instruction that diverged.
    pub pc: u32,
    /// Which compressed variant diverged.
    pub variant: &'static str,
    /// The state component that differed (e.g. `"$t3"`, `"pc"`).
    pub field: String,
    /// Reference vs variant values.
    pub detail: String,
    /// Disassembled window around [`pc`](Self::pc), faulting line
    /// marked with `>`.
    pub window: Vec<String>,
    /// Minimized source repro, when the shrinker found one.
    pub minimized: Option<String>,
}

impl fmt::Display for DivergenceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "divergence on `{}` at step {} pc {:#010x}: {} ({})",
            self.variant, self.step, self.pc, self.field, self.detail
        )?;
        for line in &self.window {
            writeln!(f, "  {line}")?;
        }
        if let Some(minimized) = &self.minimized {
            writeln!(f, "minimized repro:")?;
            for line in minimized.lines() {
                writeln!(f, "  {line}")?;
            }
        }
        Ok(())
    }
}

/// Outcome of one lockstep run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CosimVerdict {
    /// Every variant matched the reference to completion.
    Match {
        /// Retired instructions (identical across machines).
        instructions: u64,
    },
    /// A variant disagreed with the reference.
    Divergence(Box<DivergenceReport>),
}

/// Builds the compressed ROM for `image` with the workspace's standard
/// byte-Huffman code.
///
/// # Errors
///
/// Describes the compression failure (empty text, misaligned base).
pub fn build_rom(image: &ProgramImage) -> Result<CompressedImage, String> {
    let text = image.text_bytes();
    let code = ByteCode::preselected(&ByteHistogram::of(text))
        .map_err(|e| format!("code selection failed: {e}"))?;
    CompressedImage::build(image.text_base(), text, code, BlockAlignment::Word)
        .map_err(|e| format!("compressed image build failed: {e}"))
}

/// One compressed execution variant for [`run_cosim_with`].
pub struct CosimVariant {
    /// Display label, e.g. `"v1-trap"`.
    pub label: &'static str,
    /// The ROM this variant fetches from.
    pub rom: CompressedImage,
    /// Its degradation policy.
    pub policy: DegradePolicy,
}

/// Runs the standard variant matrix for `image`: the directly-built ROM
/// under [`DegradePolicy::Abort`] (eager expansion), a v1-container
/// round-trip under [`DegradePolicy::Trap`], a v2-container round-trip
/// (header + per-block CRCs) under [`DegradePolicy::Retry`], and a
/// positional-codec v2 round-trip under [`DegradePolicy::Abort`] so the
/// non-default codec path is lockstep-checked too.
///
/// # Errors
///
/// Infrastructure failures — compression or container round-trip broke,
/// or the *reference* machine faulted / exceeded `max_steps`, which
/// means the generated program itself is invalid.
pub fn run_cosim(image: &ProgramImage, max_steps: u64) -> Result<CosimVerdict, String> {
    run_cosim_with(image, standard_variants(image)?, max_steps)
}

/// The standard variant matrix shared by [`run_cosim`] and the segmented
/// runner.
pub(crate) fn standard_variants(image: &ProgramImage) -> Result<Vec<CosimVariant>, String> {
    let rom = build_rom(image)?;
    let v1 = CompressedImage::from_bytes(&rom.to_bytes())
        .map_err(|e| format!("v1 container round-trip failed: {e}"))?;
    let v2 = CompressedImage::from_bytes(&rom.to_bytes_v2())
        .map_err(|e| format!("v2 container round-trip failed: {e}"))?;
    // A self-trained positional ROM, round-tripped through a v2
    // container: exercises the codec-id byte, the codec-params section,
    // and the positional decode path under lockstep comparison.
    let positional = {
        let text = image.text_bytes();
        let code = PositionalCode::preselected(&PositionalHistogram::of(text))
            .map_err(|e| format!("positional code selection failed: {e}"))?;
        let rom = CompressedImage::build_with_codec(
            image.text_base(),
            text,
            std::sync::Arc::new(code),
            BlockAlignment::Word,
        )
        .map_err(|e| format!("positional image build failed: {e}"))?;
        CompressedImage::from_bytes(&rom.to_bytes_v2())
            .map_err(|e| format!("positional v2 container round-trip failed: {e}"))?
    };
    Ok(vec![
        CosimVariant {
            label: "direct-abort",
            rom,
            policy: DegradePolicy::Abort,
        },
        CosimVariant {
            label: "v1-trap",
            rom: v1,
            policy: DegradePolicy::Trap,
        },
        CosimVariant {
            label: "v2-retry",
            rom: v2,
            policy: DegradePolicy::Retry { attempts: 2 },
        },
        CosimVariant {
            label: "positional-v2",
            rom: positional,
            policy: DegradePolicy::Abort,
        },
    ])
}

/// Runs `image` on the reference machine and on each variant in
/// lockstep, through the ISA-generic [`run_lockstep`] driver. A variant
/// that fails to construct (eager expansion of a corrupt ROM under
/// Abort) is reported as a step-0 divergence — the integrity machinery
/// caught the corruption before execution.
///
/// # Errors
///
/// See [`run_cosim`]; variant misbehaviour is a
/// [`CosimVerdict::Divergence`], never an `Err`.
pub fn run_cosim_with(
    image: &ProgramImage,
    variants: Vec<CosimVariant>,
    max_steps: u64,
) -> Result<CosimVerdict, String> {
    let config = MachineConfig {
        max_steps,
        ..MachineConfig::default()
    };
    let reference = Machine::with_config(image, config.clone());
    let variants = variants
        .into_iter()
        .map(|variant| LockstepVariant {
            label: variant.label,
            machine: Machine::with_compressed_text(
                image,
                &variant.rom,
                variant.policy,
                config.clone(),
            )
            .map_err(|err| format!("{err:?}")),
        })
        .collect();
    run_lockstep(
        reference,
        variants,
        image.entry(),
        max_steps,
        |reference, variant, ref_accesses, var_accesses| {
            compare_state(reference, variant, ref_accesses, var_accesses)
        },
        |pc| disasm_window(image, pc),
    )
}

/// Compares the full post-step architectural state, returning the first
/// differing `(field, reference-vs-variant detail)`.
pub(crate) fn compare_state(
    reference: &Machine,
    variant: &Machine,
    ref_accesses: &[(u32, bool)],
    var_accesses: &[(u32, bool)],
) -> Option<(String, String)> {
    if reference.pc() != variant.pc() {
        return Some((
            "pc".to_string(),
            format!("{:#010x} vs {:#010x}", reference.pc(), variant.pc()),
        ));
    }
    for reg in Reg::all() {
        let (a, b) = (reference.reg(reg), variant.reg(reg));
        if a != b {
            return Some((reg.to_string(), format!("{a:#010x} vs {b:#010x}")));
        }
    }
    if reference.hi() != variant.hi() || reference.lo() != variant.lo() {
        return Some((
            "hi/lo".to_string(),
            format!(
                "{:#010x}:{:#010x} vs {:#010x}:{:#010x}",
                reference.hi(),
                reference.lo(),
                variant.hi(),
                variant.lo()
            ),
        ));
    }
    for reg in FpReg::all() {
        let (a, b) = (reference.fp_bits(reg), variant.fp_bits(reg));
        if a != b {
            return Some((reg.to_string(), format!("{a:#010x} vs {b:#010x}")));
        }
    }
    if reference.fp_cond() != variant.fp_cond() {
        return Some((
            "fp_cond".to_string(),
            format!("{} vs {}", reference.fp_cond(), variant.fp_cond()),
        ));
    }
    if reference.exit_code() != variant.exit_code() {
        return Some((
            "exit_code".to_string(),
            format!("{:?} vs {:?}", reference.exit_code(), variant.exit_code()),
        ));
    }
    if ref_accesses != var_accesses {
        return Some((
            "data-access log".to_string(),
            format!("{ref_accesses:x?} vs {var_accesses:x?}"),
        ));
    }
    for &(addr, _store) in ref_accesses {
        let word = addr & !3;
        let (a, b) = (reference.read_word(word), variant.read_word(word));
        if a != b {
            return Some((format!("mem[{word:#010x}]"), format!("{a:x?} vs {b:x?}")));
        }
    }
    if reference.output() != variant.output() {
        return Some((
            "output".to_string(),
            format!("{:?} vs {:?}", reference.output(), variant.output()),
        ));
    }
    None
}

/// Disassembles ±4 instructions around `pc`, marking the faulting line.
pub(crate) fn disasm_window(image: &ProgramImage, pc: u32) -> Vec<String> {
    let mut out = Vec::new();
    for slot in -4i64..=4 {
        let addr = i64::from(pc) + slot * 4;
        let Ok(addr) = u32::try_from(addr) else {
            continue;
        };
        if let Some(word) = image.word_at(addr) {
            let marker = if addr == pc { '>' } else { ' ' };
            out.push(format!("{marker} {addr:#010x}  {}", disassemble_word(word)));
        }
    }
    out
}

/// Greedy line-removal shrinker. Repeatedly deletes single `removable`
/// lines (highest index first, so earlier indices stay valid), keeping
/// a deletion only when `still_fails` accepts the shrunk source, until
/// a pass removes nothing or `budget` checks are spent. `still_fails`
/// must re-validate the candidate end to end (re-assemble, re-run), so
/// a deletion that breaks assembly or termination is simply rejected.
pub fn minimize_lines(
    lines: &[String],
    removable: &[usize],
    budget: usize,
    mut still_fails: impl FnMut(&str) -> bool,
) -> Vec<String> {
    let mut kept: Vec<Option<&String>> = lines.iter().map(Some).collect();
    let mut checks = 0usize;
    loop {
        let mut shrunk = false;
        for &index in removable.iter().rev() {
            if checks >= budget {
                return render(&kept);
            }
            let Some(slot) = kept.get_mut(index) else {
                continue;
            };
            let Some(line) = slot.take() else {
                continue;
            };
            checks += 1;
            if still_fails(&render_source(&kept)) {
                shrunk = true;
            } else if let Some(slot) = kept.get_mut(index) {
                *slot = Some(line);
            }
        }
        if !shrunk {
            return render(&kept);
        }
    }
}

fn render(kept: &[Option<&String>]) -> Vec<String> {
    kept.iter().flatten().map(|s| (*s).clone()).collect()
}

fn render_source(kept: &[Option<&String>]) -> String {
    let mut out = String::new();
    for line in kept.iter().flatten() {
        out.push_str(line);
        out.push('\n');
    }
    out
}

/// True when `verdict` is a divergence — the shrinker's usual predicate.
pub fn diverges(verdict: &Result<CosimVerdict, String>) -> bool {
    matches!(verdict, Ok(CosimVerdict::Divergence(_)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::progen::ProgGen;
    use ccrp_asm::assemble;

    #[test]
    fn pristine_programs_match_across_all_variants() {
        for seed in 0..12 {
            let image = assemble(&ProgGen::generate(seed).source()).expect("assembles");
            match run_cosim(&image, 2_000_000).expect("cosim runs") {
                CosimVerdict::Match { instructions } => assert!(instructions > 0),
                CosimVerdict::Divergence(report) => {
                    panic!("seed {seed} diverged:\n{report}")
                }
            }
        }
    }

    #[test]
    fn corrupt_rom_is_reported_as_divergence_under_abort() {
        let image = assemble(&ProgGen::generate(3).source()).expect("assembles");
        let mut rom = build_rom(&image).expect("builds");
        rom.corrupt_block_byte(0, 0, 0xFF).expect("corrupts");
        let verdict = run_cosim_with(
            &image,
            vec![CosimVariant {
                label: "corrupt-abort",
                rom,
                policy: DegradePolicy::Abort,
            }],
            100_000,
        )
        .expect("runs");
        // A flipped stream byte either fails eager expansion (step-0
        // construction divergence) or decodes to wrong instructions the
        // lockstep comparison flags on the corrupted line's first use.
        match verdict {
            CosimVerdict::Divergence(report) => {
                if report.step == 0 {
                    assert_eq!(report.field, "construction");
                }
            }
            CosimVerdict::Match { .. } => panic!("corruption went unnoticed"),
        }
    }

    #[test]
    fn minimize_lines_shrinks_to_the_failing_line() {
        let lines: Vec<String> = ["keep:", "a", "b", "poison", "c"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let removable = vec![1, 2, 3, 4];
        let minimal = minimize_lines(&lines, &removable, 64, |src| src.contains("poison"));
        assert_eq!(minimal, vec!["keep:".to_string(), "poison".to_string()]);
    }

    #[test]
    fn minimize_lines_respects_budget() {
        let lines: Vec<String> = (0..10).map(|i| format!("l{i}")).collect();
        let removable: Vec<usize> = (0..10).collect();
        let mut calls = 0;
        let out = minimize_lines(&lines, &removable, 3, |_| {
            calls += 1;
            false
        });
        assert_eq!(calls, 3);
        assert_eq!(out.len(), 10);
    }
}
