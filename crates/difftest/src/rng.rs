//! A small, seedable PRNG for deterministic program generation.
//!
//! SplitMix64: every trial's program is a pure function of its seed, so
//! a failing case reproduces from the single integer a report prints.
//! The same golden-ratio increment is used by the campaign runners to
//! derive per-trial seeds, keeping the whole pipeline allocation- and
//! dependency-free.

/// SplitMix64 generator (Steele, Lea & Flood; public-domain constants).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from `seed`. All values are valid seeds.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`0` when `bound == 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Multiply-shift reduction; the tiny modulo bias is irrelevant
        // for program generation.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform value in `lo..=hi` (returns `lo` when the range is empty).
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        lo + self.below(hi - lo + 1)
    }

    /// True with probability `num / den` (`false` when `den == 0`).
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        den != 0 && self.below(den) < num
    }

    /// Picks a uniformly random element of `items`, or `None` when empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            return None;
        }
        items.get(self.below(items.len() as u64) as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        let mut c = SplitMix64::new(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn below_and_range_stay_in_bounds() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..1000 {
            assert!(rng.below(10) < 10);
            let v = rng.range(3, 9);
            assert!((3..=9).contains(&v));
        }
        assert_eq!(rng.below(0), 0);
        assert_eq!(rng.range(5, 2), 5);
    }

    #[test]
    fn pick_covers_all_elements() {
        let mut rng = SplitMix64::new(1);
        let items = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..200 {
            if let Some(&v) = rng.pick(&items) {
                seen[v - 1] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
        assert!(rng.pick::<u32>(&[]).is_none());
    }
}
