//! Checkpoint-segmented differential co-simulation.
//!
//! The same transparency check as [`run_cosim`](crate::run_cosim), split
//! into two passes:
//!
//! 1. **Recording** — the plain-ROM reference runs alone, cheaply,
//!    capturing a serialized [`Checkpoint`] every `every` retired
//!    instructions (exercising the full byte round-trip, not just a
//!    clone);
//! 2. **Replay** — each segment restores the reference and every
//!    compressed variant from its opening checkpoint and replays in
//!    lockstep, comparing full architectural state after every
//!    instruction, exactly as the monolithic runner does.
//!
//! Segments replay in segment order and every comparison uses absolute
//! retired-instruction counts, so the verdict — down to the
//! [`DivergenceReport`] field and detail strings — is byte-identical to
//! the monolithic runner's. After each non-final segment the replayed
//! reference is checked against the next recorded checkpoint, so a
//! restore that silently desynchronized is caught immediately rather
//! than surfacing as a bogus divergence downstream.

use ccrp_emu::{Checkpoint, Machine, MachineConfig, NullSink};

use crate::cosim::{
    compare_state, disasm_window, standard_variants, CosimVerdict, DivergenceReport, RecordingSink,
};
use ccrp_asm::ProgramImage;

/// Outcome of one segmented lockstep run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentedVerdict {
    /// The verdict, identical to what the monolithic runner returns.
    pub verdict: CosimVerdict,
    /// Segments the run was split into (at least 1).
    pub segments: u64,
}

/// Runs the standard variant matrix for `image` in segmented form:
/// checkpoint-recording pass, then per-segment lockstep replay. `every`
/// is the checkpoint interval in retired instructions.
///
/// # Errors
///
/// The same infrastructure failures as [`run_cosim`](crate::run_cosim)
/// (compression broke, the reference faulted or exceeded `max_steps`),
/// plus `every == 0` and internal desynchronization (a replayed segment
/// not reaching the next recorded checkpoint — a checkpointing bug, not
/// a program divergence).
pub fn run_cosim_segmented(
    image: &ProgramImage,
    max_steps: u64,
    every: u64,
) -> Result<SegmentedVerdict, String> {
    if every == 0 {
        return Err("checkpoint interval must be at least 1".to_string());
    }
    let variants = standard_variants(image)?;
    let config = MachineConfig {
        max_steps,
        ..MachineConfig::default()
    };

    // Pass 1: reference-only recording. Checkpoints round-trip through
    // bytes so the serialized form is what replay actually consumes.
    let mut reference = Machine::with_config(image, config.clone());
    let mut checkpoints = vec![record_checkpoint(&reference, 0)?];
    let mut budget = ccrp::StepBudget::limited(max_steps);
    let mut total_steps: u64 = 0;
    let mut reference_faulted = false;
    while reference.exit_code().is_none() {
        if budget.charge(1).is_err() {
            return Err(format!("reference exceeded step budget {max_steps}"));
        }
        let result = reference.step(&mut NullSink);
        total_steps += 1;
        if result.is_err() {
            // The fault replays inside the final segment, where the
            // variant comparison decides whether it is a divergence.
            reference_faulted = true;
            break;
        }
        if reference.exit_code().is_none() && total_steps.is_multiple_of(every) {
            reference.note_segment_boundary(checkpoints.len() as u32);
            checkpoints.push(record_checkpoint(&reference, checkpoints.len())?);
        }
    }
    let segments = checkpoints.len() as u64;

    // Pass 2: per-segment lockstep replay, in segment order.
    let mut reference = Machine::with_config(image, config.clone());
    let mut running: Vec<(&'static str, Machine, RecordingSink)> = Vec::new();
    for variant in variants {
        match Machine::with_compressed_text(image, &variant.rom, variant.policy, config.clone()) {
            Ok(machine) => running.push((variant.label, machine, RecordingSink::default())),
            Err(err) => {
                return Ok(SegmentedVerdict {
                    verdict: CosimVerdict::Divergence(Box::new(DivergenceReport {
                        step: 0,
                        pc: image.entry(),
                        variant: variant.label,
                        field: "construction".to_string(),
                        detail: format!("reference constructed, variant failed: {err:?}"),
                        window: disasm_window(image, image.entry()),
                        minimized: None,
                    })),
                    segments,
                });
            }
        }
    }
    let mut ref_sink = RecordingSink::default();
    for (index, checkpoint) in checkpoints.iter().enumerate() {
        let seg_end = checkpoints
            .get(index + 1)
            .map_or(total_steps, Checkpoint::steps);
        reference
            .restore(checkpoint)
            .map_err(|e| format!("segment {index}: reference restore failed: {e}"))?;
        for (label, machine, _) in &mut running {
            machine
                .restore(checkpoint)
                .map_err(|e| format!("segment {index}: variant {label} restore failed: {e}"))?;
        }
        let mut step = checkpoint.steps();
        while step < seg_end {
            let pc = reference.pc();
            ref_sink.accesses.clear();
            let ref_result = reference.step(&mut ref_sink);
            step += 1;
            for (label, machine, sink) in &mut running {
                sink.accesses.clear();
                let var_result = machine.step(sink);
                let mismatch = match (&ref_result, &var_result) {
                    (Ok(()), Ok(())) => {
                        compare_state(&reference, machine, &ref_sink.accesses, &sink.accesses)
                    }
                    (Err(a), Err(b)) if a == b => None,
                    (a, b) => Some(("fault".to_string(), format!("reference {a:?} vs {b:?}"))),
                };
                if let Some((field, detail)) = mismatch {
                    return Ok(SegmentedVerdict {
                        verdict: CosimVerdict::Divergence(Box::new(DivergenceReport {
                            step,
                            pc,
                            variant: label,
                            field,
                            detail,
                            window: disasm_window(image, pc),
                            minimized: None,
                        })),
                        segments,
                    });
                }
            }
            if let Err(err) = ref_result {
                // All variants reproduced the fault (else we returned
                // above) — a generator bug, exactly as in the monolithic
                // runner.
                return Err(format!("generated program faulted identically: {err:?}"));
            }
        }
        // Chain verification: the replayed reference must land exactly on
        // the next recorded checkpoint.
        if let Some(next) = checkpoints.get(index + 1) {
            if reference.arch_state() != next.arch_state() {
                return Err(format!(
                    "segment {index} replay desynchronized: state at step {seg_end} \
                     does not match the recorded checkpoint"
                ));
            }
        }
    }
    if reference_faulted {
        // Unreachable in practice: the fault re-raises inside the final
        // segment and returns there. Kept as a backstop so a checkpoint
        // bug cannot convert a faulting program into a silent Match.
        return Err("reference fault did not reproduce during replay".to_string());
    }
    Ok(SegmentedVerdict {
        verdict: CosimVerdict::Match {
            instructions: total_steps,
        },
        segments,
    })
}

/// Serializes and re-parses a checkpoint, so the recorded state replay
/// consumes has actually survived the byte format.
fn record_checkpoint(machine: &Machine, index: usize) -> Result<Checkpoint, String> {
    Checkpoint::from_bytes(&machine.checkpoint().to_bytes())
        .map_err(|e| format!("checkpoint {index} failed byte round-trip: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cosim::{build_rom, run_cosim, run_cosim_with, CosimVariant};
    use crate::progen::ProgGen;
    use ccrp::DegradePolicy;
    use ccrp_asm::assemble;

    #[test]
    fn segmented_verdict_matches_monolithic() {
        for seed in [0u64, 5, 9] {
            let image = assemble(&ProgGen::generate(seed).source()).expect("assembles");
            let monolithic = run_cosim(&image, 2_000_000).expect("monolithic runs");
            for every in [1u64, 7, 100, 1_000_000] {
                let segmented =
                    run_cosim_segmented(&image, 2_000_000, every).expect("segmented runs");
                assert_eq!(
                    segmented.verdict, monolithic,
                    "seed {seed} every {every} verdict drifted"
                );
                if let CosimVerdict::Match { instructions } = monolithic {
                    assert_eq!(segmented.segments, instructions.div_ceil(every).max(1));
                }
            }
        }
    }

    #[test]
    fn corrupt_rom_divergence_matches_monolithic_report() {
        let image = assemble(&ProgGen::generate(3).source()).expect("assembles");
        let mut rom = build_rom(&image).expect("builds");
        rom.corrupt_block_byte(0, 0, 0xFF).expect("corrupts");
        let variants = |rom: &ccrp::CompressedImage| {
            vec![CosimVariant {
                label: "corrupt-trap",
                rom: rom.clone(),
                policy: DegradePolicy::Trap,
            }]
        };
        let monolithic = run_cosim_with(&image, variants(&rom), 100_000).expect("runs");
        // The segmented path uses the standard matrix, so exercise the
        // corrupt ROM through the monolithic harness and just assert the
        // segmented standard run still matches its own monolithic twin.
        assert!(matches!(monolithic, CosimVerdict::Divergence(_)));
        let seg = run_cosim_segmented(&image, 100_000, 13).expect("segmented runs");
        let mono = run_cosim(&image, 100_000).expect("monolithic runs");
        assert_eq!(seg.verdict, mono);
    }

    #[test]
    fn zero_interval_is_rejected() {
        let image = assemble(&ProgGen::generate(1).source()).expect("assembles");
        assert!(run_cosim_segmented(&image, 1_000, 0).is_err());
    }
}
