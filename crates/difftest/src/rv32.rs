//! The RV32 lockstep campaign: the second ISA behind the generalized
//! difftest.
//!
//! Each trial generates one seeded random RV32 program
//! ([`Rv32ProgGen`]), assembles it into **both** encodings (base RV32I
//! and RVC), and for each encoding runs the plain-ROM reference against
//! three compressed variants — the directly built CCRP ROM, a
//! v1-container round-trip, and a v2-container round-trip — through the
//! same ISA-generic [`run_lockstep`] driver the MIPS campaign uses,
//! then sweeps the refill timing invariants over both ROMs. Finally the
//! two encodings' *architectural end states* (output, exit code, the 31
//! writable GPRs) are compared against each other: the generator emits
//! no `auipc` and no link-writing jumps, so the RV32I and RV32C builds
//! of one program must agree exactly, making the campaign a
//! cross-*encoding* differential test as well as a plain-vs-compressed
//! one.

use ccrp::CompressedImage;
use ccrp_compress::{BlockAlignment, ByteCode, ByteHistogram};
use ccrp_emu::NullSink;
use ccrp_isa::Isa;
use ccrp_rv32::progen::Rv32ProgGen;
use ccrp_rv32::{rvc, Encoding, Rv32Config, Rv32Image, Rv32Machine, Rv32c};

use crate::cosim::{CosimVerdict, DivergenceReport};
use crate::lockstep::{compare_cores, run_lockstep, LockstepVariant};
use crate::timing::check_refill_invariants;
use crate::{TrialOutcome, TrialReport, TRIAL_MAX_STEPS};

/// Builds the compressed ROM for an RV32 image with a self-trained
/// byte-Huffman code, mirroring [`build_rom`](crate::build_rom) for
/// MIPS images.
///
/// # Errors
///
/// Describes the compression failure (empty text, misaligned base).
pub fn build_rv32_rom(image: &Rv32Image) -> Result<CompressedImage, String> {
    let text = image.text();
    let code = ByteCode::preselected(&ByteHistogram::of(text))
        .map_err(|e| format!("code selection failed: {e}"))?;
    CompressedImage::build(image.text_base(), text, code, BlockAlignment::Word)
        .map_err(|e| format!("compressed image build failed: {e}"))
}

/// Runs `image` on the plain-ROM reference and on the standard RV32
/// compressed-variant matrix (direct ROM, v1 container round-trip, v2
/// container round-trip) in lockstep.
///
/// # Errors
///
/// Infrastructure failures: compression or a container round-trip
/// broke, or the reference machine itself faulted / exceeded
/// `max_steps` (an invalid generated program). Variant misbehaviour is
/// a [`CosimVerdict::Divergence`], never an `Err`.
pub fn run_rv32_cosim(image: &Rv32Image, max_steps: u64) -> Result<CosimVerdict, String> {
    let rom = build_rv32_rom(image)?;
    let v1 = CompressedImage::from_bytes(&rom.to_bytes())
        .map_err(|e| format!("v1 container round-trip failed: {e}"))?;
    let v2 = CompressedImage::from_bytes(&rom.to_bytes_v2())
        .map_err(|e| format!("v2 container round-trip failed: {e}"))?;
    let config = Rv32Config {
        max_steps,
        ..Rv32Config::default()
    };
    let reference = Rv32Machine::with_config(image, config.clone());
    let variants = [("direct", rom), ("v1-container", v1), ("v2-container", v2)]
        .into_iter()
        .map(|(label, rom)| LockstepVariant {
            label,
            machine: Rv32Machine::with_compressed_text(image, &rom, config.clone()),
        })
        .collect();
    run_lockstep(
        reference,
        variants,
        image.entry(),
        max_steps,
        compare_cores::<Rv32Machine>,
        |pc| rv32_disasm_window(image, pc),
    )
}

/// Disassembles ±4 instructions around `pc`, marking the faulting line.
/// RVC makes instruction boundaries data-dependent, so the window walks
/// the length-classified halfword stream from the image base instead of
/// assuming a fixed 4-byte stride.
pub fn rv32_disasm_window(image: &Rv32Image, pc: u32) -> Vec<String> {
    let text = image.text();
    let mut boundaries = Vec::new();
    let mut off = 0usize;
    while off + 2 <= text.len() {
        boundaries.push(off as u32);
        let low = u16::from_le_bytes([text[off], text[off + 1]]);
        off += rvc::instr_bytes(low) as usize;
    }
    let at = boundaries.partition_point(|&addr| addr < pc);
    let lo = at.saturating_sub(4);
    let hi = (at + 5).min(boundaries.len());
    boundaries[lo..hi]
        .iter()
        .map(|&addr| {
            let marker = if addr == pc { '>' } else { ' ' };
            format!(
                "{marker} {addr:#010x}  {}",
                Rv32c::disassemble_bytes(&text[addr as usize..])
            )
        })
        .collect()
}

/// The architectural end state the cross-encoding comparison inspects.
struct FinalState {
    output: String,
    exit: Option<i32>,
    gprs: Vec<u32>,
}

/// Runs the full RV32 differential trial for `seed`: generate, assemble
/// *both* encodings, lockstep each against its compressed variants,
/// sweep the refill timing invariants over both ROMs, then check the
/// two encodings reached the same architectural end state.
/// Deterministic: the report is a pure function of `seed`.
/// [`TrialReport::instructions`], `text_bytes`, `lat_entries`, and
/// `refills` each sum both encodings' legs.
pub fn run_trial_rv32(seed: u64) -> TrialReport {
    let generated = Rv32ProgGen::generate(seed);
    let mut report = TrialReport {
        outcome: TrialOutcome::Match,
        instructions: 0,
        text_bytes: 0,
        lat_entries: 0,
        refills: 0,
        segments: 0,
    };
    let mut finals: Vec<FinalState> = Vec::new();
    for (tag, encoding) in [("rv32i", Encoding::Rv32I), ("rv32c", Encoding::Rv32C)] {
        let image = match generated.assemble(encoding) {
            Ok(image) => image,
            Err(err) => {
                report.outcome = TrialOutcome::GenFailure(format!("{tag} assembly failed: {err}"));
                return report;
            }
        };
        report.text_bytes += u64::from(image.text_size());
        report.lat_entries += u64::from(image.text_lines().div_ceil(8));
        match run_rv32_cosim(&image, TRIAL_MAX_STEPS) {
            Err(err) => {
                report.outcome = TrialOutcome::GenFailure(format!("{tag}: {err}"));
                return report;
            }
            Ok(CosimVerdict::Divergence(divergence)) => {
                // The generator has no line-level shrinker (programs are
                // typed item streams, not text), so the report ships the
                // disassembled window unminimized.
                report.outcome = TrialOutcome::Divergence(divergence);
                return report;
            }
            Ok(CosimVerdict::Match { instructions }) => {
                report.instructions += instructions;
            }
        }
        match build_rv32_rom(&image) {
            Ok(rom) => {
                let timing = check_refill_invariants(&rom);
                report.refills += timing.refills;
                if !timing.clean() {
                    report.outcome = TrialOutcome::TimingViolation(format!(
                        "{tag}: {}",
                        timing.violations.join("; ")
                    ));
                    return report;
                }
            }
            Err(err) => {
                report.outcome = TrialOutcome::GenFailure(format!("{tag}: {err}"));
                return report;
            }
        }
        let mut machine = Rv32Machine::with_config(
            &image,
            Rv32Config {
                max_steps: TRIAL_MAX_STEPS,
                ..Rv32Config::default()
            },
        );
        if let Err(err) = machine.run(&mut NullSink) {
            report.outcome = TrialOutcome::GenFailure(format!("{tag} rerun faulted: {err}"));
            return report;
        }
        finals.push(FinalState {
            output: machine.output().to_string(),
            exit: machine.exit_code(),
            gprs: (0..Rv32c::GPR_COUNT)
                .map(|index| ccrp_emu::IsaCore::gpr(&machine, index))
                .collect(),
        });
    }
    if let Some(divergence) = cross_encoding_divergence(&finals[0], &finals[1]) {
        report.outcome = TrialOutcome::Divergence(Box::new(DivergenceReport {
            step: report.instructions,
            pc: 0,
            variant: "rv32c-vs-rv32i",
            field: divergence.0,
            detail: divergence.1,
            window: Vec::new(),
            minimized: None,
        }));
    }
    report
}

/// First difference between the two encodings' end states, if any.
fn cross_encoding_divergence(i: &FinalState, c: &FinalState) -> Option<(String, String)> {
    if i.output != c.output {
        return Some((
            "output".to_string(),
            format!("rv32i {:?} vs rv32c {:?}", i.output, c.output),
        ));
    }
    if i.exit != c.exit {
        return Some((
            "exit_code".to_string(),
            format!("rv32i {:?} vs rv32c {:?}", i.exit, c.exit),
        ));
    }
    for (index, (a, b)) in i.gprs.iter().zip(&c.gprs).enumerate() {
        if a != b {
            return Some((
                Rv32c::gpr_name(index).to_string(),
                format!("rv32i {a:#010x} vs rv32c {b:#010x}"),
            ));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rv32_trials_match_and_are_deterministic() {
        for seed in [1u64, 2, 42] {
            let a = run_trial_rv32(seed);
            let b = run_trial_rv32(seed);
            assert_eq!(a, b, "seed {seed} not deterministic");
            assert_eq!(
                a.outcome,
                TrialOutcome::Match,
                "seed {seed}: {:?}",
                a.outcome
            );
            assert!(a.instructions > 0);
            assert!(
                a.lat_entries >= 2,
                "seed {seed} too small to stress the LAT"
            );
            assert!(a.refills > 0);
        }
    }

    #[test]
    fn both_encodings_cosim_cleanly() {
        let generated = Rv32ProgGen::generate(7);
        for encoding in [Encoding::Rv32I, Encoding::Rv32C] {
            let image = generated.assemble(encoding).expect("assembles");
            match run_rv32_cosim(&image, TRIAL_MAX_STEPS).expect("cosim runs") {
                CosimVerdict::Match { instructions } => assert!(instructions > 0),
                CosimVerdict::Divergence(report) => {
                    panic!("{encoding:?} diverged:\n{report}")
                }
            }
        }
    }

    #[test]
    fn corrupt_rv32_rom_is_caught() {
        let image = Rv32ProgGen::generate(3)
            .assemble(Encoding::Rv32C)
            .expect("assembles");
        let mut rom = build_rv32_rom(&image).expect("builds");
        rom.corrupt_block_byte(0, 0, 0xFF).expect("corrupts");
        let config = Rv32Config::default();
        let reference = Rv32Machine::with_config(&image, config.clone());
        let verdict = run_lockstep(
            reference,
            vec![LockstepVariant {
                label: "corrupt",
                machine: Rv32Machine::with_compressed_text(&image, &rom, config),
            }],
            image.entry(),
            100_000,
            compare_cores::<Rv32Machine>,
            |pc| rv32_disasm_window(&image, pc),
        )
        .expect("runs");
        // A flipped stream byte either faults the corrupted line's
        // expansion (RomFault vs clean reference = fault divergence) or
        // decodes to wrong instructions the comparison flags.
        match verdict {
            CosimVerdict::Divergence(report) => {
                assert_eq!(report.variant, "corrupt");
            }
            CosimVerdict::Match { .. } => panic!("corruption went unnoticed"),
        }
    }

    #[test]
    fn disasm_window_walks_rvc_boundaries() {
        let image = Rv32ProgGen::generate(1)
            .assemble(Encoding::Rv32C)
            .expect("assembles");
        // Find a PC a few instructions in by walking the stream.
        let text = image.text();
        let mut pc = 0usize;
        for _ in 0..6 {
            let low = u16::from_le_bytes([text[pc], text[pc + 1]]);
            pc += rvc::instr_bytes(low) as usize;
        }
        let window = rv32_disasm_window(&image, pc as u32);
        assert_eq!(window.len(), 9, "4 before + marked + 4 after");
        assert_eq!(
            window.iter().filter(|l| l.starts_with('>')).count(),
            1,
            "exactly one marked line:\n{}",
            window.join("\n")
        );
        assert!(window.iter().all(|l| !l.contains(".half")));
    }
}
