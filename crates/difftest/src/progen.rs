//! ISA-aware random program generator.
//!
//! Emits valid, terminating MIPS R2000 assembly for the workspace
//! assembler, sized so a compressed build spans several Line Address
//! Table entries (each entry covers 256 bytes of text). The generator
//! enforces, by construction:
//!
//! * **Termination** — control flow is forward-only except for counted
//!   loops whose counters (`$s1`–`$s3`, one per nesting depth, never
//!   touched by random instructions) strictly decrease to a `bgtz`
//!   back-edge. A forward branch may jump *into* a loop body past its
//!   counter init, but the counter registers only ever hold values in
//!   `0..=8`, so every back-edge still runs out.
//! * **No traps** — only non-trapping ALU ops (`addu`/`addiu`/`subu`,
//!   never `add`/`sub`), divides guarded by a freshly-written non-zero
//!   divisor, loads confined to a scratch buffer the prologue fully
//!   initialises, and naturally-aligned offsets per access width.
//! * **Delay-slot legality** — every branch, jump, and call is followed
//!   by an explicitly emitted single-word filler under `.set
//!   noreorder`; fillers are never themselves control transfers.
//! * **ABI hygiene** — random instructions only write the caller-saved
//!   pool ([`Reg::CALLER_SAVED`]); `$s0` holds the scratch-buffer base,
//!   `$ra` is written only by `jal` to leaf functions that contain no
//!   calls of their own.

use std::fmt::Write as _;

use ccrp_isa::Reg;

use crate::rng::SplitMix64;

/// Base address of the 256-byte scratch buffer all loads/stores target.
/// Sits below the default stack (`0x00F0_0000`) in the paper's 24-bit
/// physical space; the prologue stores to every word so loads never see
/// unmapped memory.
pub const SCRATCH_BASE: u32 = 0x00EF_FF00;

/// Size of the scratch buffer in bytes.
pub const SCRATCH_SIZE: u32 = 256;

/// A generated program: assembly source plus shrinking metadata.
#[derive(Debug, Clone)]
pub struct GeneratedProgram {
    /// Source lines (labels, directives, and instructions).
    pub lines: Vec<String>,
    /// Indices into [`lines`](Self::lines) the shrinker may try to
    /// delete: the random instruction mix, but not labels, loop
    /// control, the scratch-buffer setup, or the exit sequence.
    /// (Deleting one line of a guarded group — say a divide's divisor
    /// write — is allowed; the shrinker re-validates every candidate by
    /// re-running it, so a now-faulting program is simply rejected.)
    pub removable: Vec<usize>,
}

impl GeneratedProgram {
    /// The assembly source as one string.
    pub fn source(&self) -> String {
        let mut out = String::new();
        for line in &self.lines {
            let _ = writeln!(out, "{line}");
        }
        out
    }
}

/// Maximum loop-nesting depth (one counter register per level).
const MAX_LOOP_DEPTH: usize = 2;

/// Loop counter registers by nesting depth; reserved for loop control.
const LOOP_COUNTERS: [Reg; 3] = [Reg::S1, Reg::S2, Reg::S3];

/// The seeded generator. One instance emits one program.
#[derive(Debug)]
pub struct ProgGen {
    rng: SplitMix64,
    lines: Vec<String>,
    removable: Vec<usize>,
    /// Number of leaf functions emitted after the exit sequence.
    functions: usize,
    /// Whether the instruction mix may emit `jal`. False inside
    /// function bodies: a call there could overwrite the live `$ra`
    /// (worst case `jal` to the enclosing function itself, which then
    /// returns to its own call site forever), breaking termination.
    calls_allowed: bool,
}

impl ProgGen {
    /// Generates the program for `seed`. The result is a pure function
    /// of the seed.
    pub fn generate(seed: u64) -> GeneratedProgram {
        let mut gen = ProgGen {
            rng: SplitMix64::new(seed),
            lines: Vec::new(),
            removable: Vec::new(),
            functions: 0,
            calls_allowed: true,
        };
        gen.emit_all();
        GeneratedProgram {
            lines: gen.lines,
            removable: gen.removable,
        }
    }

    fn emit_all(&mut self) {
        self.functions = self.rng.below(3) as usize;
        self.push(".text");
        self.push(".set noreorder");
        self.push("main:");
        self.prologue();
        self.body();
        self.push("exit:");
        self.push("    ori $v0, $zero, 10");
        self.push("    syscall");
        for f in 0..self.functions {
            self.function(f);
        }
    }

    /// Fixed (non-removable) scratch base, then removable random
    /// register seeding and buffer initialisation. The 64 stores cover
    /// every word of the scratch buffer so any later load is defined.
    fn prologue(&mut self) {
        self.push(&format!("    lui $s0, {}", SCRATCH_BASE >> 16));
        self.push(&format!("    ori $s0, $s0, {}", SCRATCH_BASE & 0xFFFF));
        for reg in Reg::CALLER_SAVED {
            let value = self.rng.next_u64() as u32 as i32;
            self.push_removable(&format!("    li {reg}, {value}"));
        }
        for off in (0..SCRATCH_SIZE).step_by(4) {
            let reg = self.pool_reg();
            // The stores that define the buffer are structural, not
            // removable: a shrunk program must still satisfy the
            // loads-see-initialised-memory invariant by construction.
            self.push(&format!("    sw {reg}, {off}($s0)"));
        }
    }

    /// The random block/loop body between the prologue and `exit`.
    fn body(&mut self) {
        let blocks = if self.rng.chance(1, 8) {
            // Occasionally much larger, to cover deep CLB eviction.
            12 + self.rng.below(12) as usize
        } else {
            5 + self.rng.below(8) as usize
        };
        // Plan counted loops over block ranges first so forward
        // branches can target any strictly later block label. Each
        // entry is `(loop id, nesting depth)`.
        let mut opens: Vec<Vec<(usize, usize)>> = vec![Vec::new(); blocks];
        let mut closes: Vec<Vec<(usize, usize)>> = vec![Vec::new(); blocks];
        let mut stack: Vec<(usize, usize)> = Vec::new();
        let mut next_loop = 0usize;
        for i in 0..blocks {
            if stack.len() < MAX_LOOP_DEPTH && self.rng.chance(1, 4) {
                let span = 1 + self.rng.below(2) as usize;
                let mut end = (i + span - 1).min(blocks - 1);
                if let Some(&(_, outer_end)) = stack.last() {
                    end = end.min(outer_end);
                }
                opens[i].push((next_loop, stack.len()));
                stack.push((next_loop, end));
                next_loop += 1;
            }
            while let Some(&(id, end)) = stack.last() {
                if end == i {
                    closes[i].push((id, stack.len() - 1));
                    stack.pop();
                } else {
                    break;
                }
            }
        }
        for i in 0..blocks {
            let block_opens: Vec<(usize, usize)> = opens.get(i).cloned().unwrap_or_default();
            for (id, depth) in block_opens {
                let counter = LOOP_COUNTERS[depth.min(2)];
                let iters = self.rng.range(2, 6);
                self.push(&format!("    ori {counter}, $zero, {iters}"));
                self.push(&format!("loop{id}:"));
            }
            self.push(&format!("L{i}:"));
            let count = 10 + self.rng.below(23);
            for _ in 0..count {
                self.instruction();
            }
            if self.rng.chance(1, 6) {
                self.print_int();
            }
            if self.rng.chance(1, 2) {
                self.forward_branch(i, blocks);
            }
            let block_closes: Vec<(usize, usize)> = closes.get(i).cloned().unwrap_or_default();
            for (id, depth) in block_closes {
                let counter = LOOP_COUNTERS[depth.min(2)];
                self.push(&format!("    addiu {counter}, {counter}, -1"));
                self.push(&format!("    bgtz {counter}, loop{id}"));
                let filler = self.filler();
                self.push(&filler);
            }
        }
    }

    /// A leaf function: straight-line work, `jr $ra`, delay filler.
    fn function(&mut self, index: usize) {
        self.push(&format!("fn{index}:"));
        self.calls_allowed = false;
        let count = 4 + self.rng.below(9);
        for _ in 0..count {
            self.instruction();
        }
        self.calls_allowed = true;
        self.push("    jr $ra");
        let filler = self.filler();
        self.push(&filler);
    }

    /// One random instruction group (1–3 source lines, atomic).
    fn instruction(&mut self) {
        let roll = self.rng.below(100);
        let group: Vec<String> = match roll {
            0..=29 => vec![self.r_alu()],
            30..=47 => vec![self.i_alu()],
            48..=57 => vec![self.shift_imm()],
            58..=62 => vec![self.shift_var()],
            63..=66 => {
                let rt = self.pool_reg();
                let imm = self.rng.below(0x1_0000);
                vec![format!("    lui {rt}, {imm}")]
            }
            67..=78 => vec![self.mem_op()],
            79..=83 => self.mult_div(),
            84..=87 => vec![self.hi_lo()],
            88..=95 => vec![self.fp_op()],
            96..=97 if self.functions > 0 && self.calls_allowed => {
                let f = self.rng.below(self.functions as u64);
                vec![format!("    jal fn{f}"), self.filler()]
            }
            _ => vec!["    nop".to_string()],
        };
        for line in group {
            self.push_removable(&line);
        }
    }

    fn r_alu(&mut self) -> String {
        const OPS: [&str; 8] = ["addu", "subu", "and", "or", "xor", "nor", "slt", "sltu"];
        let op = self.pick_str(&OPS);
        let rd = self.pool_reg();
        let rs = self.src_reg();
        let rt = self.src_reg();
        format!("    {op} {rd}, {rs}, {rt}")
    }

    fn i_alu(&mut self) -> String {
        // (mnemonic, signed immediate?)
        const OPS: [(&str, bool); 6] = [
            ("addiu", true),
            ("andi", false),
            ("ori", false),
            ("xori", false),
            ("slti", true),
            ("sltiu", true),
        ];
        let idx = self.rng.below(OPS.len() as u64) as usize;
        let (op, signed) = OPS[idx.min(OPS.len() - 1)];
        let rt = self.pool_reg();
        let rs = self.src_reg();
        if signed {
            let imm = self.rng.next_u64() as u16 as i16;
            format!("    {op} {rt}, {rs}, {imm}")
        } else {
            let imm = self.rng.below(0x1_0000);
            format!("    {op} {rt}, {rs}, {imm}")
        }
    }

    fn shift_imm(&mut self) -> String {
        const OPS: [&str; 3] = ["sll", "srl", "sra"];
        let op = self.pick_str(&OPS);
        let rd = self.pool_reg();
        let rt = self.src_reg();
        let shamt = self.rng.below(32);
        format!("    {op} {rd}, {rt}, {shamt}")
    }

    fn shift_var(&mut self) -> String {
        const OPS: [&str; 3] = ["sllv", "srlv", "srav"];
        let op = self.pick_str(&OPS);
        let rd = self.pool_reg();
        let rt = self.src_reg();
        let rs = self.src_reg();
        format!("    {op} {rd}, {rt}, {rs}")
    }

    /// A load or store on the scratch buffer, offset aligned to the
    /// access width. The partial-word ops (`lwl`/`lwr`/`swl`/`swr`)
    /// never reach past the containing word, so any offset in range
    /// keeps them inside the buffer.
    fn mem_op(&mut self) -> String {
        const OPS: [(&str, u32, bool); 12] = [
            ("lw", 4, false),
            ("sw", 4, true),
            ("lh", 2, false),
            ("lhu", 2, false),
            ("sh", 2, true),
            ("lb", 1, false),
            ("lbu", 1, false),
            ("sb", 1, true),
            ("lwl", 1, false),
            ("lwr", 1, false),
            ("swl", 1, true),
            ("swr", 1, true),
        ];
        let idx = self.rng.below(OPS.len() as u64) as usize;
        let (op, align, store) = OPS[idx.min(OPS.len() - 1)];
        let slots = SCRATCH_SIZE / align;
        let off = self.rng.below(u64::from(slots)) as u32 * align;
        let rt = if store {
            self.src_reg()
        } else {
            self.pool_reg()
        };
        format!("    {op} {rt}, {off}($s0)")
    }

    /// `mult`/`multu` freely; `div`/`divu` behind a freshly-written
    /// non-zero, positive divisor (rules out both divide-by-zero and
    /// the `i32::MIN / -1` overflow corner). Two-operand `div` is the
    /// raw single-word instruction in this assembler, writing hi/lo.
    fn mult_div(&mut self) -> Vec<String> {
        let rs = self.src_reg();
        match self.rng.below(4) {
            0 => vec![format!("    mult {rs}, {}", self.src_reg())],
            1 => vec![format!("    multu {rs}, {}", self.src_reg())],
            n => {
                let op = if n == 2 { "div" } else { "divu" };
                let guard = self.pool_reg();
                let k = self.rng.range(1, 0xFFFF);
                let dest = self.pool_reg();
                let take = if self.rng.chance(1, 2) {
                    "mflo"
                } else {
                    "mfhi"
                };
                vec![
                    format!("    ori {guard}, $zero, {k}"),
                    format!("    {op} {rs}, {guard}"),
                    format!("    {take} {dest}"),
                ]
            }
        }
    }

    fn hi_lo(&mut self) -> String {
        match self.rng.below(4) {
            0 => format!("    mfhi {}", self.pool_reg()),
            1 => format!("    mflo {}", self.pool_reg()),
            2 => format!("    mthi {}", self.src_reg()),
            _ => format!("    mtlo {}", self.src_reg()),
        }
    }

    /// Single-precision CP1 traffic: moves, arithmetic (divide-by-zero
    /// is IEEE-defined, not a trap), and comparisons feeding `fp_cond`.
    fn fp_op(&mut self) -> String {
        let fd = self.fp_reg();
        let fs = self.fp_reg();
        let ft = self.fp_reg();
        match self.rng.below(10) {
            0 | 1 => format!("    mtc1 {}, {fd}", self.src_reg()),
            2 => format!("    mfc1 {}, {fs}", self.pool_reg()),
            3 => format!("    add.s {fd}, {fs}, {ft}"),
            4 => format!("    sub.s {fd}, {fs}, {ft}"),
            5 => format!("    mul.s {fd}, {fs}, {ft}"),
            6 => format!("    div.s {fd}, {fs}, {ft}"),
            7 => {
                const OPS: [&str; 3] = ["abs.s", "neg.s", "mov.s"];
                format!("    {} {fd}, {fs}", self.pick_str(&OPS))
            }
            _ => {
                const OPS: [&str; 3] = ["c.eq.s", "c.lt.s", "c.le.s"];
                format!("    {} {fs}, {ft}", self.pick_str(&OPS))
            }
        }
    }

    /// A SPIM `print_int` of a random pool register: output diverges
    /// whenever register state has, giving the co-simulator a second,
    /// externally-visible comparison channel.
    fn print_int(&mut self) {
        let src = self.pool_reg();
        self.push_removable("    ori $v0, $zero, 1");
        self.push_removable(&format!("    addu $a0, {src}, $zero"));
        self.push_removable("    syscall");
    }

    /// A conditional forward branch from block `i` to a strictly later
    /// block label (or `exit`), plus its delay filler.
    fn forward_branch(&mut self, i: usize, blocks: usize) {
        let target = if i + 1 >= blocks || self.rng.chance(1, 6) {
            "exit".to_string()
        } else {
            format!("L{}", self.rng.range(i as u64 + 1, blocks as u64 - 1))
        };
        let line = match self.rng.below(10) {
            0 => format!("    beq {}, {}, {target}", self.src_reg(), self.src_reg()),
            1 => format!("    bne {}, {}, {target}", self.src_reg(), self.src_reg()),
            2 => format!("    beqz {}, {target}", self.src_reg()),
            3 => format!("    bnez {}, {target}", self.src_reg()),
            4 => {
                const OPS: [&str; 4] = ["bgtz", "blez", "bltz", "bgez"];
                format!("    {} {}, {target}", self.pick_str(&OPS), self.src_reg())
            }
            5 | 6 => {
                const OPS: [&str; 6] = ["blt", "bgt", "ble", "bge", "bltu", "bgeu"];
                format!(
                    "    {} {}, {}, {target}",
                    self.pick_str(&OPS),
                    self.src_reg(),
                    self.src_reg()
                )
            }
            _ => {
                let op = if self.rng.chance(1, 2) {
                    "bc1t"
                } else {
                    "bc1f"
                };
                format!("    {op} {target}")
            }
        };
        self.push_removable(&line);
        let filler = self.filler();
        self.push_removable(&filler);
    }

    /// A safe single-word non-control instruction for a delay slot.
    fn filler(&mut self) -> String {
        match self.rng.below(4) {
            0 => "    nop".to_string(),
            1 => format!(
                "    addiu {}, {}, {}",
                self.pool_reg(),
                self.src_reg(),
                self.rng.next_u64() as u16 as i16
            ),
            2 => format!(
                "    xori {}, {}, {}",
                self.pool_reg(),
                self.src_reg(),
                self.rng.below(0x1_0000)
            ),
            _ => format!(
                "    sll {}, {}, {}",
                self.pool_reg(),
                self.src_reg(),
                self.rng.below(32)
            ),
        }
    }

    /// A destination register: always from the caller-saved pool.
    fn pool_reg(&mut self) -> Reg {
        *self.rng.pick(&Reg::CALLER_SAVED).unwrap_or(&Reg::T0)
    }

    /// A source register: usually the pool, sometimes `$zero` or the
    /// scratch base (reads of `$s0` are fine; writes are not).
    fn src_reg(&mut self) -> Reg {
        if self.rng.chance(1, 8) {
            Reg::ZERO
        } else if self.rng.chance(1, 15) {
            Reg::S0
        } else {
            self.pool_reg()
        }
    }

    fn fp_reg(&mut self) -> String {
        format!("$f{}", self.rng.below(12))
    }

    fn pick_str(&mut self, items: &[&'static str]) -> &'static str {
        self.rng.pick(items).copied().unwrap_or("nop")
    }

    fn push(&mut self, line: &str) {
        self.lines.push(line.to_string());
    }

    fn push_removable(&mut self, line: &str) {
        self.removable.push(self.lines.len());
        self.lines.push(line.to_string());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccrp_asm::assemble;
    use ccrp_emu::{Machine, MachineConfig, NullSink};

    #[test]
    fn generation_is_deterministic() {
        let a = ProgGen::generate(99);
        let b = ProgGen::generate(99);
        assert_eq!(a.lines, b.lines);
        assert_eq!(a.removable, b.removable);
        let c = ProgGen::generate(100);
        assert_ne!(a.lines, c.lines);
    }

    #[test]
    fn removable_indices_are_valid_and_structural_lines_are_kept() {
        let gen = ProgGen::generate(5);
        for &i in &gen.removable {
            let line = &gen.lines[i];
            assert!(
                !line.ends_with(':') && !line.starts_with('.'),
                "labels/directives must not be removable: {line}"
            );
        }
    }

    #[test]
    fn programs_assemble_terminate_and_span_multiple_lat_entries() {
        for seed in 0..50 {
            let gen = ProgGen::generate(seed);
            let image = assemble(&gen.source())
                .unwrap_or_else(|e| panic!("seed {seed}: assembly failed: {e}"));
            assert!(
                image.text_size() >= 512,
                "seed {seed}: text {}B spans fewer than 2 LAT entries",
                image.text_size()
            );
            let mut machine = Machine::with_config(
                &image,
                MachineConfig {
                    max_steps: 2_000_000,
                    ..MachineConfig::default()
                },
            );
            let summary = machine
                .run(&mut NullSink)
                .unwrap_or_else(|e| panic!("seed {seed}: run faulted: {e:?}"));
            assert_eq!(summary.exit_code, 0, "seed {seed}");
        }
    }
}
