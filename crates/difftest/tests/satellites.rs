//! Satellite oracles around the differential co-simulator: CLB
//! line-address aliasing at the refill engine, demand expansion of
//! version-2 containers through every degradation policy on the
//! emulator's fetch path, and seeded container fault injection
//! ([`FaultPlan`]) demonstrably caught by the integrity machinery or by
//! the lockstep comparison.

use std::collections::HashSet;

use ccrp::{
    CompressedImage, ContainerLayout, DegradePolicy, FaultKind, FaultPlan, FaultRegion,
    IntegrityCheck, RefillConfig, RefillEngine,
};
use ccrp_asm::assemble;
use ccrp_difftest::cosim::{build_rom, run_cosim_with, CosimVariant, CosimVerdict};
use ccrp_difftest::timing::LinearMemory;
use ccrp_difftest::ProgGen;
use ccrp_emu::{EmuError, Machine, MachineConfig, NullSink, TraceSink};
use ccrp_probe::{Event, EventLog};

/// A tiny fixed workload whose every instruction executes, small enough
/// that all of it lives in cache line 0.
const COUNTDOWN: &str = "\
main:   ori $t0, $zero, 5
loop:   addiu $t0, $t0, -1
        bgtz $t0, loop
        ori $v0, $zero, 10
        syscall
";

fn generated_rom(seed: u64) -> (ccrp_asm::ProgramImage, CompressedImage) {
    let image = assemble(&ProgGen::generate(seed).source()).expect("generated program assembles");
    let rom = build_rom(&image).expect("compressed image builds");
    (image, rom)
}

/// Collects the set of program counters a run actually fetched.
#[derive(Default)]
struct PcSetSink(HashSet<u32>);

impl TraceSink for PcSetSink {
    fn instruction(&mut self, pc: u32) {
        self.0.insert(pc);
    }
    fn data_access(&mut self, _addr: u32, _store: bool) {}
}

/// CLB line-address aliasing at the refill engine: with a single-entry
/// CLB, two cache lines of the *same* LAT entry share the slot (second
/// probe hits), while lines of *different* LAT entries competing for
/// the slot must evict and refetch — the slot never serves entry B's
/// records for a probe of entry A after the tags swap.
#[test]
fn clb_single_slot_aliasing_evicts_and_refetches_by_lat_index() {
    let (_, rom) = generated_rom(3);
    assert!(
        rom.line_count() >= 16,
        "need at least two LAT entries to alias"
    );
    let mut engine = RefillEngine::new(RefillConfig {
        clb_entries: 1,
        decode_bytes_per_cycle: 2,
        policy: DegradePolicy::Abort,
        integrity: IntegrityCheck::Fast,
    })
    .expect("engine builds");
    let mut memory = LinearMemory;
    let base = rom.text_base();

    // (address, expected CLB hit, expected eviction victim).
    let script: [(u32, bool, Option<u32>); 5] = [
        (base, false, None),          // entry 0 line 0: cold miss
        (base + 32, true, None),      // entry 0 line 1: same slot, hit
        (base + 256, false, Some(0)), // entry 1 line 0: evicts entry 0
        (base, false, Some(1)),       // entry 0 again: refetch, evicts 1
        (base + 288, false, Some(0)), // entry 1 line 1: its entry is gone
    ];
    let mut now = 0;
    for (address, expect_hit, expect_evict) in script {
        let mut log = EventLog::new();
        let outcome = engine
            .refill_probed(&rom, address, now, &mut memory, &mut log)
            .expect("pristine refill succeeds");
        assert_eq!(
            outcome.clb_hit, expect_hit,
            "address {address:#010x}: wrong CLB verdict"
        );
        let evicted: Vec<u32> = log
            .events_of_kind("clb_evict")
            .filter_map(|t| match t.event {
                Event::ClbEvict { lat_index } => Some(lat_index),
                _ => None,
            })
            .collect();
        assert_eq!(
            evicted,
            expect_evict.into_iter().collect::<Vec<u32>>(),
            "address {address:#010x}: wrong eviction victim"
        );
        // The probed index is always the address's own LAT entry.
        let lat_index = (address - base) / 256;
        let probe_kind = if expect_hit { "clb_hit" } else { "clb_miss" };
        let probed = log.events_of_kind(probe_kind).any(|t| match t.event {
            Event::ClbHit { lat_index: i } | Event::ClbMiss { lat_index: i } => i == lat_index,
            _ => false,
        });
        assert!(
            probed,
            "address {address:#010x}: no {probe_kind} for entry {lat_index}"
        );
        now = outcome.ready_at + 1;
    }
}

/// Demand expansion of a version-2 (CRC-carrying) container through all
/// three degradation policies on the emulator's fetch path. Pristine:
/// every policy retires the reference instruction stream. Corrupt
/// (one flipped ROM byte in line 0's stored block): Abort fails eager
/// expansion at construction, Trap machine-checks at the first fetch,
/// Retry spends its budget re-reading (visible as `RetryBackoff`
/// probe events) before machine-checking at the same line address.
#[test]
fn v2_demand_expansion_through_all_degrade_policies() {
    let image = assemble(COUNTDOWN).expect("assembles");
    let rom = build_rom(&image).expect("builds");
    let v2 = CompressedImage::from_bytes(&rom.to_bytes_v2()).expect("v2 round-trips");
    let config = MachineConfig::default();

    let reference = Machine::with_config(&image, config.clone())
        .run(&mut NullSink)
        .expect("reference runs");

    let policies = [
        DegradePolicy::Abort,
        DegradePolicy::Trap,
        DegradePolicy::Retry { attempts: 2 },
    ];
    for policy in policies {
        let mut machine = Machine::with_compressed_text(&image, &v2, policy, config.clone())
            .expect("pristine v2 construction succeeds");
        let summary = machine.run(&mut NullSink).expect("pristine v2 runs");
        assert_eq!(summary.instructions, reference.instructions, "{policy:?}");
        assert_eq!(summary.exit_code, reference.exit_code, "{policy:?}");
    }

    let mut corrupt = v2.clone();
    corrupt
        .corrupt_block_byte(0, 0, 0x01)
        .expect("line 0 corrupts");
    let line0 = image.text_base();

    // Abort: the whole ROM is expanded (and CRC-checked) up front.
    assert_eq!(
        Machine::with_compressed_text(&image, &corrupt, DegradePolicy::Abort, config.clone()).err(),
        Some(EmuError::MachineCheck { pc: line0 }),
        "Abort must fail construction on a corrupt v2 ROM"
    );

    // Trap: construction defers; the first fetch machine-checks with no
    // retry traffic.
    let mut trap =
        Machine::with_compressed_text(&image, &corrupt, DegradePolicy::Trap, config.clone())
            .expect("Trap defers expansion to fetch");
    trap.enable_probe();
    assert_eq!(
        trap.run(&mut NullSink).err(),
        Some(EmuError::MachineCheck { pc: line0 })
    );
    let log = trap.take_probe_log().expect("probe enabled");
    assert!(log.events_of_kind("integrity_failure").next().is_some());
    assert_eq!(log.events_of_kind("retry_backoff").count(), 0);

    // Retry: the budget is spent re-reading the stored block before the
    // machine check, with numbered backoff events along the way.
    let mut retry = Machine::with_compressed_text(
        &image,
        &corrupt,
        DegradePolicy::Retry { attempts: 2 },
        config,
    )
    .expect("Retry defers expansion to fetch");
    retry.enable_probe();
    assert_eq!(
        retry.run(&mut NullSink).err(),
        Some(EmuError::MachineCheck { pc: line0 })
    );
    let log = retry.take_probe_log().expect("probe enabled");
    let attempts: Vec<u32> = log
        .events_of_kind("retry_backoff")
        .filter_map(|t| match t.event {
            Event::RetryBackoff {
                address, attempt, ..
            } => {
                assert_eq!(address, line0);
                Some(attempt)
            }
            _ => None,
        })
        .collect();
    assert_eq!(attempts, vec![1, 2], "Retry{{2}} must back off twice");
}

/// Any effective fault in the packed-blocks region of a version-2
/// container must be rejected at load time — the per-block CRC records
/// make silent block corruption impossible.
#[test]
fn fault_injector_block_faults_in_v2_detected_at_load() {
    let (_, rom) = generated_rom(4);
    let bytes = rom.to_bytes_v2();
    let layout = ContainerLayout::of(&bytes).expect("layout parses");
    assert_eq!(layout.version, 2);
    let mut effective = 0;
    for seed in 0..32u64 {
        let plan = FaultPlan::seeded(seed, &layout, FaultRegion::Blocks, 1);
        let mut corrupted = bytes.clone();
        if plan.apply(&mut corrupted) == 0 {
            continue; // a stomp that restored the original byte
        }
        effective += 1;
        assert!(
            CompressedImage::from_bytes(&corrupted).is_err(),
            "seed {seed}: corrupted v2 container loaded cleanly"
        );
    }
    assert!(
        effective >= 16,
        "fault scan was vacuous ({effective} effective faults)"
    );
}

/// The acceptance-criterion test: a single injected bit flip in a
/// version-1 container's text blocks (no CRC records to lean on) is
/// demonstrably caught — either the loader rejects the stream, or the
/// lockstep co-simulation diverges the moment a corrupted instruction
/// executes. A flip that survives both must be provably benign: every
/// program counter the reference fetches decodes to the original word.
#[test]
fn fault_injector_bit_flip_caught_by_load_or_lockstep() {
    let (image, rom) = generated_rom(5);
    let bytes = rom.to_bytes();
    let layout = ContainerLayout::of(&bytes).expect("layout parses");
    assert_eq!(layout.version, 1);

    let mut executed = PcSetSink::default();
    Machine::with_config(&image, MachineConfig::default())
        .run(&mut executed)
        .expect("reference runs");

    let (mut flips, mut caught_load, mut caught_lockstep, mut benign) = (0u32, 0u32, 0u32, 0u32);
    for seed in 0..48u64 {
        let plan = FaultPlan::seeded(seed, &layout, FaultRegion::Blocks, 1);
        if !matches!(plan.faults()[0].kind, FaultKind::BitFlip { .. }) {
            continue;
        }
        flips += 1;
        let mut corrupted = bytes.clone();
        assert_eq!(plan.apply(&mut corrupted), 1, "a bit flip always lands");
        let faulted = match CompressedImage::from_bytes(&corrupted) {
            Err(_) => {
                caught_load += 1;
                continue;
            }
            Ok(faulted) => faulted,
        };
        let verdict = run_cosim_with(
            &image,
            vec![CosimVariant {
                label: "v1-bitflip",
                rom: faulted.clone(),
                policy: DegradePolicy::Trap,
            }],
            2_000_000,
        )
        .expect("reference is sound");
        match verdict {
            CosimVerdict::Divergence(_) => caught_lockstep += 1,
            CosimVerdict::Match { .. } => {
                // A full-state lockstep match means the flip was
                // architecturally invisible on this run (e.g. it landed
                // in never-executed text, in stream padding, or in a
                // don't-care field of an executed encoding). Anything
                // with an observable effect was caught above — but a
                // flip that changed an *executed* word yet still
                // matched must at least be reproducibly benign, so
                // re-run the lockstep to rule out nondeterminism.
                let changed_executed = (0..rom.line_count()).any(|line| {
                    let addr = rom.text_base() + line as u32 * 32;
                    let pristine = rom.expand_line(addr).expect("pristine expands");
                    let mutated = faulted.expand_line(addr).expect("loaded image expands");
                    (0..8usize).any(|word| {
                        executed.0.contains(&(addr + word as u32 * 4))
                            && pristine[word * 4..word * 4 + 4] != mutated[word * 4..word * 4 + 4]
                    })
                });
                if changed_executed {
                    let again = run_cosim_with(
                        &image,
                        vec![CosimVariant {
                            label: "v1-bitflip-rerun",
                            rom: faulted,
                            policy: DegradePolicy::Trap,
                        }],
                        2_000_000,
                    )
                    .expect("reference is sound");
                    assert!(
                        matches!(again, CosimVerdict::Match { .. }),
                        "seed {seed}: lockstep verdict not reproducible"
                    );
                }
                benign += 1;
            }
        }
    }
    assert!(flips >= 10, "bit-flip scan was vacuous ({flips} flips)");
    eprintln!(
        "bit-flip scan: {flips} flips -> {caught_load} caught at load, \
         {caught_lockstep} caught in lockstep, {benign} benign"
    );
    // Deterministic scan (fixed generator seed, fixed fault seeds): the
    // current split is 20 lockstep catches to 7 benign flips, so a
    // floor of 10 leaves headroom for compression-layout drift without
    // ever letting the catch rate quietly collapse.
    assert!(
        caught_load + caught_lockstep >= 10,
        "too few injected flips caught (load {caught_load}, lockstep {caught_lockstep}, \
         benign {benign})"
    );
}
