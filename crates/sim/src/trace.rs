//! Trace capture for the trace-once, replay-many sweep engine.
//!
//! An [`AccessTrace`] is a compact, replayable form of one workload's
//! instruction-fetch stream. Capturing it costs one pass over the
//! per-fetch `(pc, data_access_count)` trace; replaying it through the
//! timing models (see [`Simulation`](crate::Simulation)) reproduces the
//! exact [`RunStats`](crate::RunStats) of a direct simulation, for
//! *every* system configuration, without re-executing the workload.
//!
//! # Run compaction
//!
//! The trace is stored as [`FetchRun`]s: maximal sequences of
//! consecutive fetches that stay within one 32-byte cache line
//! ([`LINE_BYTES`]). Compaction is lossless for every model this crate
//! simulates, because the i-cache is direct-mapped and nothing else
//! touches it between fetches:
//!
//! * after the first fetch of a run installs (or finds) the line, the
//!   remaining fetches of the run are guaranteed hits — a miss, refill,
//!   CLB access, or memory burst can only happen at a run's first fetch;
//! * per-entry counter updates (instructions, cycles, data accesses)
//!   are sums, so a run of `n` fetches folds into the first fetch plus
//!   `n - 1` hit cycles;
//! * the data-side model is analytic over the *total* data-access
//!   count, so per-run sums suffice.
//!
//! Splitting a run early is also harmless: the second part's first
//! fetch simply hits (the line is still resident), so capture may break
//! oversized runs without changing replayed statistics.
//!
//! # On-disk form
//!
//! [`AccessTrace::to_bytes`] reuses `ccrp-core`'s snapshot framing
//! (magic, version, fingerprint, and a CRC-32 over header and payload
//! — see [`ccrp::write_frame`]), so a `.trace` file is rejected with a
//! typed [`TraceError`] on any corruption, truncation, or version
//! mismatch — never a panic. The payload is delta-encoded: each run
//! stores the zigzag-LEB128 delta of its first PC from the previous
//! run's, plus LEB128 fetch and data counts.

use std::error::Error;
use std::fmt;

use ccrp::{read_frame, write_frame, ByteReader, SnapshotError};

use crate::icache::LINE_BYTES;

/// Version of the `.trace` payload layout inside the snapshot frame.
pub const TRACE_FORMAT_VERSION: u32 = 1;

/// A maximal sequence of consecutive fetches within one cache line —
/// the unit of compacted replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchRun {
    /// PC of the run's first fetch (the only one that can miss).
    pub first_pc: u32,
    /// Number of fetches in the run (always at least 1).
    pub fetches: u32,
    /// Total data accesses issued by the run's fetches.
    pub data: u32,
}

impl FetchRun {
    /// The cache line the whole run stays within.
    pub fn line(&self) -> u32 {
        self.first_pc / LINE_BYTES
    }
}

/// Errors from loading a serialized trace.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceError {
    /// The snapshot frame was rejected (bad magic, truncation, CRC
    /// mismatch).
    Frame(SnapshotError),
    /// The frame is intact but its payload version is unknown.
    UnsupportedVersion {
        /// The version found in the frame header.
        found: u32,
    },
    /// The frame is intact but the payload violates the trace layout.
    Malformed {
        /// What constraint the payload violated.
        what: &'static str,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Frame(e) => write!(f, "trace frame: {e}"),
            TraceError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "trace version {found} unsupported (expected {TRACE_FORMAT_VERSION})"
                )
            }
            TraceError::Malformed { what } => write!(f, "malformed trace payload: {what}"),
        }
    }
}

impl Error for TraceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceError::Frame(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SnapshotError> for TraceError {
    fn from(e: SnapshotError) -> Self {
        TraceError::Frame(e)
    }
}

/// A run-compacted instruction-fetch trace (see the module docs for the
/// compaction argument and the on-disk form).
///
/// # Examples
///
/// ```
/// use ccrp_sim::AccessTrace;
///
/// // Four fetches in line 0, one in line 1: two runs.
/// let trace = AccessTrace::capture([(0u32, 0u8), (4, 1), (8, 0), (12, 0), (32, 2)]);
/// assert_eq!(trace.runs().len(), 2);
/// assert_eq!(trace.fetches(), 5);
/// assert_eq!(trace.data_accesses(), 3);
///
/// let bytes = trace.to_bytes(0xC0FFEE);
/// let (loaded, fingerprint) = AccessTrace::from_bytes(&bytes)?;
/// assert_eq!(loaded, trace);
/// assert_eq!(fingerprint, 0xC0FFEE);
/// # Ok::<(), ccrp_sim::TraceError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AccessTrace {
    runs: Vec<FetchRun>,
    fetches: u64,
    data: u64,
}

impl AccessTrace {
    /// Captures a trace from a per-fetch `(pc, data_access_count)`
    /// stream — the same shape `ccrp-emu` records and the live
    /// simulators consume.
    pub fn capture(fetches: impl IntoIterator<Item = (u32, u8)>) -> Self {
        let mut trace = AccessTrace::default();
        for (pc, data) in fetches {
            trace.push(pc, data);
        }
        trace
    }

    /// Appends one fetch, extending the current run when the PC stays
    /// in its line (and its counters cannot overflow — a split run
    /// replays identically, see the module docs).
    fn push(&mut self, pc: u32, data: u8) {
        self.fetches += 1;
        self.data += u64::from(data);
        if let Some(run) = self.runs.last_mut() {
            if pc / LINE_BYTES == run.line() && run.fetches < u32::MAX {
                if let Some(total) = run.data.checked_add(u32::from(data)) {
                    run.fetches += 1;
                    run.data = total;
                    return;
                }
            }
        }
        self.runs.push(FetchRun {
            first_pc: pc,
            fetches: 1,
            data: u32::from(data),
        });
    }

    /// The compacted runs, in fetch order.
    pub fn runs(&self) -> &[FetchRun] {
        &self.runs
    }

    /// Total fetches captured (the workload's dynamic instruction
    /// count).
    pub fn fetches(&self) -> u64 {
        self.fetches
    }

    /// Total data accesses captured.
    pub fn data_accesses(&self) -> u64 {
        self.data
    }

    /// Whether the trace holds no fetches.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Serializes to the versioned, CRC-framed on-disk form.
    /// `fingerprint` identifies the traced workload (the CLI uses a
    /// CRC-32 of the workload name) and is returned verbatim by
    /// [`from_bytes`](Self::from_bytes).
    pub fn to_bytes(&self, fingerprint: u32) -> Vec<u8> {
        let mut payload = Vec::with_capacity(16 + self.runs.len() * 4);
        put_varint(&mut payload, self.runs.len() as u64);
        put_varint(&mut payload, self.fetches);
        put_varint(&mut payload, self.data);
        let mut prev_pc = 0i64;
        for run in &self.runs {
            let pc = i64::from(run.first_pc);
            put_varint(&mut payload, zigzag(pc - prev_pc));
            prev_pc = pc;
            put_varint(&mut payload, u64::from(run.fetches));
            put_varint(&mut payload, u64::from(run.data));
        }
        write_frame(TRACE_FORMAT_VERSION, fingerprint, &payload)
    }

    /// Loads a trace serialized by [`to_bytes`](Self::to_bytes),
    /// returning it together with the stored fingerprint.
    ///
    /// # Errors
    ///
    /// [`TraceError::Frame`] when the frame is corrupt or truncated
    /// (every byte is covered by the frame CRC), `UnsupportedVersion`
    /// for an unknown payload version, and `Malformed` when the payload
    /// violates the trace layout (zero-length runs, PC overflow,
    /// inconsistent totals, trailing bytes).
    pub fn from_bytes(bytes: &[u8]) -> Result<(Self, u32), TraceError> {
        let (header, payload) = read_frame(bytes)?;
        if header.version != TRACE_FORMAT_VERSION {
            return Err(TraceError::UnsupportedVersion {
                found: header.version,
            });
        }
        let mut reader = ByteReader::new(payload);
        let run_count = read_varint(&mut reader)?;
        if run_count > payload.len() as u64 {
            // Each run needs at least 3 payload bytes; reject absurd
            // counts before reserving memory for them.
            return Err(TraceError::Malformed {
                what: "run count exceeds payload size",
            });
        }
        let fetches = read_varint(&mut reader)?;
        let data = read_varint(&mut reader)?;
        let mut runs = Vec::with_capacity(run_count as usize);
        let mut prev_pc = 0i64;
        let (mut fetch_sum, mut data_sum) = (0u64, 0u64);
        for _ in 0..run_count {
            let pc = prev_pc
                .checked_add(unzigzag(read_varint(&mut reader)?))
                .ok_or(TraceError::Malformed {
                    what: "PC delta overflows",
                })?;
            let first_pc = u32::try_from(pc).map_err(|_| TraceError::Malformed {
                what: "PC outside the 32-bit address space",
            })?;
            prev_pc = pc;
            let run_fetches = read_varint(&mut reader)?;
            let run_fetches = u32::try_from(run_fetches).map_err(|_| TraceError::Malformed {
                what: "run fetch count overflows",
            })?;
            if run_fetches == 0 {
                return Err(TraceError::Malformed {
                    what: "zero-length run",
                });
            }
            let run_data = read_varint(&mut reader)?;
            let run_data = u32::try_from(run_data).map_err(|_| TraceError::Malformed {
                what: "run data count overflows",
            })?;
            fetch_sum = fetch_sum.saturating_add(u64::from(run_fetches));
            data_sum = data_sum.saturating_add(u64::from(run_data));
            runs.push(FetchRun {
                first_pc,
                fetches: run_fetches,
                data: run_data,
            });
        }
        if !reader.is_exhausted() {
            return Err(TraceError::Malformed {
                what: "trailing bytes after the last run",
            });
        }
        if fetch_sum != fetches || data_sum != data {
            return Err(TraceError::Malformed {
                what: "run totals disagree with the header",
            });
        }
        Ok((
            AccessTrace {
                runs,
                fetches,
                data,
            },
            header.fingerprint,
        ))
    }
}

/// Zigzag-encodes a signed delta so small magnitudes stay short.
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Appends `v` as an LEB128 varint.
fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

/// Reads an LEB128 varint; at most 10 bytes encode a `u64`.
fn read_varint(reader: &mut ByteReader<'_>) -> Result<u64, TraceError> {
    let mut value = 0u64;
    for shift in (0..64).step_by(7) {
        let byte = reader.read_u8()?;
        let bits = u64::from(byte & 0x7f);
        if shift == 63 && bits > 1 {
            break;
        }
        value |= bits << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
    }
    Err(TraceError::Malformed {
        what: "varint overflows 64 bits",
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn capture_compacts_line_runs() {
        // 32 sequential fetches in line 0, then a jump to line 4.
        let mut fetches: Vec<(u32, u8)> = (0..32u32).map(|pc| (pc, 0)).collect();
        fetches.push((0x80, 1));
        let trace = AccessTrace::capture(fetches);
        assert_eq!(trace.runs().len(), 2);
        assert_eq!(trace.runs()[0].fetches, 32);
        assert_eq!(
            trace.runs()[1],
            FetchRun {
                first_pc: 0x80,
                fetches: 1,
                data: 1
            }
        );
        assert_eq!(trace.fetches(), 33);
        assert_eq!(trace.data_accesses(), 1);
    }

    #[test]
    fn halfword_stride_capture_compacts_by_line() {
        // An RVC-style fetch stream advances the PC by 2 bytes, so one
        // 32-byte line holds 16 fetches — the compaction key is
        // pc / LINE_BYTES, never a 4-byte instruction index.
        let fetches: Vec<(u32, u8)> = (0..64u32).step_by(2).map(|pc| (pc, 0)).collect();
        let trace = AccessTrace::capture(fetches);
        assert_eq!(trace.runs().len(), 2);
        for (index, run) in trace.runs().iter().enumerate() {
            assert_eq!(
                *run,
                FetchRun {
                    first_pc: index as u32 * LINE_BYTES,
                    fetches: 16,
                    data: 0
                }
            );
        }
        assert_eq!(trace.fetches(), 32);
    }

    #[test]
    fn runs_may_start_at_any_halfword() {
        // A branch landing on the last halfword of line 1 (0x3E), then
        // falling through into line 2: the run splits exactly at the
        // line crossing even though no PC is word-aligned, and the
        // halfword PCs survive the on-disk round-trip.
        let trace = AccessTrace::capture([(0x3E, 0), (0x40, 1), (0x42, 0)]);
        assert_eq!(trace.runs().len(), 2);
        assert_eq!(
            trace.runs()[0],
            FetchRun {
                first_pc: 0x3E,
                fetches: 1,
                data: 0
            }
        );
        assert_eq!(
            trace.runs()[1],
            FetchRun {
                first_pc: 0x40,
                fetches: 2,
                data: 1
            }
        );
        let bytes = trace.to_bytes(3);
        let (loaded, _) = AccessTrace::from_bytes(&bytes).unwrap();
        assert_eq!(loaded, trace);
    }

    #[test]
    fn empty_trace_round_trips() {
        let trace = AccessTrace::capture(std::iter::empty());
        assert!(trace.is_empty());
        let bytes = trace.to_bytes(7);
        let (loaded, fp) = AccessTrace::from_bytes(&bytes).unwrap();
        assert_eq!(loaded, trace);
        assert_eq!(fp, 7);
    }

    #[test]
    fn extreme_pcs_round_trip() {
        let trace = AccessTrace::capture([(u32::MAX, u8::MAX), (0, 0), (u32::MAX - 3, 1)]);
        let bytes = trace.to_bytes(u32::MAX);
        let (loaded, fp) = AccessTrace::from_bytes(&bytes).unwrap();
        assert_eq!(loaded, trace);
        assert_eq!(fp, u32::MAX);
    }

    #[test]
    fn every_single_byte_corruption_is_rejected() {
        let trace = AccessTrace::capture((0..256u32).step_by(4).map(|pc| (pc * 3, (pc % 7) as u8)));
        let bytes = trace.to_bytes(0xDEAD_BEEF);
        for i in 0..bytes.len() {
            for flip in [0x01u8, 0x80] {
                let mut stomped = bytes.clone();
                stomped[i] ^= flip;
                assert!(
                    AccessTrace::from_bytes(&stomped).is_err(),
                    "flip {flip:#x} at byte {i} accepted"
                );
            }
        }
    }

    #[test]
    fn truncation_is_rejected() {
        let trace = AccessTrace::capture([(0u32, 0u8), (64, 1)]);
        let bytes = trace.to_bytes(1);
        for len in 0..bytes.len() {
            assert!(AccessTrace::from_bytes(&bytes[..len]).is_err(), "len {len}");
        }
    }

    #[test]
    fn unsupported_version_is_typed() {
        let bytes = ccrp::write_frame(TRACE_FORMAT_VERSION + 9, 0, &[0, 0, 0]);
        assert!(matches!(
            AccessTrace::from_bytes(&bytes),
            Err(TraceError::UnsupportedVersion { found }) if found == TRACE_FORMAT_VERSION + 9
        ));
    }

    #[test]
    fn malformed_payloads_are_typed() {
        // Zero-length run.
        let mut payload = Vec::new();
        put_varint(&mut payload, 1); // one run
        put_varint(&mut payload, 0); // fetches
        put_varint(&mut payload, 0); // data
        put_varint(&mut payload, zigzag(0));
        put_varint(&mut payload, 0); // run fetches == 0
        put_varint(&mut payload, 0);
        let bytes = ccrp::write_frame(TRACE_FORMAT_VERSION, 0, &payload);
        assert!(matches!(
            AccessTrace::from_bytes(&bytes),
            Err(TraceError::Malformed { .. })
        ));

        // Totals disagreeing with the runs.
        let mut payload = Vec::new();
        put_varint(&mut payload, 1);
        put_varint(&mut payload, 99); // claimed fetches
        put_varint(&mut payload, 0);
        put_varint(&mut payload, zigzag(0));
        put_varint(&mut payload, 1);
        put_varint(&mut payload, 0);
        let bytes = ccrp::write_frame(TRACE_FORMAT_VERSION, 0, &payload);
        assert!(matches!(
            AccessTrace::from_bytes(&bytes),
            Err(TraceError::Malformed {
                what: "run totals disagree with the header"
            })
        ));

        // PC outside the 32-bit address space.
        let mut payload = Vec::new();
        put_varint(&mut payload, 1);
        put_varint(&mut payload, 1);
        put_varint(&mut payload, 0);
        put_varint(&mut payload, zigzag(i64::from(u32::MAX) + 1));
        put_varint(&mut payload, 1);
        put_varint(&mut payload, 0);
        let bytes = ccrp::write_frame(TRACE_FORMAT_VERSION, 0, &payload);
        assert!(matches!(
            AccessTrace::from_bytes(&bytes),
            Err(TraceError::Malformed {
                what: "PC outside the 32-bit address space"
            })
        ));
    }

    proptest! {
        #[test]
        fn round_trip_is_lossless(
            fetches in proptest::collection::vec((0u32..1 << 20, 0u8..8), 0..400),
            fingerprint: u32,
        ) {
            let trace = AccessTrace::capture(fetches.iter().copied());
            prop_assert_eq!(trace.fetches(), fetches.len() as u64);
            let bytes = trace.to_bytes(fingerprint);
            let (loaded, fp) = AccessTrace::from_bytes(&bytes).unwrap();
            prop_assert_eq!(loaded, trace);
            prop_assert_eq!(fp, fingerprint);
        }

        #[test]
        fn varints_round_trip(values in proptest::collection::vec(any::<u64>(), 1..64)) {
            let mut buf = Vec::new();
            for &v in &values {
                put_varint(&mut buf, v);
            }
            let mut reader = ByteReader::new(&buf);
            for &v in &values {
                prop_assert_eq!(read_varint(&mut reader).unwrap(), v);
            }
            prop_assert!(reader.is_exhausted());
        }
    }
}
