//! The three instruction-memory models of §4.2.1, timed in 40 ns
//! processor cycles.
//!
//! * **EPROM** — standard ~100 ns EPROMs: every word read costs 3 cycles,
//!   with no burst advantage.
//! * **Burst EPROM** — 3 cycles for the first word of a burst, then 1
//!   cycle per subsequent sequential word.
//! * **Static-column DRAM** — 4 cycles for the first word (70 ns 4 Mb
//!   parts), 1 cycle per subsequent word, and a 2-cycle precharge after
//!   each burst during which the device cannot start a new access.

use ccrp::MemoryTiming;

/// Which §4.2.1 memory model to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemoryModel {
    /// Standard EPROM: 3 cycles per word, no bursts.
    Eprom,
    /// Burst-mode EPROM: 3 cycles first word, 1 per subsequent word.
    BurstEprom,
    /// Static-column DRAM: 4 + 1/word, 2-cycle precharge between bursts.
    ScDram,
}

impl MemoryModel {
    /// All three models, in the paper's presentation order.
    pub const ALL: [MemoryModel; 3] = [
        MemoryModel::Eprom,
        MemoryModel::BurstEprom,
        MemoryModel::ScDram,
    ];

    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            MemoryModel::Eprom => "EPROM",
            MemoryModel::BurstEprom => "Burst EPROM",
            MemoryModel::ScDram => "DRAM",
        }
    }

    /// Builds a fresh timing instance (DRAM models carry precharge
    /// state; a new instance starts idle).
    pub fn timing(self) -> MemorySim {
        MemorySim {
            model: self,
            ready_at: 0,
        }
    }
}

/// A stateful timing instance of one [`MemoryModel`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemorySim {
    model: MemoryModel,
    /// Earliest cycle the next access may start (DRAM precharge).
    ready_at: u64,
}

impl MemorySim {
    /// The model this instance simulates.
    pub fn model(&self) -> MemoryModel {
        self.model
    }

    /// Captures the timing state (the DRAM precharge deadline — the one
    /// piece of pending memory-model timing) for checkpointed replay.
    pub fn snapshot(&self) -> MemorySimSnapshot {
        MemorySimSnapshot {
            model: self.model,
            ready_at: self.ready_at,
        }
    }

    /// Restores a [`snapshot`](Self::snapshot), adopting its model.
    pub fn restore(&mut self, snapshot: &MemorySimSnapshot) {
        self.model = snapshot.model;
        self.ready_at = snapshot.ready_at;
    }
}

/// The captured state of a [`MemorySim`] (see [`MemorySim::snapshot`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemorySimSnapshot {
    model: MemoryModel,
    ready_at: u64,
}

impl MemoryTiming for MemorySim {
    fn read_burst(&mut self, words: u32, now: u64, arrivals: &mut Vec<u64>) {
        arrivals.clear();
        debug_assert!(words > 0, "zero-word burst");
        match self.model {
            MemoryModel::Eprom => {
                // Every word is an independent 3-cycle access.
                arrivals.extend((0..u64::from(words)).map(|i| now + 3 * (i + 1)));
            }
            MemoryModel::BurstEprom => {
                arrivals.extend((0..u64::from(words)).map(|i| now + 3 + i));
            }
            MemoryModel::ScDram => {
                let start = now.max(self.ready_at);
                arrivals.extend((0..u64::from(words)).map(|i| start + 4 + i));
                self.ready_at = *arrivals.last().expect("words > 0") + 2;
            }
        }
    }
}

/// Cycles for a standard processor's 8-word (32-byte) line refill,
/// starting from an idle memory. Useful as a reference constant in tests
/// and reports: EPROM 24, Burst EPROM 10, DRAM 11.
pub fn standard_refill_cycles(model: MemoryModel) -> u64 {
    let mut timing = model.timing();
    let mut arrivals = Vec::new();
    timing.read_burst(8, 0, &mut arrivals);
    *arrivals.last().expect("8 words requested")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_refill_constants() {
        assert_eq!(standard_refill_cycles(MemoryModel::Eprom), 24);
        assert_eq!(standard_refill_cycles(MemoryModel::BurstEprom), 10);
        assert_eq!(standard_refill_cycles(MemoryModel::ScDram), 11);
    }

    #[test]
    fn eprom_has_no_burst_advantage() {
        let mut t = MemoryModel::Eprom.timing();
        let mut a = Vec::new();
        t.read_burst(4, 100, &mut a);
        assert_eq!(a, vec![103, 106, 109, 112]);
    }

    #[test]
    fn burst_eprom_streams() {
        let mut t = MemoryModel::BurstEprom.timing();
        let mut a = Vec::new();
        t.read_burst(4, 100, &mut a);
        assert_eq!(a, vec![103, 104, 105, 106]);
    }

    #[test]
    fn dram_precharge_delays_back_to_back_bursts() {
        let mut t = MemoryModel::ScDram.timing();
        let mut a = Vec::new();
        t.read_burst(2, 0, &mut a);
        assert_eq!(a, vec![4, 5]);
        // Immediately following access must wait for precharge (ready 7).
        t.read_burst(1, 5, &mut a);
        assert_eq!(a, vec![11]);
        // A distant access is unaffected.
        t.read_burst(1, 1000, &mut a);
        assert_eq!(a, vec![1004]);
    }

    #[test]
    fn arrivals_are_monotone() {
        for model in MemoryModel::ALL {
            let mut t = model.timing();
            let mut a = Vec::new();
            t.read_burst(8, 17, &mut a);
            assert!(a.windows(2).all(|w| w[0] < w[1]), "{model:?}");
            assert!(a[0] > 17);
        }
    }

    #[test]
    fn names_match_tables() {
        assert_eq!(MemoryModel::Eprom.name(), "EPROM");
        assert_eq!(MemoryModel::BurstEprom.name(), "Burst EPROM");
    }
}
