//! Trace-driven system simulation for the CCRP experiments (§4 of
//! Wolfe & Chanin, MICRO-25 1992).
//!
//! This crate supplies everything around the [`ccrp`] core needed to
//! regenerate the paper's evaluation:
//!
//! * [`ICache`] — the direct-mapped, 32-byte-line on-chip instruction
//!   cache (256 B–4 KB);
//! * [`MemoryModel`] — the EPROM / Burst EPROM / static-column DRAM
//!   timings of §4.2.1, implementing [`ccrp::MemoryTiming`];
//! * [`DataCacheModel`] — the analytical data-side cost of §4.2.4;
//! * [`simulate_standard`] / [`simulate_ccrp`] / [`compare`] — replay an
//!   instruction trace through both processors and report the paper's
//!   three metrics: relative execution time ("Relative Performance"),
//!   instruction-cache miss rate, and relative memory traffic.
//!
//! # Examples
//!
//! ```
//! use ccrp::CompressedImage;
//! use ccrp_compress::{BlockAlignment, ByteCode, ByteHistogram};
//! use ccrp_sim::{compare, MemoryModel, SystemConfig};
//!
//! let text = vec![0u8; 2048];
//! let code = ByteCode::preselected(&ByteHistogram::of(&text))?;
//! let image = CompressedImage::build(0, &text, code, BlockAlignment::Word)?;
//! // A trace looping over the program twice, no data accesses.
//! let trace: Vec<(u32, u8)> =
//!     (0..2).flat_map(|_| (0..2048u32).step_by(4)).map(|pc| (pc, 0)).collect();
//! let config = SystemConfig::new()
//!     .with_cache_bytes(256)
//!     .with_memory(MemoryModel::Eprom);
//! let result = compare(&image, trace, &config)?;
//! assert!(result.memory_traffic_ratio() < 1.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dcache;
mod icache;
mod memory;
mod stepper;
mod system;

pub use ccrp::{BudgetExhausted, StepBudget};
pub use dcache::DataCacheModel;
pub use icache::{BadCacheSize, CacheStats, ICache, ICacheSnapshot, LINE_BYTES};
pub use memory::{standard_refill_cycles, MemoryModel, MemorySim, MemorySimSnapshot};
pub use stepper::{CcrpSim, CcrpSimSnapshot, SimCounters, StandardSim, StandardSimSnapshot};
pub use system::{
    compare, compare_probed, simulate_ccrp, simulate_ccrp_budgeted, simulate_ccrp_probed,
    simulate_standard, simulate_standard_budgeted, simulate_standard_probed, Comparison, RunStats,
    SimError, SystemConfig,
};
