//! Trace-driven system simulation for the CCRP experiments (§4 of
//! Wolfe & Chanin, MICRO-25 1992).
//!
//! This crate supplies everything around the [`ccrp`] core needed to
//! regenerate the paper's evaluation:
//!
//! * [`ICache`] — the direct-mapped, 32-byte-line on-chip instruction
//!   cache (256 B–4 KB);
//! * [`MemoryModel`] — the EPROM / Burst EPROM / static-column DRAM
//!   timings of §4.2.1, implementing [`ccrp::MemoryTiming`];
//! * [`DataCacheModel`] — the analytical data-side cost of §4.2.4;
//! * [`Simulation`] — the single simulation entry point: a
//!   [`SystemConfig`] plus optional probes and budget, executed over a
//!   live per-fetch trace or a captured [`AccessTrace`], reporting the
//!   paper's three metrics: relative execution time ("Relative
//!   Performance"), instruction-cache miss rate, and relative memory
//!   traffic;
//! * [`AccessTrace`] — a run-compacted, serializable fetch trace that
//!   replays to bit-identical results, so a sweep captures each
//!   workload once and replays it for every configuration
//!   ([`Simulation::replay_sweep`]).
//!
//! The old free functions (`simulate_standard`, `simulate_ccrp`,
//! `compare`, and their `_probed` / `_budgeted` variants) are
//! deprecated thin wrappers over [`Simulation`].
//!
//! # Examples
//!
//! ```
//! use ccrp::CompressedImage;
//! use ccrp_compress::{BlockAlignment, ByteCode, ByteHistogram};
//! use ccrp_sim::{AccessTrace, MemoryModel, Simulation, SystemConfig};
//!
//! let text = vec![0u8; 2048];
//! let code = ByteCode::preselected(&ByteHistogram::of(&text))?;
//! let image = CompressedImage::build(0, &text, code, BlockAlignment::Word)?;
//! // A trace looping over the program twice, no data accesses.
//! let trace: Vec<(u32, u8)> =
//!     (0..2).flat_map(|_| (0..2048u32).step_by(4)).map(|pc| (pc, 0)).collect();
//! let config = SystemConfig::new()
//!     .with_cache_bytes(256)
//!     .with_memory(MemoryModel::Eprom);
//! let result = Simulation::new(config).compare(&image, trace)?;
//! assert!(result.memory_traffic_ratio() < 1.0);
//!
//! // Capture once, replay for many configurations in one pass.
//! let captured = AccessTrace::capture(
//!     (0..2).flat_map(|_| (0..2048u32).step_by(4)).map(|pc| (pc, 0)),
//! );
//! let configs = [config, config.with_cache_bytes(512)];
//! let cells = Simulation::replay_sweep(&image, &captured, &configs)?;
//! assert_eq!(cells[0], result);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dcache;
mod icache;
mod memory;
mod simulation;
mod stepper;
mod system;
mod trace;

pub use ccrp::{BudgetExhausted, StepBudget};
pub use dcache::DataCacheModel;
pub use icache::{BadCacheSize, CacheStats, ICache, ICacheSnapshot, LINE_BYTES};
pub use memory::{standard_refill_cycles, MemoryModel, MemorySim, MemorySimSnapshot};
pub use simulation::{SimSource, Simulation};
pub use stepper::{CcrpSim, CcrpSimSnapshot, SimCounters, StandardSim, StandardSimSnapshot};
#[allow(deprecated)]
pub use system::{
    compare, compare_probed, simulate_ccrp, simulate_ccrp_budgeted, simulate_ccrp_probed,
    simulate_standard, simulate_standard_budgeted, simulate_standard_probed,
};
pub use system::{Comparison, RunStats, SimError, SystemConfig};
pub use trace::{AccessTrace, FetchRun, TraceError, TRACE_FORMAT_VERSION};
