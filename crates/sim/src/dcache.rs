//! The analytical data-cache model of §4.2.4.
//!
//! "Data cache hits are assumed to take no additional cycles. Data cache
//! misses add 4 cycles per access. A miss rate is multiplied by the
//! number of data accesses to predict the overall performance." Most
//! experiments run with no data cache at all — a 100% miss rate.

/// Analytical data-memory cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DataCacheModel {
    /// Fraction of data accesses that miss, 0..=1. 1.0 models the common
    /// embedded configuration with no data cache.
    pub miss_rate: f64,
    /// Cycles added per missing access (4 in the paper: one random DRAM
    /// word access).
    pub miss_penalty: u64,
}

impl DataCacheModel {
    /// No data cache: every access is a 4-cycle DRAM word read (the
    /// configuration of Tables 1–10).
    pub const NONE: DataCacheModel = DataCacheModel {
        miss_rate: 1.0,
        miss_penalty: 4,
    };

    /// A data cache with the given miss rate and the paper's 4-cycle
    /// penalty (Tables 11–13 sweep 0%, 2%, 10%, 25%, 100%).
    ///
    /// # Panics
    ///
    /// Panics if `miss_rate` is outside 0..=1.
    pub fn with_miss_rate(miss_rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&miss_rate),
            "miss rate {miss_rate} out of range"
        );
        Self {
            miss_rate,
            miss_penalty: 4,
        }
    }

    /// Expected stall cycles for `accesses` data references.
    pub fn stall_cycles(&self, accesses: u64) -> f64 {
        self.miss_rate * self.miss_penalty as f64 * accesses as f64
    }
}

impl Default for DataCacheModel {
    fn default() -> Self {
        Self::NONE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_cache_costs_four_per_access() {
        assert_eq!(DataCacheModel::NONE.stall_cycles(1000), 4000.0);
    }

    #[test]
    fn perfect_cache_costs_nothing() {
        assert_eq!(DataCacheModel::with_miss_rate(0.0).stall_cycles(12345), 0.0);
    }

    #[test]
    fn partial_miss_rates_scale_linearly() {
        let m = DataCacheModel::with_miss_rate(0.25);
        assert_eq!(m.stall_cycles(100), 100.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_rate_panics() {
        DataCacheModel::with_miss_rate(1.5);
    }
}
