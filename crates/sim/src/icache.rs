//! The direct-mapped, single-cycle on-chip instruction cache (§3.1):
//! 32-byte lines, 256 bytes to 4 KB, identical for the standard and
//! compressed processors (the CCRP differs only in how misses refill).

use std::error::Error;
use std::fmt;

/// Cache line size in bytes (fixed at the paper's 32).
pub const LINE_BYTES: u32 = 32;

/// Error for invalid cache geometry.
///
/// Marked `#[non_exhaustive]` so later geometry constraints (e.g. an
/// upper bound, or an associativity field) can be reported through the
/// same type without breaking downstream matches or constructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct BadCacheSize {
    /// The rejected size in bytes.
    pub bytes: u32,
}

impl BadCacheSize {
    pub(crate) fn new(bytes: u32) -> Self {
        Self { bytes }
    }
}

impl fmt::Display for BadCacheSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cache size {} bytes: must be a power of two of at least one {LINE_BYTES}-byte line",
            self.bytes
        )
    }
}

impl Error for BadCacheSize {}

/// Access counters for an [`ICache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses (one per instruction fetch).
    pub fetches: u64,
    /// Accesses that missed.
    pub misses: u64,
}

impl CacheStats {
    /// Miss rate in 0..=1 (0 when never accessed).
    pub fn miss_rate(&self) -> f64 {
        if self.fetches == 0 {
            0.0
        } else {
            self.misses as f64 / self.fetches as f64
        }
    }
}

/// A direct-mapped instruction cache model (tags only — contents are
/// never stored because the trace supplies correctness; only hit/miss
/// behaviour and timing matter).
///
/// # Examples
///
/// ```
/// use ccrp_sim::ICache;
///
/// let mut cache = ICache::new(256)?;
/// assert!(!cache.access(0x000));       // compulsory miss
/// assert!(cache.access(0x01C));        // same line
/// assert!(!cache.access(0x100));       // conflicts with line 0 (256 B cache)
/// assert!(!cache.access(0x000));       // evicted
/// # Ok::<(), ccrp_sim::BadCacheSize>(())
/// ```
#[derive(Debug, Clone)]
pub struct ICache {
    tags: Vec<Option<u32>>,
    index_mask: u32,
    stats: CacheStats,
}

impl ICache {
    /// Creates a cache of `bytes` total capacity.
    ///
    /// # Errors
    ///
    /// [`BadCacheSize`] unless `bytes` is a power of two and at least one
    /// line.
    pub fn new(bytes: u32) -> Result<Self, BadCacheSize> {
        if !bytes.is_power_of_two() || bytes < LINE_BYTES {
            return Err(BadCacheSize::new(bytes));
        }
        let lines = bytes / LINE_BYTES;
        Ok(Self {
            tags: vec![None; lines as usize],
            index_mask: lines - 1,
            stats: CacheStats::default(),
        })
    }

    /// Number of lines.
    pub fn lines(&self) -> u32 {
        self.tags.len() as u32
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> u32 {
        self.lines() * LINE_BYTES
    }

    /// Performs one fetch at `address`; returns `true` on a hit. A miss
    /// installs the line (the refill engine's timing is accounted
    /// separately by the system simulator).
    pub fn access(&mut self, address: u32) -> bool {
        self.stats.fetches += 1;
        let line = address / LINE_BYTES;
        let index = (line & self.index_mask) as usize;
        let tag = line >> self.index_mask.trailing_ones();
        if self.tags[index] == Some(tag) {
            true
        } else {
            self.tags[index] = Some(tag);
            self.stats.misses += 1;
            false
        }
    }

    /// Records `hits` fetches that are known to hit without touching
    /// the tag array — the compacted-replay fast path for fetches that
    /// stay within the line an immediately preceding [`access`] just
    /// installed or found (see [`FetchRun`](crate::FetchRun)). Only the
    /// fetch counter moves; calling this for an address whose line is
    /// *not* resident would misreport a miss as a hit.
    ///
    /// [`access`]: Self::access
    pub fn record_hits(&mut self, hits: u64) {
        self.stats.fetches += hits;
    }

    /// Invalidates the whole cache (statistics are kept).
    pub fn flush(&mut self) {
        self.tags.fill(None);
    }

    /// Access counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Captures the full cache state — tags and counters — for
    /// checkpointed replay.
    pub fn snapshot(&self) -> ICacheSnapshot {
        ICacheSnapshot {
            tags: self.tags.clone(),
            stats: self.stats,
        }
    }

    /// Restores a [`snapshot`](Self::snapshot), adopting its geometry
    /// (snapshots record tag arrays whose length is a power of two by
    /// construction, so the derived index mask is always valid).
    pub fn restore(&mut self, snapshot: &ICacheSnapshot) {
        self.tags.clone_from(&snapshot.tags);
        self.index_mask = snapshot.tags.len() as u32 - 1;
        self.stats = snapshot.stats;
    }
}

/// The captured state of an [`ICache`] (see [`ICache::snapshot`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ICacheSnapshot {
    tags: Vec<Option<u32>>,
    stats: CacheStats,
}

impl ICacheSnapshot {
    /// Number of lines the captured cache had.
    pub fn lines(&self) -> u32 {
        self.tags.len() as u32
    }

    /// The captured access counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rejects_bad_sizes() {
        assert!(ICache::new(0).is_err());
        assert!(ICache::new(48).is_err());
        assert!(ICache::new(16).is_err());
        assert!(ICache::new(256).is_ok());
        assert!(ICache::new(4096).is_ok());
    }

    #[test]
    fn spatial_locality_hits_within_line() {
        let mut c = ICache::new(1024).unwrap();
        assert!(!c.access(0x40));
        for offset in 1..32 {
            assert!(c.access(0x40 + offset));
        }
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.stats().fetches, 32);
    }

    #[test]
    fn conflict_misses_in_direct_mapped() {
        let mut c = ICache::new(256).unwrap(); // 8 lines
                                               // Two addresses 256 bytes apart ping-pong one set.
        assert!(!c.access(0x000));
        assert!(!c.access(0x100));
        assert!(!c.access(0x000));
        assert!(!c.access(0x100));
        assert_eq!(c.stats().miss_rate(), 1.0);
    }

    #[test]
    fn bigger_cache_never_more_misses_on_looping_trace() {
        // A loop over 2 KB of code: 4 KB cache holds it; 256 B thrashes.
        let trace: Vec<u32> = (0..5).flat_map(|_| (0..2048u32).step_by(4)).collect();
        let mut small = ICache::new(256).unwrap();
        let mut big = ICache::new(4096).unwrap();
        for &pc in &trace {
            small.access(pc);
            big.access(pc);
        }
        assert!(big.stats().misses < small.stats().misses);
        // Big cache only pays compulsory misses: 2048/32 = 64.
        assert_eq!(big.stats().misses, 64);
    }

    #[test]
    fn flush_forces_misses() {
        let mut c = ICache::new(512).unwrap();
        c.access(0);
        c.flush();
        assert!(!c.access(0));
    }

    proptest! {
        #[test]
        fn repeat_access_always_hits(addr: u32, size_exp in 3u32..7) {
            let mut c = ICache::new(32 << size_exp).unwrap();
            c.access(addr);
            prop_assert!(c.access(addr));
        }

        #[test]
        fn miss_rate_bounded(addrs in proptest::collection::vec(0u32..(1<<24), 1..200)) {
            let mut c = ICache::new(1024).unwrap();
            for &a in &addrs {
                c.access(a);
            }
            let rate = c.stats().miss_rate();
            prop_assert!((0.0..=1.0).contains(&rate));
        }
    }
}
