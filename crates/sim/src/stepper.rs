//! Incremental, checkpointable forms of the two trace-driven simulators.
//!
//! [`StandardSim`] and [`CcrpSim`] carry one trace entry's worth of
//! simulation per [`step`](StandardSim::step): exactly the loop body
//! the [`Simulation`](crate::Simulation) entry point drives — a
//! whole-source execution and an equivalent step loop are the same
//! computation, operation for operation. The compacted
//! [`replay_run_probed`](StandardSim::replay_run_probed) fast path
//! folds a [`FetchRun`] into one step plus a bulk hit update, which the
//! trace-replay engine uses to advance many configurations per pass.
//!
//! Each stepper snapshots to a plain value ([`StandardSimSnapshot`] /
//! [`CcrpSimSnapshot`]) capturing every piece of cross-step state: cache
//! tags and counters, the memory model's precharge deadline, the CLB
//! (contents, LRU order, counters), and the running [`SimCounters`].
//! Restoring a snapshot and replaying the remaining trace therefore
//! produces results identical to an unbroken run — the property the
//! segment-parallel replay scheduler in `ccrp-bench` is built on.

use ccrp::{CompressedImage, MemoryTiming, RefillEngine, RefillEngineSnapshot};
use ccrp_probe::{Event, NullProbe, Probe};

use crate::dcache::DataCacheModel;
use crate::icache::{ICache, ICacheSnapshot};
use crate::memory::{MemorySim, MemorySimSnapshot};
use crate::system::{RunStats, SimError, SystemConfig};
use crate::trace::FetchRun;

/// The running totals both steppers accumulate — the mutable scalar half
/// of a simulation snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimCounters {
    /// Current simulated cycle.
    pub cycle: u64,
    /// Cycles spent waiting on line refills.
    pub refill_cycles: u64,
    /// Bytes read from instruction memory.
    pub bytes_from_memory: u64,
    /// Trace entries replayed.
    pub instructions: u64,
    /// Data accesses replayed.
    pub data_accesses: u64,
}

/// The standard (uncompressed) processor, one trace entry at a time.
#[derive(Debug, Clone)]
pub struct StandardSim {
    cache: ICache,
    memory: MemorySim,
    dcache: DataCacheModel,
    /// Scratch for burst arrivals; cleared by every read, never part of
    /// a snapshot.
    arrivals: Vec<u64>,
    counters: SimCounters,
}

impl StandardSim {
    /// Builds a stepper for `config`.
    ///
    /// # Errors
    ///
    /// [`SimError::Cache`] for invalid cache geometry.
    pub fn new(config: &SystemConfig) -> Result<Self, SimError> {
        Ok(Self {
            cache: ICache::new(config.cache_bytes)?,
            memory: config.memory.timing(),
            dcache: config.dcache,
            arrivals: Vec::with_capacity(8),
            counters: SimCounters::default(),
        })
    }

    /// Replays one trace entry, reporting miss and burst events to
    /// `probe`.
    pub fn step_probed<P: Probe>(&mut self, pc: u32, data: u8, probe: &mut P) {
        self.counters.instructions += 1;
        self.counters.data_accesses += u64::from(data);
        self.counters.cycle += 1;
        if !self.cache.access(pc) {
            probe.emit(self.counters.cycle, Event::CacheMiss { address: pc });
            self.memory
                .read_burst(8, self.counters.cycle, &mut self.arrivals);
            let done = *self.arrivals.last().expect("8-word burst");
            probe.emit(self.counters.cycle, Event::MemoryBurst { words: 8, done });
            self.counters.refill_cycles += done - self.counters.cycle;
            self.counters.bytes_from_memory += 32;
            self.counters.cycle = done;
        }
    }

    /// Replays one trace entry without probing.
    pub fn step(&mut self, pc: u32, data: u8) {
        self.step_probed(pc, data, &mut NullProbe);
    }

    /// Replays one compacted [`FetchRun`] — operation for operation the
    /// same computation as stepping each of the run's fetches, because
    /// only the run's first fetch can miss in the direct-mapped cache
    /// (the remaining fetches stay in the just-accessed line) and every
    /// other per-entry update is a sum. Emits the identical event
    /// stream: misses and bursts occur only at run starts.
    pub fn replay_run_probed<P: Probe>(&mut self, run: FetchRun, probe: &mut P) {
        if run.fetches == 0 {
            return;
        }
        self.step_probed(run.first_pc, 0, probe);
        self.counters.data_accesses += u64::from(run.data);
        let rest = u64::from(run.fetches) - 1;
        self.counters.instructions += rest;
        self.counters.cycle += rest;
        self.cache.record_hits(rest);
    }

    /// The running totals.
    pub fn counters(&self) -> SimCounters {
        self.counters
    }

    /// Metrics as of the entries replayed so far, identical to what the
    /// whole-trace simulator reports over the same prefix.
    pub fn stats(&self) -> RunStats {
        RunStats {
            instructions: self.counters.instructions,
            data_accesses: self.counters.data_accesses,
            cache: self.cache.stats(),
            refill_cycles: self.counters.refill_cycles,
            bytes_from_memory: self.counters.bytes_from_memory,
            data_stall_cycles: self.dcache.stall_cycles(self.counters.data_accesses),
            clb: None,
        }
    }

    /// Captures every piece of cross-step state.
    pub fn snapshot(&self) -> StandardSimSnapshot {
        StandardSimSnapshot {
            cache: self.cache.snapshot(),
            memory: self.memory.snapshot(),
            counters: self.counters,
        }
    }

    /// Restores a [`snapshot`](Self::snapshot); subsequent steps behave
    /// as if the run had never been interrupted.
    pub fn restore(&mut self, snapshot: &StandardSimSnapshot) {
        self.cache.restore(&snapshot.cache);
        self.memory.restore(&snapshot.memory);
        self.counters = snapshot.counters;
    }
}

/// The captured state of a [`StandardSim`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StandardSimSnapshot {
    /// Instruction-cache tags and counters.
    pub cache: ICacheSnapshot,
    /// Memory-model timing state.
    pub memory: MemorySimSnapshot,
    /// Running totals.
    pub counters: SimCounters,
}

/// The CCRP, one trace entry at a time.
#[derive(Debug, Clone)]
pub struct CcrpSim {
    cache: ICache,
    memory: MemorySim,
    engine: RefillEngine,
    dcache: DataCacheModel,
    counters: SimCounters,
}

impl CcrpSim {
    /// Builds a stepper for `config`.
    ///
    /// # Errors
    ///
    /// [`SimError::Cache`] for invalid cache geometry, [`SimError::Ccrp`]
    /// for an invalid refill configuration.
    pub fn new(config: &SystemConfig) -> Result<Self, SimError> {
        Ok(Self {
            cache: ICache::new(config.cache_bytes)?,
            memory: config.memory.timing(),
            engine: RefillEngine::new(config.refill)?,
            dcache: config.dcache,
            counters: SimCounters::default(),
        })
    }

    /// Replays one trace entry, refilling misses through `image`'s
    /// LAT/CLB/decoder path and reporting the full event stream to
    /// `probe`.
    ///
    /// # Errors
    ///
    /// [`SimError::Ccrp`] when the trace fetches outside the image.
    pub fn step_probed<P: Probe>(
        &mut self,
        image: &CompressedImage,
        pc: u32,
        data: u8,
        probe: &mut P,
    ) -> Result<(), SimError> {
        self.counters.instructions += 1;
        self.counters.data_accesses += u64::from(data);
        self.counters.cycle += 1;
        if !self.cache.access(pc) {
            probe.emit(self.counters.cycle, Event::CacheMiss { address: pc });
            let outcome = self.engine.refill_probed(
                image,
                pc,
                self.counters.cycle,
                &mut self.memory,
                probe,
            )?;
            self.counters.refill_cycles += outcome.ready_at - self.counters.cycle;
            self.counters.bytes_from_memory += u64::from(outcome.bytes_fetched);
            self.counters.cycle = outcome.ready_at;
        }
        Ok(())
    }

    /// Replays one trace entry without probing.
    ///
    /// # Errors
    ///
    /// As [`step_probed`](Self::step_probed).
    pub fn step(&mut self, image: &CompressedImage, pc: u32, data: u8) -> Result<(), SimError> {
        self.step_probed(image, pc, data, &mut NullProbe)
    }

    /// Replays one compacted [`FetchRun`]; see
    /// [`StandardSim::replay_run_probed`] for the equivalence argument
    /// (it holds unchanged here — the LAT/CLB/decoder refill path is
    /// only entered on a miss, which only the run's first fetch can
    /// take).
    ///
    /// # Errors
    ///
    /// As [`step_probed`](Self::step_probed).
    pub fn replay_run_probed<P: Probe>(
        &mut self,
        image: &CompressedImage,
        run: FetchRun,
        probe: &mut P,
    ) -> Result<(), SimError> {
        if run.fetches == 0 {
            return Ok(());
        }
        self.step_probed(image, run.first_pc, 0, probe)?;
        self.counters.data_accesses += u64::from(run.data);
        let rest = u64::from(run.fetches) - 1;
        self.counters.instructions += rest;
        self.counters.cycle += rest;
        self.cache.record_hits(rest);
        Ok(())
    }

    /// The running totals.
    pub fn counters(&self) -> SimCounters {
        self.counters
    }

    /// Metrics as of the entries replayed so far, identical to what the
    /// whole-trace simulator reports over the same prefix.
    pub fn stats(&self) -> RunStats {
        RunStats {
            instructions: self.counters.instructions,
            data_accesses: self.counters.data_accesses,
            cache: self.cache.stats(),
            refill_cycles: self.counters.refill_cycles,
            bytes_from_memory: self.counters.bytes_from_memory,
            data_stall_cycles: self.dcache.stall_cycles(self.counters.data_accesses),
            clb: Some(self.engine.clb_stats()),
        }
    }

    /// Captures every piece of cross-step state, CLB included.
    pub fn snapshot(&self) -> CcrpSimSnapshot {
        CcrpSimSnapshot {
            cache: self.cache.snapshot(),
            memory: self.memory.snapshot(),
            engine: self.engine.snapshot(),
            counters: self.counters,
        }
    }

    /// Restores a [`snapshot`](Self::snapshot); subsequent steps behave
    /// as if the run had never been interrupted.
    pub fn restore(&mut self, snapshot: &CcrpSimSnapshot) {
        self.cache.restore(&snapshot.cache);
        self.memory.restore(&snapshot.memory);
        self.engine.restore(&snapshot.engine);
        self.counters = snapshot.counters;
    }
}

/// The captured state of a [`CcrpSim`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CcrpSimSnapshot {
    /// Instruction-cache tags and counters.
    pub cache: ICacheSnapshot,
    /// Memory-model timing state.
    pub memory: MemorySimSnapshot,
    /// Refill-engine state (the CLB: contents, LRU order, counters).
    pub engine: RefillEngineSnapshot,
    /// Running totals.
    pub counters: SimCounters,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemoryModel;
    use crate::simulation::Simulation;
    use ccrp_compress::{BlockAlignment, ByteCode, ByteHistogram};

    fn fixture(code_bytes: usize) -> (CompressedImage, Vec<(u32, u8)>) {
        let mut text = Vec::with_capacity(code_bytes);
        let mut x = 5u32;
        for i in 0..code_bytes {
            x = x.wrapping_mul(48271);
            text.push(match i % 4 {
                0 => (x >> 28) as u8,
                1 => 0,
                2 => 0x42,
                _ => 0x24,
            });
        }
        let code = ByteCode::preselected(&ByteHistogram::of(&text)).unwrap();
        let image = CompressedImage::build(0, &text, code, BlockAlignment::Word).unwrap();
        let mut trace = Vec::new();
        for _ in 0..4 {
            for pc in (0..code_bytes as u32).step_by(4) {
                trace.push((pc, u8::from(pc % 16 == 0)));
            }
        }
        (image, trace)
    }

    #[test]
    fn snapshot_restore_resumes_identically() {
        // For every memory model: run to a midpoint, snapshot, keep
        // running the original while a fresh stepper restores and
        // replays the tail — stats must match an unbroken run.
        let (image, trace) = fixture(2048);
        for model in MemoryModel::ALL {
            let config = SystemConfig::new().with_cache_bytes(256).with_memory(model);
            let mid = trace.len() / 3;

            let mut std_sim = StandardSim::new(&config).unwrap();
            let mut ccrp_sim = CcrpSim::new(&config).unwrap();
            for &(pc, data) in &trace[..mid] {
                std_sim.step(pc, data);
                ccrp_sim.step(&image, pc, data).unwrap();
            }
            let std_snap = std_sim.snapshot();
            let ccrp_snap = ccrp_sim.snapshot();

            let mut std_resumed = StandardSim::new(&config).unwrap();
            std_resumed.restore(&std_snap);
            let mut ccrp_resumed = CcrpSim::new(&config).unwrap();
            ccrp_resumed.restore(&ccrp_snap);
            for &(pc, data) in &trace[mid..] {
                std_sim.step(pc, data);
                std_resumed.step(pc, data);
                ccrp_sim.step(&image, pc, data).unwrap();
                ccrp_resumed.step(&image, pc, data).unwrap();
            }
            assert_eq!(std_sim.stats(), std_resumed.stats(), "{model:?}");
            assert_eq!(ccrp_sim.stats(), ccrp_resumed.stats(), "{model:?}");
            assert_eq!(std_sim.snapshot(), std_resumed.snapshot(), "{model:?}");
            assert_eq!(ccrp_sim.snapshot(), ccrp_resumed.snapshot(), "{model:?}");
        }
    }

    #[test]
    fn stepper_matches_whole_trace_simulator() {
        let (image, trace) = fixture(4096);
        for model in MemoryModel::ALL {
            let config = SystemConfig::new().with_cache_bytes(256).with_memory(model);
            let std_whole = Simulation::new(config)
                .standard(trace.iter().copied())
                .unwrap();
            let ccrp_whole = Simulation::new(config)
                .ccrp(&image, trace.iter().copied())
                .unwrap();
            let mut std_sim = StandardSim::new(&config).unwrap();
            let mut ccrp_sim = CcrpSim::new(&config).unwrap();
            for &(pc, data) in &trace {
                std_sim.step(pc, data);
                ccrp_sim.step(&image, pc, data).unwrap();
            }
            assert_eq!(std_sim.stats(), std_whole, "{model:?}");
            assert_eq!(ccrp_sim.stats(), ccrp_whole, "{model:?}");
        }
    }
}
