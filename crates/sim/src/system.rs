//! The trace-driven system simulator (§4.1): replays an instruction
//! trace through the cache/memory hierarchy twice — once as a standard
//! R2000-style processor, once as a CCRP — and reports the paper's
//! metrics: relative execution time, instruction-cache miss rate, and
//! relative memory traffic.
//!
//! As in the paper, the pipeline freezes during refills ("We also do not
//! permit the processor pipeline to continue when instruction fetches are
//! delayed") and compulsory misses are included.

use std::error::Error;
use std::fmt;

use ccrp::{BudgetExhausted, CcrpError, ClbStats, CompressedImage, RefillConfig, StepBudget};
use ccrp_probe::Probe;

use crate::dcache::DataCacheModel;
use crate::icache::{BadCacheSize, CacheStats};
use crate::memory::MemoryModel;
use crate::simulation::Simulation;

/// Configuration of one simulated system.
///
/// `#[non_exhaustive]`: construct it with [`SystemConfig::new`] (or
/// `default()`) and the `with_*` builders, so configs keep working as
/// fields are added:
///
/// ```
/// use ccrp_sim::{MemoryModel, SystemConfig};
///
/// let config = SystemConfig::new()
///     .with_cache_bytes(256)
///     .with_memory(MemoryModel::Eprom)
///     .with_clb_entries(8);
/// assert_eq!(config.refill.clb_entries, 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct SystemConfig {
    /// Instruction-cache capacity in bytes (256..=4096 in the paper).
    pub cache_bytes: u32,
    /// Instruction-memory model.
    pub memory: MemoryModel,
    /// Refill-engine configuration: CLB capacity, decoder throughput,
    /// degradation policy, integrity checking (CCRP only).
    pub refill: RefillConfig,
    /// Data-side cost model (applies to both processors).
    pub dcache: DataCacheModel,
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self {
            cache_bytes: 1024,
            memory: MemoryModel::BurstEprom,
            refill: RefillConfig::default(),
            dcache: DataCacheModel::NONE,
        }
    }
}

impl SystemConfig {
    /// The paper's baseline: 1 KB cache, burst EPROM, 16-entry CLB,
    /// 2 B/cycle decoder, no data-side stalls.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the instruction-cache capacity in bytes.
    #[must_use]
    pub fn with_cache_bytes(mut self, cache_bytes: u32) -> Self {
        self.cache_bytes = cache_bytes;
        self
    }

    /// Sets the instruction-memory model.
    #[must_use]
    pub fn with_memory(mut self, memory: MemoryModel) -> Self {
        self.memory = memory;
        self
    }

    /// Replaces the whole refill-engine configuration.
    #[must_use]
    pub fn with_refill(mut self, refill: RefillConfig) -> Self {
        self.refill = refill;
        self
    }

    /// Sets the CLB capacity in LAT entries (CCRP only).
    #[must_use]
    pub fn with_clb_entries(mut self, clb_entries: usize) -> Self {
        self.refill.clb_entries = clb_entries;
        self
    }

    /// Sets the decoder throughput in bytes per cycle (CCRP only).
    #[must_use]
    pub fn with_decode_bytes_per_cycle(mut self, bytes: u32) -> Self {
        self.refill.decode_bytes_per_cycle = bytes;
        self
    }

    /// Sets the data-side cost model.
    #[must_use]
    pub fn with_dcache(mut self, dcache: DataCacheModel) -> Self {
        self.dcache = dcache;
        self
    }
}

/// Errors from a simulation run.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// Invalid cache geometry.
    Cache(BadCacheSize),
    /// A trace address the compressed image cannot serve, or another
    /// CCRP-level failure.
    Ccrp(CcrpError),
    /// A caller-supplied [`StepBudget`] ran out before the trace was
    /// fully replayed (the deadline-aware refill guard: simulated
    /// cycles — including refill latency — are what get charged).
    Budget(BudgetExhausted),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Cache(e) => write!(f, "{e}"),
            SimError::Ccrp(e) => write!(f, "{e}"),
            SimError::Budget(e) => write!(f, "{e}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Cache(e) => Some(e),
            SimError::Ccrp(e) => Some(e),
            SimError::Budget(e) => Some(e),
        }
    }
}

impl From<BudgetExhausted> for SimError {
    fn from(e: BudgetExhausted) -> Self {
        SimError::Budget(e)
    }
}

impl From<BadCacheSize> for SimError {
    fn from(e: BadCacheSize) -> Self {
        SimError::Cache(e)
    }
}

impl From<CcrpError> for SimError {
    fn from(e: CcrpError) -> Self {
        SimError::Ccrp(e)
    }
}

/// Metrics from one processor's run over a trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunStats {
    /// Dynamic instruction count.
    pub instructions: u64,
    /// Dynamic data-access count.
    pub data_accesses: u64,
    /// Instruction-cache counters.
    pub cache: CacheStats,
    /// Total cycles spent waiting on line refills.
    pub refill_cycles: u64,
    /// Bytes read from instruction memory (lines, plus LAT entries on
    /// the CCRP).
    pub bytes_from_memory: u64,
    /// Analytical data-side stall cycles.
    pub data_stall_cycles: f64,
    /// CLB counters (CCRP runs only).
    pub clb: Option<ClbStats>,
}

impl RunStats {
    /// Total execution cycles: one per instruction (single-issue,
    /// single-cycle hits) plus refill stalls plus data stalls.
    pub fn total_cycles(&self) -> f64 {
        self.instructions as f64 + self.refill_cycles as f64 + self.data_stall_cycles
    }

    /// Cycles per instruction.
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.total_cycles() / self.instructions as f64
        }
    }
}

/// Simulates the standard (uncompressed) processor over `trace`:
/// `(pc, data_access_count)` pairs as captured by `ccrp-emu`.
///
/// # Errors
///
/// [`SimError::Cache`] for invalid cache geometry.
#[deprecated(note = "use the `Simulation` builder: `Simulation::new(*config).standard(trace)`")]
pub fn simulate_standard(
    trace: impl IntoIterator<Item = (u32, u8)>,
    config: &SystemConfig,
) -> Result<RunStats, SimError> {
    Simulation::new(*config).standard(trace)
}

/// [`simulate_standard`], reporting [`Event::CacheMiss`](ccrp_probe::Event::CacheMiss) and
/// [`Event::MemoryBurst`](ccrp_probe::Event::MemoryBurst) to `probe` as the trace replays. The
/// computation is identical — the plain function is this one with
/// [`NullProbe`](ccrp_probe::NullProbe).
///
/// # Errors
///
/// As [`simulate_standard`].
#[deprecated(
    note = "use the `Simulation` builder: `Simulation::new(*config).standard_probed(probe).standard(trace)`"
)]
pub fn simulate_standard_probed<P: Probe>(
    trace: impl IntoIterator<Item = (u32, u8)>,
    config: &SystemConfig,
    probe: &mut P,
) -> Result<RunStats, SimError> {
    Simulation::new(*config)
        .standard_probed(probe)
        .standard(trace)
}

/// Simulates the CCRP over `trace`, refilling through `image`'s
/// LAT/CLB/decoder path.
///
/// # Errors
///
/// [`SimError::Cache`] for invalid geometry, [`SimError::Ccrp`] when the
/// trace fetches outside the compressed image.
#[deprecated(note = "use the `Simulation` builder: `Simulation::new(*config).ccrp(image, trace)`")]
pub fn simulate_ccrp(
    image: &CompressedImage,
    trace: impl IntoIterator<Item = (u32, u8)>,
    config: &SystemConfig,
) -> Result<RunStats, SimError> {
    Simulation::new(*config).ccrp(image, trace)
}

/// [`simulate_ccrp`], reporting the full event stream to `probe`:
/// [`Event::CacheMiss`](ccrp_probe::Event::CacheMiss) per miss, plus everything
/// [`RefillEngine::refill_probed`](ccrp::RefillEngine::refill_probed) emits (refill start/done, CLB
/// hit/miss/evict, memory bursts). The computation is identical — the
/// plain function is this one with [`NullProbe`](ccrp_probe::NullProbe).
///
/// # Errors
///
/// As [`simulate_ccrp`].
#[deprecated(
    note = "use the `Simulation` builder: `Simulation::new(*config).ccrp_probed(probe).ccrp(image, trace)`"
)]
pub fn simulate_ccrp_probed<P: Probe>(
    image: &CompressedImage,
    trace: impl IntoIterator<Item = (u32, u8)>,
    config: &SystemConfig,
    probe: &mut P,
) -> Result<RunStats, SimError> {
    Simulation::new(*config)
        .ccrp_probed(probe)
        .ccrp(image, trace)
}

/// [`simulate_standard`] with a cooperative deadline: every trace entry
/// charges `budget` with the simulated cycles it consumed (base cycle
/// plus any refill latency), so a hostile trace or pathological memory
/// model is bounded by fuel, not wall clock.
///
/// # Errors
///
/// [`SimError::Budget`] when the budget trips; otherwise as
/// [`simulate_standard`].
#[deprecated(
    note = "use the `Simulation` builder: `Simulation::new(*config).budgeted(budget).standard(trace)`"
)]
pub fn simulate_standard_budgeted(
    trace: impl IntoIterator<Item = (u32, u8)>,
    config: &SystemConfig,
    budget: &mut StepBudget,
) -> Result<RunStats, SimError> {
    Simulation::new(*config).budgeted(budget).standard(trace)
}

/// [`simulate_ccrp`] with a cooperative deadline — the deadline-aware
/// refill path. The charge per trace entry is the simulated cycles it
/// consumed, so refill storms (CLB misses, integrity retries, slow
/// memory models) burn fuel proportionally to the time they model and a
/// corrupt or adversarial image cannot stall a worker past its budget.
///
/// # Errors
///
/// [`SimError::Budget`] when the budget trips; otherwise as
/// [`simulate_ccrp`].
#[deprecated(
    note = "use the `Simulation` builder: `Simulation::new(*config).budgeted(budget).ccrp(image, trace)`"
)]
pub fn simulate_ccrp_budgeted(
    image: &CompressedImage,
    trace: impl IntoIterator<Item = (u32, u8)>,
    config: &SystemConfig,
    budget: &mut StepBudget,
) -> Result<RunStats, SimError> {
    Simulation::new(*config).budgeted(budget).ccrp(image, trace)
}

/// Both processors' results over the same trace and configuration — one
/// cell of the paper's Tables 1–13.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Comparison {
    /// The standard processor's run.
    pub standard: RunStats,
    /// The CCRP's run.
    pub ccrp: RunStats,
}

impl Comparison {
    /// The tables' "Relative Performance" column: CCRP execution time
    /// over standard execution time. Below 1.0 the CCRP is *faster*
    /// (matching the prose: EPROM entries below 1.0 are wins).
    pub fn relative_execution_time(&self) -> f64 {
        self.ccrp.total_cycles() / self.standard.total_cycles()
    }

    /// The instruction-cache miss rate (identical for both processors —
    /// the CCRP's cache sees the same addresses).
    pub fn miss_rate(&self) -> f64 {
        self.standard.cache.miss_rate()
    }

    /// The tables' "Memory Traffic" column: CCRP instruction-memory bytes
    /// over standard bytes.
    pub fn memory_traffic_ratio(&self) -> f64 {
        if self.standard.bytes_from_memory == 0 {
            1.0
        } else {
            self.ccrp.bytes_from_memory as f64 / self.standard.bytes_from_memory as f64
        }
    }
}

/// Runs both processors over the same trace.
///
/// # Errors
///
/// As for [`simulate_standard`] and [`simulate_ccrp`].
#[deprecated(
    note = "use the `Simulation` builder: `Simulation::new(*config).compare(image, trace)`"
)]
pub fn compare<I>(
    image: &CompressedImage,
    trace: I,
    config: &SystemConfig,
) -> Result<Comparison, SimError>
where
    I: IntoIterator<Item = (u32, u8)>,
    I::IntoIter: Clone,
{
    Simulation::new(*config).compare(image, trace)
}

/// [`compare`], with a separate probe observing each processor's run (so
/// the two event streams stay distinguishable in a trace).
///
/// # Errors
///
/// As [`compare`].
#[deprecated(note = "use the `Simulation` builder: \
            `Simulation::new(*config).standard_probed(p).ccrp_probed(q).compare(image, trace)`")]
pub fn compare_probed<I, P, Q>(
    image: &CompressedImage,
    trace: I,
    config: &SystemConfig,
    standard_probe: &mut P,
    ccrp_probe: &mut Q,
) -> Result<Comparison, SimError>
where
    I: IntoIterator<Item = (u32, u8)>,
    I::IntoIter: Clone,
    P: Probe,
    Q: Probe,
{
    Simulation::new(*config)
        .standard_probed(standard_probe)
        .ccrp_probed(ccrp_probe)
        .compare(image, trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccrp_compress::{BlockAlignment, ByteCode, ByteHistogram};

    /// A compressible synthetic program plus a looping trace over it.
    fn fixture(code_bytes: usize) -> (CompressedImage, Vec<(u32, u8)>) {
        let mut text = Vec::with_capacity(code_bytes);
        let mut x = 5u32;
        for i in 0..code_bytes {
            x = x.wrapping_mul(48271);
            text.push(match i % 4 {
                0 => (x >> 28) as u8,
                1 => 0,
                2 => 0x42,
                _ => 0x24,
            });
        }
        let code = ByteCode::preselected(&ByteHistogram::of(&text)).unwrap();
        let image = CompressedImage::build(0, &text, code, BlockAlignment::Word).unwrap();
        // Trace: 16 passes over all of the text, 1 data access per 4th pc.
        let mut trace = Vec::new();
        for _ in 0..16 {
            for pc in (0..code_bytes as u32).step_by(4) {
                trace.push((pc, u8::from(pc % 16 == 0)));
            }
        }
        (image, trace)
    }

    fn compare(
        image: &CompressedImage,
        trace: impl IntoIterator<Item = (u32, u8), IntoIter: Clone>,
        config: &SystemConfig,
    ) -> Result<Comparison, SimError> {
        Simulation::new(*config).compare(image, trace)
    }

    #[test]
    fn budgeted_replay_matches_plain_when_fuel_suffices() {
        let (image, trace) = fixture(2048);
        let config = SystemConfig::new().with_cache_bytes(256);
        let plain = Simulation::new(config)
            .ccrp(&image, trace.iter().copied())
            .unwrap();
        let mut budget = StepBudget::limited(u64::MAX / 2);
        let budgeted = Simulation::new(config)
            .budgeted(&mut budget)
            .ccrp(&image, trace.iter().copied())
            .unwrap();
        assert_eq!(budgeted, plain);
        // The charge is cycle-accurate: fuel spent equals the simulated
        // end-to-end cycle count (every entry charges its cycles, min 1).
        assert!(budget.spent() >= plain.instructions);

        let std_plain = Simulation::new(config)
            .standard(trace.iter().copied())
            .unwrap();
        let mut std_budget = StepBudget::unlimited();
        let std_budgeted = Simulation::new(config)
            .budgeted(&mut std_budget)
            .standard(trace.iter().copied())
            .unwrap();
        assert_eq!(std_budgeted, std_plain);
    }

    #[test]
    fn budgeted_replay_trips_on_refill_heavy_traces() {
        let (image, trace) = fixture(2048);
        // EPROM refills are slow; a tiny cycle budget must trip long
        // before the trace ends, and deterministically so.
        let config = SystemConfig::new()
            .with_cache_bytes(256)
            .with_memory(MemoryModel::Eprom);
        let mut budget = StepBudget::limited(200);
        let err = Simulation::new(config)
            .budgeted(&mut budget)
            .ccrp(&image, trace.iter().copied())
            .unwrap_err();
        assert!(matches!(err, SimError::Budget(_)));
        let mut again = StepBudget::limited(200);
        let err2 = Simulation::new(config)
            .budgeted(&mut again)
            .ccrp(&image, trace.iter().copied())
            .unwrap_err();
        assert_eq!(
            format!("{err}"),
            format!("{err2}"),
            "fuel exhaustion is deterministic"
        );
    }

    /// The `#[deprecated]` wrappers must keep returning exactly what
    /// the builder they forward to returns.
    #[test]
    #[allow(deprecated)]
    fn deprecated_wrappers_match_builder() {
        use ccrp_probe::EventLog;

        let (image, trace) = fixture(2048);
        let config = SystemConfig::new()
            .with_cache_bytes(256)
            .with_memory(MemoryModel::Eprom);

        let builder_cmp = Simulation::new(config)
            .compare(&image, trace.iter().copied())
            .unwrap();
        assert_eq!(
            super::compare(&image, trace.iter().copied(), &config).unwrap(),
            builder_cmp
        );
        assert_eq!(
            simulate_standard(trace.iter().copied(), &config).unwrap(),
            builder_cmp.standard
        );
        assert_eq!(
            simulate_ccrp(&image, trace.iter().copied(), &config).unwrap(),
            builder_cmp.ccrp
        );

        let mut std_log = EventLog::new();
        let mut ccrp_log = EventLog::new();
        assert_eq!(
            compare_probed(
                &image,
                trace.iter().copied(),
                &config,
                &mut std_log,
                &mut ccrp_log,
            )
            .unwrap(),
            builder_cmp
        );
        let mut std_log2 = EventLog::new();
        assert_eq!(
            simulate_standard_probed(trace.iter().copied(), &config, &mut std_log2).unwrap(),
            builder_cmp.standard
        );
        assert_eq!(std_log.events(), std_log2.events());
        let mut ccrp_log2 = EventLog::new();
        assert_eq!(
            simulate_ccrp_probed(&image, trace.iter().copied(), &config, &mut ccrp_log2).unwrap(),
            builder_cmp.ccrp
        );
        assert_eq!(ccrp_log.events(), ccrp_log2.events());

        let mut std_budget = StepBudget::unlimited();
        assert_eq!(
            simulate_standard_budgeted(trace.iter().copied(), &config, &mut std_budget).unwrap(),
            builder_cmp.standard
        );
        let mut ccrp_budget = StepBudget::unlimited();
        assert_eq!(
            simulate_ccrp_budgeted(&image, trace.iter().copied(), &config, &mut ccrp_budget)
                .unwrap(),
            builder_cmp.ccrp
        );
    }

    #[test]
    fn eprom_favors_compressed_code() {
        let (image, trace) = fixture(8192);
        let config = SystemConfig::new()
            .with_cache_bytes(256)
            .with_memory(MemoryModel::Eprom);
        let cmp = compare(&image, trace.iter().copied(), &config).unwrap();
        assert!(
            cmp.relative_execution_time() < 1.0,
            "EPROM should favor CCRP, got {}",
            cmp.relative_execution_time()
        );
        assert!(cmp.memory_traffic_ratio() < 1.0);
    }

    #[test]
    fn burst_eprom_penalizes_compressed_code() {
        let (image, trace) = fixture(8192);
        let config = SystemConfig::new()
            .with_cache_bytes(256)
            .with_memory(MemoryModel::BurstEprom);
        let cmp = compare(&image, trace.iter().copied(), &config).unwrap();
        assert!(
            cmp.relative_execution_time() > 1.0,
            "fast memory should favor the standard core, got {}",
            cmp.relative_execution_time()
        );
        // Traffic still shrinks even when time grows.
        assert!(cmp.memory_traffic_ratio() < 1.0);
    }

    #[test]
    fn bigger_cache_lowers_miss_rate_and_converges_to_parity() {
        let (image, trace) = fixture(4096);
        let mut last_rate = f64::INFINITY;
        let mut last_rel_gap = f64::INFINITY;
        for cache_bytes in [256u32, 1024, 4096] {
            let config = SystemConfig::new()
                .with_cache_bytes(cache_bytes)
                .with_memory(MemoryModel::Eprom);
            let cmp = compare(&image, trace.iter().copied(), &config).unwrap();
            assert!(cmp.miss_rate() <= last_rate);
            last_rate = cmp.miss_rate();
            let gap = (cmp.relative_execution_time() - 1.0).abs();
            assert!(
                gap <= last_rel_gap + 1e-12,
                "larger caches mute the difference"
            );
            last_rel_gap = gap;
        }
    }

    #[test]
    fn perfect_cache_means_parity() {
        // With every fetch hitting after warmup and a huge cache, both
        // processors differ only in compulsory misses.
        let (image, trace) = fixture(1024);
        let config = SystemConfig::new()
            .with_cache_bytes(4096)
            .with_memory(MemoryModel::BurstEprom);
        let cmp = compare(&image, trace.iter().copied(), &config).unwrap();
        assert!((cmp.relative_execution_time() - 1.0).abs() < 0.05);
    }

    #[test]
    fn data_cache_dilutes_the_difference() {
        // Table 11's premise: more data-stall cycles shrink the relative
        // gap between the processors.
        let (image, trace) = fixture(8192);
        let base = SystemConfig::new()
            .with_cache_bytes(256)
            .with_memory(MemoryModel::Eprom);
        let no_data = base.with_dcache(DataCacheModel::with_miss_rate(0.0));
        let full_data = base.with_dcache(DataCacheModel::NONE);
        let tight = compare(&image, trace.iter().copied(), &no_data).unwrap();
        let diluted = compare(&image, trace.iter().copied(), &full_data).unwrap();
        let tight_gap = (tight.relative_execution_time() - 1.0).abs();
        let diluted_gap = (diluted.relative_execution_time() - 1.0).abs();
        assert!(diluted_gap < tight_gap);
    }

    #[test]
    fn stats_are_consistent() {
        let (image, trace) = fixture(2048);
        let config = SystemConfig::default();
        let cmp = compare(&image, trace.iter().copied(), &config).unwrap();
        assert_eq!(cmp.standard.instructions, trace.len() as u64);
        assert_eq!(cmp.ccrp.instructions, trace.len() as u64);
        assert_eq!(cmp.standard.cache.fetches, trace.len() as u64);
        let clb = cmp.ccrp.clb.expect("ccrp run has CLB stats");
        assert_eq!(clb.hits + clb.misses, cmp.ccrp.cache.misses);
        assert_eq!(
            cmp.standard.bytes_from_memory,
            cmp.standard.cache.misses * 32
        );
        assert!(cmp.ccrp.bytes_from_memory < cmp.standard.bytes_from_memory);
    }

    #[test]
    fn probed_run_matches_plain_and_sees_all_misses() {
        use ccrp_probe::{Event, EventLog};

        let (image, trace) = fixture(4096);
        let config = SystemConfig::new()
            .with_cache_bytes(256)
            .with_memory(MemoryModel::Eprom);
        let plain = compare(&image, trace.iter().copied(), &config).unwrap();
        let mut std_log = EventLog::new();
        let mut ccrp_log = EventLog::new();
        let probed = Simulation::new(config)
            .standard_probed(&mut std_log)
            .ccrp_probed(&mut ccrp_log)
            .compare(&image, trace.iter().copied())
            .unwrap();
        assert_eq!(plain, probed, "probes must not perturb the simulation");

        let misses = |log: &EventLog| {
            log.events()
                .iter()
                .filter(|e| matches!(e.event, Event::CacheMiss { .. }))
                .count() as u64
        };
        assert_eq!(misses(&std_log), plain.standard.cache.misses);
        assert_eq!(misses(&ccrp_log), plain.ccrp.cache.misses);
        // The CCRP stream also carries refill and CLB events.
        assert!(ccrp_log
            .events()
            .iter()
            .any(|e| matches!(e.event, Event::RefillDone { .. })));
        assert!(std_log
            .events()
            .iter()
            .all(|e| !matches!(e.event, Event::RefillDone { .. })));
    }

    #[test]
    fn out_of_image_trace_errors() {
        let (image, _) = fixture(256);
        let config = SystemConfig::default();
        let err = Simulation::new(config)
            .ccrp(&image, [(0x0010_0000u32, 0u8)])
            .unwrap_err();
        assert!(matches!(err, SimError::Ccrp(_)));
    }

    #[test]
    fn empty_trace_is_fine() {
        let (image, _) = fixture(256);
        let cmp = compare(&image, std::iter::empty(), &SystemConfig::default()).unwrap();
        assert_eq!(cmp.standard.instructions, 0);
        assert!(cmp.relative_execution_time().is_nan());
    }
}
