//! The unified simulation entry point.
//!
//! [`Simulation`] replaces the old `simulate_standard` / `simulate_ccrp`
//! × plain / `_probed` / `_budgeted` entry-point matrix with one
//! builder: a [`SystemConfig`] plus optional probes and an optional
//! [`StepBudget`], executed over either a live per-fetch trace or a
//! captured [`AccessTrace`] (see [`SimSource`]).
//!
//! ```
//! use ccrp::CompressedImage;
//! use ccrp_compress::{BlockAlignment, ByteCode, ByteHistogram};
//! use ccrp_sim::{AccessTrace, MemoryModel, Simulation, SystemConfig};
//!
//! let text = vec![0u8; 2048];
//! let code = ByteCode::preselected(&ByteHistogram::of(&text))?;
//! let image = CompressedImage::build(0, &text, code, BlockAlignment::Word)?;
//! let trace: Vec<(u32, u8)> =
//!     (0..2).flat_map(|_| (0..2048u32).step_by(4)).map(|pc| (pc, 0)).collect();
//! let config = SystemConfig::new()
//!     .with_cache_bytes(256)
//!     .with_memory(MemoryModel::Eprom);
//!
//! // Live source: re-executes the per-fetch trace.
//! let live = Simulation::new(config).compare(&image, trace.iter().copied())?;
//!
//! // Captured source: capture once, replay for any number of configs.
//! let captured = AccessTrace::capture(trace.iter().copied());
//! let replayed = Simulation::new(config).compare(&image, &captured)?;
//! assert_eq!(live, replayed);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use ccrp::{CompressedImage, StepBudget};
use ccrp_probe::{NullProbe, Probe};

use crate::stepper::{CcrpSim, StandardSim};
use crate::system::{Comparison, RunStats, SimError, SystemConfig};
use crate::trace::AccessTrace;

/// What a [`Simulation`] executes over: a live per-fetch
/// `(pc, data_access_count)` stream, or a captured, run-compacted
/// [`AccessTrace`]. Both produce bit-identical [`RunStats`] and event
/// streams; the captured form replays several times faster.
///
/// Any `(u32, u8)` iterator converts into the live form and an
/// `&AccessTrace` into the captured form, so call sites pass either
/// directly to [`Simulation`]'s execution methods.
#[derive(Debug)]
pub enum SimSource<'t, I: IntoIterator<Item = (u32, u8)> = std::iter::Empty<(u32, u8)>> {
    /// Re-execute a per-fetch trace.
    Live(I),
    /// Replay a captured trace run by run.
    Captured(&'t AccessTrace),
}

impl<'t, I: IntoIterator<Item = (u32, u8)>> From<I> for SimSource<'t, I> {
    fn from(fetches: I) -> Self {
        SimSource::Live(fetches)
    }
}

impl<'t> From<&'t AccessTrace> for SimSource<'t> {
    fn from(trace: &'t AccessTrace) -> Self {
        SimSource::Captured(trace)
    }
}

/// The single entry point for trace-driven system simulation: configure
/// once, optionally attach probes and a budget, then execute.
///
/// * [`standard`](Self::standard) — the uncompressed R2000-style
///   processor;
/// * [`ccrp`](Self::ccrp) — the CCRP, refilling through a
///   [`CompressedImage`]'s LAT/CLB/decoder path;
/// * [`compare`](Self::compare) — both over the same source, one cell
///   of the paper's Tables 1–13;
/// * [`replay_sweep`](Self::replay_sweep) — both processors for *many*
///   configurations in one pass over a captured trace.
///
/// Probes ([`standard_probed`](Self::standard_probed) /
/// [`ccrp_probed`](Self::ccrp_probed)) observe the identical event
/// stream the old `_probed` functions reported; a budget
/// ([`budgeted`](Self::budgeted)) charges the simulated cycles each
/// step consumed, exactly like the old `_budgeted` functions, so a
/// hostile trace or pathological memory model is bounded by fuel.
pub struct Simulation<'e, SP: Probe = NullProbe, CP: Probe = NullProbe> {
    config: SystemConfig,
    standard_probe: Option<&'e mut SP>,
    ccrp_probe: Option<&'e mut CP>,
    budget: Option<&'e mut StepBudget>,
}

impl<'e> Simulation<'e> {
    /// Starts a simulation of `config` with no probes and no budget.
    pub fn new(config: SystemConfig) -> Self {
        Simulation {
            config,
            standard_probe: None,
            ccrp_probe: None,
            budget: None,
        }
    }

    /// Replays a captured trace through both processors for *every*
    /// configuration in one pass over the runs, advancing a per-config
    /// array of simulator states — the trace-once, replay-many sweep
    /// kernel. Equivalent to (but much faster than) calling
    /// [`compare`](Self::compare) per config: the trace is decoded
    /// once and stays hot in cache while `configs.len()` state pairs
    /// consume it.
    ///
    /// # Errors
    ///
    /// As [`compare`](Self::compare); on error the whole sweep is
    /// abandoned (all configs replay the same trace, so a fetch outside
    /// the image fails every one of them).
    pub fn replay_sweep(
        image: &CompressedImage,
        trace: &AccessTrace,
        configs: &[SystemConfig],
    ) -> Result<Vec<Comparison>, SimError> {
        let mut states = Vec::with_capacity(configs.len());
        for config in configs {
            states.push((StandardSim::new(config)?, CcrpSim::new(config)?));
        }
        for &run in trace.runs() {
            for (standard, ccrp) in &mut states {
                standard.replay_run_probed(run, &mut NullProbe);
                ccrp.replay_run_probed(image, run, &mut NullProbe)?;
            }
        }
        Ok(states
            .iter()
            .map(|(standard, ccrp)| Comparison {
                standard: standard.stats(),
                ccrp: ccrp.stats(),
            })
            .collect())
    }
}

impl<'e, SP: Probe, CP: Probe> Simulation<'e, SP, CP> {
    /// Attaches a cooperative budget: every step charges the simulated
    /// cycles it consumed (minimum 1), so refill storms burn fuel
    /// proportionally to the time they model. [`compare`](Self::compare)
    /// charges both runs to the same budget, standard first.
    #[must_use]
    pub fn budgeted(mut self, budget: &'e mut StepBudget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Attaches a probe to the standard processor's run, observing
    /// [`Event::CacheMiss`](ccrp_probe::Event::CacheMiss) and
    /// [`Event::MemoryBurst`](ccrp_probe::Event::MemoryBurst).
    #[must_use]
    pub fn standard_probed<P: Probe>(self, probe: &'e mut P) -> Simulation<'e, P, CP> {
        Simulation {
            config: self.config,
            standard_probe: Some(probe),
            ccrp_probe: self.ccrp_probe,
            budget: self.budget,
        }
    }

    /// Attaches a probe to the CCRP's run, observing the full event
    /// stream: misses plus everything
    /// [`RefillEngine::refill_probed`](ccrp::RefillEngine::refill_probed)
    /// emits (refill start/done, CLB hit/miss/evict, memory bursts).
    #[must_use]
    pub fn ccrp_probed<P: Probe>(self, probe: &'e mut P) -> Simulation<'e, SP, P> {
        Simulation {
            config: self.config,
            standard_probe: self.standard_probe,
            ccrp_probe: Some(probe),
            budget: self.budget,
        }
    }

    /// Simulates the standard (uncompressed) processor over `source`.
    ///
    /// # Errors
    ///
    /// [`SimError::Cache`] for invalid cache geometry;
    /// [`SimError::Budget`] when an attached budget trips.
    pub fn standard<'t, I, S>(self, source: S) -> Result<RunStats, SimError>
    where
        I: IntoIterator<Item = (u32, u8)>,
        S: Into<SimSource<'t, I>>,
    {
        let Simulation {
            config,
            standard_probe,
            budget,
            ..
        } = self;
        match standard_probe {
            Some(probe) => drive_standard(&config, source.into(), probe, budget),
            None => drive_standard(&config, source.into(), &mut NullProbe, budget),
        }
    }

    /// Simulates the CCRP over `source`, refilling through `image`'s
    /// LAT/CLB/decoder path.
    ///
    /// # Errors
    ///
    /// As [`standard`](Self::standard), plus [`SimError::Ccrp`] when the
    /// trace fetches outside the compressed image.
    pub fn ccrp<'t, I, S>(self, image: &CompressedImage, source: S) -> Result<RunStats, SimError>
    where
        I: IntoIterator<Item = (u32, u8)>,
        S: Into<SimSource<'t, I>>,
    {
        let Simulation {
            config,
            ccrp_probe,
            budget,
            ..
        } = self;
        match ccrp_probe {
            Some(probe) => drive_ccrp(&config, image, source.into(), probe, budget),
            None => drive_ccrp(&config, image, source.into(), &mut NullProbe, budget),
        }
    }

    /// Runs both processors over the same source — one cell of the
    /// paper's Tables 1–13. A live source is iterated twice (hence the
    /// `Clone` bound); a captured trace is replayed twice.
    ///
    /// # Errors
    ///
    /// As [`standard`](Self::standard) and [`ccrp`](Self::ccrp).
    pub fn compare<'t, I, S>(
        self,
        image: &CompressedImage,
        source: S,
    ) -> Result<Comparison, SimError>
    where
        I: IntoIterator<Item = (u32, u8)>,
        I::IntoIter: Clone,
        S: Into<SimSource<'t, I>>,
    {
        let Simulation {
            config,
            standard_probe,
            ccrp_probe,
            mut budget,
        } = self;
        let (standard_source, ccrp_source): (
            SimSource<'t, I::IntoIter>,
            SimSource<'t, I::IntoIter>,
        ) = match source.into() {
            SimSource::Live(fetches) => {
                let iter = fetches.into_iter();
                (SimSource::Live(iter.clone()), SimSource::Live(iter))
            }
            SimSource::Captured(trace) => (SimSource::Captured(trace), SimSource::Captured(trace)),
        };
        let standard = match standard_probe {
            Some(probe) => drive_standard(&config, standard_source, probe, budget.as_deref_mut())?,
            None => drive_standard(
                &config,
                standard_source,
                &mut NullProbe,
                budget.as_deref_mut(),
            )?,
        };
        let ccrp = match ccrp_probe {
            Some(probe) => drive_ccrp(&config, image, ccrp_source, probe, budget)?,
            None => drive_ccrp(&config, image, ccrp_source, &mut NullProbe, budget)?,
        };
        // panic-ok: debug-build invariant — both drives replay one trace.
        debug_assert_eq!(
            standard.cache.misses, ccrp.cache.misses,
            "caches see identical streams"
        );
        Ok(Comparison { standard, ccrp })
    }
}

/// The standard-processor driver both source kinds share. Budget
/// charging is per trace entry for a live source (the granularity the
/// old `_budgeted` functions had, which served campaigns depend on) and
/// per run for a captured one; either way the fuel spent equals the
/// simulated cycles consumed, so exhaustion stays deterministic.
fn drive_standard<P, I>(
    config: &SystemConfig,
    source: SimSource<'_, I>,
    probe: &mut P,
    mut budget: Option<&mut StepBudget>,
) -> Result<RunStats, SimError>
where
    P: Probe,
    I: IntoIterator<Item = (u32, u8)>,
{
    let mut sim = StandardSim::new(config)?;
    match source {
        SimSource::Live(fetches) => {
            for (pc, data) in fetches {
                let before = sim.counters().cycle;
                sim.step_probed(pc, data, probe);
                if let Some(budget) = budget.as_deref_mut() {
                    budget.charge((sim.counters().cycle - before).max(1))?;
                }
            }
        }
        SimSource::Captured(trace) => {
            for &run in trace.runs() {
                let before = sim.counters().cycle;
                sim.replay_run_probed(run, probe);
                if let Some(budget) = budget.as_deref_mut() {
                    budget.charge((sim.counters().cycle - before).max(1))?;
                }
            }
        }
    }
    Ok(sim.stats())
}

/// The CCRP driver; see [`drive_standard`] for the budget contract.
fn drive_ccrp<P, I>(
    config: &SystemConfig,
    image: &CompressedImage,
    source: SimSource<'_, I>,
    probe: &mut P,
    mut budget: Option<&mut StepBudget>,
) -> Result<RunStats, SimError>
where
    P: Probe,
    I: IntoIterator<Item = (u32, u8)>,
{
    let mut sim = CcrpSim::new(config)?;
    match source {
        SimSource::Live(fetches) => {
            for (pc, data) in fetches {
                let before = sim.counters().cycle;
                sim.step_probed(image, pc, data, probe)?;
                if let Some(budget) = budget.as_deref_mut() {
                    budget.charge((sim.counters().cycle - before).max(1))?;
                }
            }
        }
        SimSource::Captured(trace) => {
            for &run in trace.runs() {
                let before = sim.counters().cycle;
                sim.replay_run_probed(image, run, probe)?;
                if let Some(budget) = budget.as_deref_mut() {
                    budget.charge((sim.counters().cycle - before).max(1))?;
                }
            }
        }
    }
    Ok(sim.stats())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemoryModel;
    use ccrp_compress::{BlockAlignment, ByteCode, ByteHistogram};
    use ccrp_probe::{Event, EventLog};

    fn fixture(code_bytes: usize) -> (CompressedImage, Vec<(u32, u8)>) {
        let mut text = Vec::with_capacity(code_bytes);
        let mut x = 5u32;
        for i in 0..code_bytes {
            x = x.wrapping_mul(48271);
            text.push(match i % 4 {
                0 => (x >> 28) as u8,
                1 => 0,
                2 => 0x42,
                _ => 0x24,
            });
        }
        let code = ByteCode::preselected(&ByteHistogram::of(&text)).unwrap();
        let image = CompressedImage::build(0, &text, code, BlockAlignment::Word).unwrap();
        let mut trace = Vec::new();
        for _ in 0..8 {
            for pc in (0..code_bytes as u32).step_by(4) {
                trace.push((pc, u8::from(pc % 16 == 0)));
            }
        }
        (image, trace)
    }

    #[test]
    fn captured_source_matches_live_for_every_model() {
        let (image, trace) = fixture(4096);
        let captured = AccessTrace::capture(trace.iter().copied());
        for model in MemoryModel::ALL {
            for cache_bytes in [256u32, 1024] {
                let config = SystemConfig::new()
                    .with_cache_bytes(cache_bytes)
                    .with_memory(model);
                let live = Simulation::new(config)
                    .compare(&image, trace.iter().copied())
                    .unwrap();
                let replayed = Simulation::new(config).compare(&image, &captured).unwrap();
                assert_eq!(live, replayed, "{model:?}/{cache_bytes}");
            }
        }
    }

    #[test]
    fn captured_source_matches_live_for_halfword_strides() {
        // RVC-style traces fetch at 2-byte granularity, so PCs land on
        // arbitrary halfwords; nothing in the capture/replay path may
        // assume the MIPS 4-byte stride.
        let (image, _) = fixture(4096);
        let mut trace = Vec::new();
        for _ in 0..4 {
            for pc in (0..4096u32).step_by(2) {
                trace.push((pc, u8::from(pc % 64 == 30)));
            }
        }
        let captured = AccessTrace::capture(trace.iter().copied());
        for model in MemoryModel::ALL {
            let config = SystemConfig::new().with_cache_bytes(512).with_memory(model);
            let live = Simulation::new(config)
                .compare(&image, trace.iter().copied())
                .unwrap();
            let replayed = Simulation::new(config).compare(&image, &captured).unwrap();
            assert_eq!(live, replayed, "{model:?}");
        }
    }

    #[test]
    fn replay_sweep_matches_per_config_compares() {
        let (image, trace) = fixture(4096);
        let captured = AccessTrace::capture(trace.iter().copied());
        let configs: Vec<SystemConfig> = MemoryModel::ALL
            .into_iter()
            .flat_map(|model| {
                [256u32, 512, 2048].map(|cache_bytes| {
                    SystemConfig::new()
                        .with_cache_bytes(cache_bytes)
                        .with_memory(model)
                })
            })
            .collect();
        let swept = Simulation::replay_sweep(&image, &captured, &configs).unwrap();
        assert_eq!(swept.len(), configs.len());
        for (config, cell) in configs.iter().zip(&swept) {
            let direct = Simulation::new(*config)
                .compare(&image, trace.iter().copied())
                .unwrap();
            assert_eq!(*cell, direct, "{config:?}");
        }
    }

    #[test]
    fn probes_see_identical_streams_from_both_sources() {
        let (image, trace) = fixture(2048);
        let captured = AccessTrace::capture(trace.iter().copied());
        let config = SystemConfig::new()
            .with_cache_bytes(256)
            .with_memory(MemoryModel::Eprom);

        let mut live_std = EventLog::new();
        let mut live_ccrp = EventLog::new();
        let live = Simulation::new(config)
            .standard_probed(&mut live_std)
            .ccrp_probed(&mut live_ccrp)
            .compare(&image, trace.iter().copied())
            .unwrap();

        let mut replay_std = EventLog::new();
        let mut replay_ccrp = EventLog::new();
        let replayed = Simulation::new(config)
            .standard_probed(&mut replay_std)
            .ccrp_probed(&mut replay_ccrp)
            .compare(&image, &captured)
            .unwrap();

        assert_eq!(live, replayed);
        assert_eq!(live_std.events(), replay_std.events());
        assert_eq!(live_ccrp.events(), replay_ccrp.events());
        assert!(live_ccrp
            .events()
            .iter()
            .any(|e| matches!(e.event, Event::RefillDone { .. })));
    }

    #[test]
    fn budget_spend_is_identical_across_sources() {
        let (image, trace) = fixture(2048);
        let captured = AccessTrace::capture(trace.iter().copied());
        let config = SystemConfig::new()
            .with_cache_bytes(256)
            .with_memory(MemoryModel::Eprom);

        let mut live_budget = StepBudget::unlimited();
        let live = Simulation::new(config)
            .budgeted(&mut live_budget)
            .ccrp(&image, trace.iter().copied())
            .unwrap();
        let mut replay_budget = StepBudget::unlimited();
        let replayed = Simulation::new(config)
            .budgeted(&mut replay_budget)
            .ccrp(&image, &captured)
            .unwrap();
        assert_eq!(live, replayed);
        // Fuel equals simulated cycles either way; only the charge
        // granularity (entry vs run) differs.
        assert_eq!(live_budget.spent(), replay_budget.spent());

        // A tight budget trips a replay too, with a typed error.
        let mut tight = StepBudget::limited(200);
        let err = Simulation::new(config)
            .budgeted(&mut tight)
            .ccrp(&image, &captured)
            .unwrap_err();
        assert!(matches!(err, SimError::Budget(_)));
    }

    #[test]
    fn bad_geometry_is_rejected_before_execution() {
        let (image, _) = fixture(256);
        let config = SystemConfig::new().with_cache_bytes(100);
        let err = Simulation::new(config)
            .compare(&image, std::iter::empty())
            .unwrap_err();
        assert!(matches!(err, SimError::Cache(_)));
        assert!(Simulation::replay_sweep(&image, &AccessTrace::default(), &[config]).is_err());
    }
}
