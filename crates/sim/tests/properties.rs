//! System-level properties of the simulator, checked over randomized
//! programs and traces: the invariants the paper's conclusions rest on.

use ccrp::CompressedImage;
use ccrp_compress::{BlockAlignment, ByteCode, ByteHistogram};
use ccrp_sim::{
    standard_refill_cycles, AccessTrace, Comparison, DataCacheModel, MemoryModel, RunStats,
    SimError, Simulation, SystemConfig,
};
use proptest::prelude::*;

fn simulate_standard(
    trace: impl IntoIterator<Item = (u32, u8)>,
    config: &SystemConfig,
) -> Result<RunStats, SimError> {
    Simulation::new(*config).standard(trace)
}

fn simulate_ccrp(
    image: &CompressedImage,
    trace: impl IntoIterator<Item = (u32, u8)>,
    config: &SystemConfig,
) -> Result<RunStats, SimError> {
    Simulation::new(*config).ccrp(image, trace)
}

fn compare(
    image: &CompressedImage,
    trace: impl IntoIterator<Item = (u32, u8), IntoIter: Clone>,
    config: &SystemConfig,
) -> Result<Comparison, SimError> {
    Simulation::new(*config).compare(image, trace)
}

/// A deterministic pseudo-program plus a looping trace over it.
fn fixture(seed: u64, kib: usize) -> (CompressedImage, Vec<(u32, u8)>) {
    let mut x = seed | 1;
    let len = kib * 1024;
    let text: Vec<u8> = (0..len)
        .map(|i| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            match i % 4 {
                0 => (x >> 60) as u8,
                1 => 0,
                2 => 0x24,
                _ => (x >> 58) as u8 & 0x1F,
            }
        })
        .collect();
    let code = ByteCode::preselected(&ByteHistogram::of(&text)).expect("code builds");
    let image = CompressedImage::build(0, &text, code, BlockAlignment::Word).expect("builds");
    // Trace: several passes, with jumps back to a hot region.
    let mut trace = Vec::new();
    for pass in 0u32..6 {
        let stride = if pass % 2 == 0 { 4 } else { 8 };
        for pc in (0..len as u32).step_by(stride) {
            trace.push((pc, u8::from(pc % 64 == 0)));
        }
    }
    (image, trace)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Total cycles decompose exactly: instructions + refills + data.
    #[test]
    fn cycle_accounting_is_exact(seed: u64) {
        let (image, trace) = fixture(seed, 2);
        for memory in MemoryModel::ALL {
            let config = SystemConfig::new().with_cache_bytes(512).with_memory(memory);
            let std_run = simulate_standard(trace.iter().copied(), &config).unwrap();
            prop_assert_eq!(
                std_run.total_cycles(),
                std_run.instructions as f64
                    + std_run.refill_cycles as f64
                    + std_run.data_stall_cycles
            );
            let ccrp_run = simulate_ccrp(&image, trace.iter().copied(), &config).unwrap();
            prop_assert_eq!(ccrp_run.cache.misses, std_run.cache.misses);
            prop_assert_eq!(ccrp_run.instructions, std_run.instructions);
        }
    }

    /// Standard refill cost per miss is exactly the memory model's
    /// constant (no hidden cycles).
    #[test]
    fn standard_refills_cost_the_model_constant(seed: u64) {
        let (_, trace) = fixture(seed, 1);
        for memory in [MemoryModel::Eprom, MemoryModel::BurstEprom] {
            let config = SystemConfig::new().with_cache_bytes(256).with_memory(memory);
            let run = simulate_standard(trace.iter().copied(), &config).unwrap();
            prop_assert_eq!(
                run.refill_cycles,
                run.cache.misses * standard_refill_cycles(memory)
            );
        }
    }

    /// The CCRP can never fetch *more* instruction bytes than the
    /// standard core (compression + bypass guarantee ≤ 32 bytes per line,
    /// and the LAT adds at most 8 bytes per CLB miss, bounded by misses).
    #[test]
    fn traffic_bound(seed: u64) {
        let (image, trace) = fixture(seed, 2);
        let config = SystemConfig::new().with_cache_bytes(256);
        let cmp = compare(&image, trace.iter().copied(), &config).unwrap();
        let upper = cmp.standard.cache.misses * (32 + 8);
        prop_assert!(cmp.ccrp.bytes_from_memory <= upper);
    }

    /// Shrinking the cache never reduces misses (direct-mapped caches of
    /// nested power-of-two sizes have the inclusion property on the same
    /// trace).
    #[test]
    fn miss_monotonicity(seed: u64) {
        let (_, trace) = fixture(seed, 2);
        let mut last = 0u64;
        for cache_bytes in [4096u32, 2048, 1024, 512, 256] {
            let config = SystemConfig::new().with_cache_bytes(cache_bytes);
            let run = simulate_standard(trace.iter().copied(), &config).unwrap();
            prop_assert!(run.cache.misses >= last, "{cache_bytes}B went below smaller cache");
            last = run.cache.misses;
        }
    }

    /// EPROM vs Burst EPROM ordering: burst memory never makes the CCRP
    /// look *better* than EPROM does (the decode pipe only hurts when
    /// memory gets faster).
    #[test]
    fn relative_time_ordering_across_memories(seed: u64) {
        let (image, trace) = fixture(seed, 2);
        let base = SystemConfig::new().with_cache_bytes(256);
        let eprom = compare(
            &image,
            trace.iter().copied(),
            &base.with_memory(MemoryModel::Eprom),
        )
        .unwrap()
        .relative_execution_time();
        let burst = compare(
            &image,
            trace.iter().copied(),
            &base.with_memory(MemoryModel::BurstEprom),
        )
        .unwrap()
        .relative_execution_time();
        prop_assert!(eprom <= burst + 1e-9, "eprom {eprom} vs burst {burst}");
    }

    /// A perfect data cache and a 100% miss rate bracket every
    /// intermediate rate.
    #[test]
    fn dcache_rates_are_bracketed(seed: u64, rate in 0.0f64..1.0) {
        let (image, trace) = fixture(seed, 1);
        let run = |miss_rate: f64| {
            let config = SystemConfig::new()
                .with_cache_bytes(256)
                .with_memory(MemoryModel::BurstEprom)
                .with_dcache(DataCacheModel::with_miss_rate(miss_rate));
            compare(&image, trace.iter().copied(), &config)
                .unwrap()
                .relative_execution_time()
        };
        let lo = run(0.0);
        let hi = run(1.0);
        let mid = run(rate);
        let (min, max) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        prop_assert!(mid >= min - 1e-9 && mid <= max + 1e-9);
    }

    /// Capture → serialize → load → replay equals direct simulation,
    /// for every memory model over randomized programs.
    #[test]
    fn serialized_trace_replays_to_direct_results(seed: u64) {
        let (image, trace) = fixture(seed, 2);
        let bytes = AccessTrace::capture(trace.iter().copied()).to_bytes(seed as u32);
        let (loaded, fingerprint) = AccessTrace::from_bytes(&bytes).unwrap();
        prop_assert_eq!(fingerprint, seed as u32);
        for memory in MemoryModel::ALL {
            let config = SystemConfig::new().with_cache_bytes(512).with_memory(memory);
            let direct = compare(&image, trace.iter().copied(), &config).unwrap();
            let replayed = Simulation::new(config).compare(&image, &loaded).unwrap();
            prop_assert_eq!(replayed, direct);
        }
    }
}
