//! Instruction-address decomposition (Figure 7 of the paper).
//!
//! A 24-bit physical instruction address splits into a 16-bit LAT index,
//! a 3-bit line-within-entry field, and a 5-bit byte offset into the
//! 32-byte cache line.

/// Bits of byte offset within a cache line (32-byte lines).
pub const OFFSET_BITS: u32 = 5;
/// Bits selecting a line within one LAT entry (8 lines per entry).
pub const LINE_BITS: u32 = 3;
/// Bytes per cache line.
pub const LINE_SIZE: u32 = 1 << OFFSET_BITS;
/// Cache lines covered by one LAT entry.
pub const LINES_PER_ENTRY: u32 = 1 << LINE_BITS;
/// Original-program bytes covered by one LAT entry (8 lines × 32 B =
/// 64 instructions).
pub const BYTES_PER_ENTRY: u32 = LINE_SIZE * LINES_PER_ENTRY;

/// The three components of a decomposed instruction address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AddressParts {
    /// Index into the Line Address Table (the CLB tag).
    pub lat_index: u32,
    /// Which of the entry's 8 lines holds the address (the `L` field).
    pub line_in_entry: u32,
    /// Byte offset within the 32-byte line.
    pub offset: u32,
}

/// Splits an instruction address into LAT index, line-within-entry, and
/// line offset.
///
/// # Examples
///
/// ```
/// use ccrp::addr::decompose;
///
/// let parts = decompose(0x0000_0143);
/// assert_eq!(parts.lat_index, 0x1);      // byte 0x100 region
/// assert_eq!(parts.line_in_entry, 0x2);  // 0x40 / 32
/// assert_eq!(parts.offset, 0x3);
/// ```
pub fn decompose(address: u32) -> AddressParts {
    AddressParts {
        lat_index: address >> (OFFSET_BITS + LINE_BITS),
        line_in_entry: (address >> OFFSET_BITS) & (LINES_PER_ENTRY - 1),
        offset: address & (LINE_SIZE - 1),
    }
}

/// The address of the cache line containing `address`.
pub fn line_base(address: u32) -> u32 {
    address & !(LINE_SIZE - 1)
}

/// The global line number of `address` (address / 32).
pub fn line_number(address: u32) -> u32 {
    address >> OFFSET_BITS
}

/// Reassembles an address from its parts (inverse of [`decompose`]).
pub fn compose(parts: AddressParts) -> u32 {
    (parts.lat_index << (OFFSET_BITS + LINE_BITS))
        | (parts.line_in_entry << OFFSET_BITS)
        | parts.offset
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_constants() {
        assert_eq!(LINE_SIZE, 32);
        assert_eq!(LINES_PER_ENTRY, 8);
        assert_eq!(BYTES_PER_ENTRY, 256);
    }

    #[test]
    fn line_helpers() {
        assert_eq!(line_base(0x1234_5678 & 0x00FF_FFFF), 0x0034_5660);
        assert_eq!(line_number(0x40), 2);
        assert_eq!(line_base(31), 0);
        assert_eq!(line_base(32), 32);
    }

    proptest! {
        #[test]
        fn compose_inverts_decompose(addr in 0u32..(1 << 24)) {
            prop_assert_eq!(compose(decompose(addr)), addr);
        }

        #[test]
        fn fields_are_in_range(addr: u32) {
            let p = decompose(addr);
            prop_assert!(p.line_in_entry < LINES_PER_ENTRY);
            prop_assert!(p.offset < LINE_SIZE);
        }
    }
}
