use std::error::Error;
use std::fmt;

use ccrp_compress::CompressError;

/// Errors from building or using a compressed program image.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CcrpError {
    /// A block base address that does not fit the LAT's 24-bit pointer.
    BaseOverflow {
        /// The offending physical address.
        address: u64,
    },
    /// A compressed block length outside the 5-bit record's range
    /// (1..=31 bytes compressed, or exactly 32 uncompressed).
    BadBlockLength {
        /// The offending length in bytes.
        length: usize,
    },
    /// An instruction address outside the compressed program.
    AddressOutOfRange {
        /// The requested address.
        address: u32,
    },
    /// A CLB capacity of zero entries.
    EmptyClb,
    /// Text whose base is not aligned to a LAT group (256 bytes).
    MisalignedTextBase {
        /// The offending base address.
        base: u32,
    },
    /// A malformed on-disk container (see the `container` module docs).
    BadContainer {
        /// What was wrong with it.
        what: &'static str,
    },
    /// An underlying compression failure.
    Compress(CompressError),
    /// A runtime integrity cross-check failure: a LAT entry disagreeing
    /// with the image layout, a burst that returned no data, or an image
    /// invariant broken by corruption.
    Integrity {
        /// Which invariant failed.
        what: &'static str,
        /// The instruction address being refilled when it failed.
        address: u32,
    },
    /// A stored block whose CRC-32 record (container format v2) does not
    /// match its bytes.
    CrcMismatch {
        /// The global line index of the mismatching block.
        line: u32,
    },
    /// Detected corruption escalated to a machine-check exception, either
    /// immediately (`DegradePolicy::Trap`) or after the retry budget was
    /// exhausted (`DegradePolicy::Retry`).
    MachineCheck {
        /// The instruction address whose refill failed.
        address: u32,
    },
}

impl fmt::Display for CcrpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CcrpError::BaseOverflow { address } => {
                write!(
                    f,
                    "block address {address:#x} exceeds the 24-bit LAT base pointer"
                )
            }
            CcrpError::BadBlockLength { length } => {
                write!(f, "compressed block length {length} outside 1..=32")
            }
            CcrpError::AddressOutOfRange { address } => {
                write!(f, "address {address:#010x} outside the compressed program")
            }
            CcrpError::EmptyClb => write!(f, "CLB capacity must be at least one entry"),
            CcrpError::MisalignedTextBase { base } => {
                write!(
                    f,
                    "text base {base:#010x} not aligned to a 256-byte LAT group"
                )
            }
            CcrpError::BadContainer { what } => write!(f, "malformed CCRP container: {what}"),
            CcrpError::Compress(e) => write!(f, "{e}"),
            CcrpError::Integrity { what, address } => {
                write!(f, "integrity check failed at {address:#010x}: {what}")
            }
            CcrpError::CrcMismatch { line } => {
                write!(f, "stored block for line {line} fails its CRC-32 record")
            }
            CcrpError::MachineCheck { address } => {
                write!(
                    f,
                    "machine check: unrecoverable corrupt refill at {address:#010x}"
                )
            }
        }
    }
}

impl Error for CcrpError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CcrpError::Compress(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CompressError> for CcrpError {
    fn from(e: CompressError) -> Self {
        CcrpError::Compress(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(CcrpError::EmptyClb.to_string().contains("CLB"));
        assert!(CcrpError::BadBlockLength { length: 99 }
            .to_string()
            .contains("99"));
    }
}
