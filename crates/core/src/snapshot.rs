//! CRC-framed binary snapshot container and panic-free byte codecs.
//!
//! Checkpointable machine state (the emulator's `ArchState`, the
//! simulator steppers) serializes through this module: a fixed 28-byte
//! header — magic, format version, program fingerprint, payload length,
//! and two CRC-32 words (one over the payload, one over the header
//! itself, both via [`crc32`](crate::crc32)) — followed by the payload.
//! A stomped checkpoint file is therefore rejected with a typed
//! [`SnapshotError`] before any field of it is trusted; readers never
//! panic on malformed input.
//!
//! Layout (all integers little-endian):
//!
//! | offset | size | field                           |
//! |--------|------|---------------------------------|
//! | 0      | 4    | magic `"CCKP"`                  |
//! | 4      | 4    | format version                  |
//! | 8      | 4    | program fingerprint             |
//! | 12     | 8    | payload length in bytes         |
//! | 20     | 4    | CRC-32 of the payload           |
//! | 24     | 4    | CRC-32 of header bytes `0..24`  |
//! | 28     | ...  | payload                         |

use std::error::Error;
use std::fmt;

use crate::crc::crc32;

/// The four magic bytes opening every snapshot frame.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"CCKP";

/// Size of the fixed frame header preceding the payload.
pub const SNAPSHOT_HEADER_BYTES: usize = 28;

/// Why snapshot bytes were rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SnapshotError {
    /// The buffer does not begin with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// Fewer bytes than a field (or the whole header/payload) needs.
    Truncated {
        /// Bytes the read needed.
        needed: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// The header's own CRC-32 did not match its bytes.
    HeaderCrc,
    /// The payload CRC-32 recorded in the header did not match the
    /// payload bytes.
    PayloadCrc,
    /// The frame's format version is not one the reader supports.
    UnsupportedVersion {
        /// The version found in the header.
        found: u32,
    },
    /// A structurally invalid payload field (a CRC collision, or a
    /// writer bug).
    Malformed {
        /// Which field was invalid.
        what: &'static str,
    },
    /// Valid frame, but bytes remain after the declared payload.
    TrailingBytes {
        /// How many bytes past the frame end.
        extra: usize,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "snapshot does not start with CCKP magic"),
            SnapshotError::Truncated { needed, have } => {
                write!(f, "snapshot truncated: needed {needed} bytes, have {have}")
            }
            SnapshotError::HeaderCrc => write!(f, "snapshot header CRC-32 mismatch"),
            SnapshotError::PayloadCrc => write!(f, "snapshot payload CRC-32 mismatch"),
            SnapshotError::UnsupportedVersion { found } => {
                write!(f, "unsupported snapshot version {found}")
            }
            SnapshotError::Malformed { what } => write!(f, "malformed snapshot payload: {what}"),
            SnapshotError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after snapshot payload")
            }
        }
    }
}

impl Error for SnapshotError {}

/// The parsed fixed header of a snapshot frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotHeader {
    /// Format version of the payload encoding.
    pub version: u32,
    /// Identity hash of the program the snapshot belongs to.
    pub fingerprint: u32,
    /// Payload length in bytes.
    pub payload_len: u64,
    /// CRC-32 of the payload bytes.
    pub payload_crc: u32,
    /// CRC-32 of the 24 header bytes preceding this field.
    pub header_crc: u32,
}

/// Frames `payload` with a checksummed header.
pub fn write_frame(version: u32, fingerprint: u32, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(SNAPSHOT_HEADER_BYTES + payload.len());
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&fingerprint.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    let header_crc = crc32(&out);
    out.extend_from_slice(&header_crc.to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Validates and splits a frame into its header and payload.
///
/// Checks, in order: magic, header length, header CRC, payload length,
/// payload CRC, and that nothing trails the payload — so corruption
/// anywhere in the file surfaces as a typed error, never as a
/// half-trusted field.
///
/// # Errors
///
/// Every [`SnapshotError`] variant except `UnsupportedVersion` and
/// `Malformed` (version and payload interpretation are the caller's).
pub fn read_frame(bytes: &[u8]) -> Result<(SnapshotHeader, &[u8]), SnapshotError> {
    if bytes.len() < SNAPSHOT_HEADER_BYTES {
        return Err(SnapshotError::Truncated {
            needed: SNAPSHOT_HEADER_BYTES,
            have: bytes.len(),
        });
    }
    if bytes[..4] != SNAPSHOT_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let mut reader = ByteReader::new(&bytes[4..SNAPSHOT_HEADER_BYTES]);
    let header = SnapshotHeader {
        version: reader.read_u32()?,
        fingerprint: reader.read_u32()?,
        payload_len: reader.read_u64()?,
        payload_crc: reader.read_u32()?,
        header_crc: reader.read_u32()?,
    };
    if crc32(&bytes[..SNAPSHOT_HEADER_BYTES - 4]) != header.header_crc {
        return Err(SnapshotError::HeaderCrc);
    }
    let needed = SNAPSHOT_HEADER_BYTES as u64 + header.payload_len;
    if (bytes.len() as u64) < needed {
        return Err(SnapshotError::Truncated {
            needed: needed as usize,
            have: bytes.len(),
        });
    }
    if bytes.len() as u64 > needed {
        return Err(SnapshotError::TrailingBytes {
            extra: (bytes.len() as u64 - needed) as usize,
        });
    }
    let payload = &bytes[SNAPSHOT_HEADER_BYTES..];
    if crc32(payload) != header.payload_crc {
        return Err(SnapshotError::PayloadCrc);
    }
    Ok((header, payload))
}

/// Little-endian payload writer; the mirror of [`ByteReader`].
#[derive(Debug, Clone, Default)]
pub struct ByteWriter {
    bytes: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, value: u8) {
        self.bytes.push(value);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, value: u32) {
        self.bytes.extend_from_slice(&value.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, value: u64) {
        self.bytes.extend_from_slice(&value.to_le_bytes());
    }

    /// Appends a little-endian `i32`.
    pub fn put_i32(&mut self, value: i32) {
        self.bytes.extend_from_slice(&value.to_le_bytes());
    }

    /// Appends raw bytes (length is NOT prefixed; callers write it).
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.bytes.extend_from_slice(bytes);
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True when nothing was written.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Consumes the writer, returning the payload.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

/// Panic-free little-endian payload reader: every read reports
/// truncation as [`SnapshotError::Truncated`] instead of indexing out
/// of bounds.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Starts reading at the front of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len().saturating_sub(self.pos)
    }

    /// True when everything was consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    /// Takes the next `len` raw bytes.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] when fewer than `len` bytes remain.
    pub fn take(&mut self, len: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(len).ok_or(SnapshotError::Truncated {
            needed: usize::MAX,
            have: self.remaining(),
        })?;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or(SnapshotError::Truncated {
                needed: len,
                have: self.remaining(),
            })?;
        self.pos = end;
        Ok(slice)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] at end of input.
    pub fn read_u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] when under 4 bytes remain.
    pub fn read_u32(&mut self) -> Result<u32, SnapshotError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] when under 8 bytes remain.
    pub fn read_u64(&mut self) -> Result<u64, SnapshotError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a little-endian `i32`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] when under 4 bytes remain.
    pub fn read_i32(&mut self) -> Result<i32, SnapshotError> {
        let b = self.take(4)?;
        Ok(i32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a `u64` length prefix, bounds-checked against the bytes
    /// actually remaining so a corrupt length cannot drive a huge
    /// allocation.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`]; [`SnapshotError::Malformed`] when
    /// the prefix exceeds the remaining input.
    pub fn read_len(&mut self, what: &'static str) -> Result<usize, SnapshotError> {
        let len = self.read_u64()?;
        if len > self.remaining() as u64 {
            return Err(SnapshotError::Malformed { what });
        }
        Ok(len as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trips() {
        let payload = b"hello checkpoint".to_vec();
        let framed = write_frame(3, 0xDEAD_BEEF, &payload);
        assert_eq!(framed.len(), SNAPSHOT_HEADER_BYTES + payload.len());
        assert_eq!(&framed[..4], b"CCKP");
        let (header, body) = read_frame(&framed).unwrap();
        assert_eq!(header.version, 3);
        assert_eq!(header.fingerprint, 0xDEAD_BEEF);
        assert_eq!(header.payload_len, payload.len() as u64);
        assert_eq!(body, payload.as_slice());
    }

    #[test]
    fn empty_payload_is_fine() {
        let framed = write_frame(1, 0, &[]);
        let (header, body) = read_frame(&framed).unwrap();
        assert_eq!(header.payload_len, 0);
        assert!(body.is_empty());
    }

    #[test]
    fn every_single_byte_corruption_is_detected() {
        let framed = write_frame(1, 42, b"state bytes here");
        for i in 0..framed.len() {
            let mut corrupt = framed.clone();
            corrupt[i] ^= 0x01;
            assert!(
                read_frame(&corrupt).is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn truncation_and_trailing_bytes_are_typed() {
        let framed = write_frame(1, 0, b"abcd");
        assert!(matches!(
            read_frame(&framed[..10]),
            Err(SnapshotError::Truncated { .. })
        ));
        assert!(matches!(
            read_frame(&framed[..framed.len() - 1]),
            Err(SnapshotError::Truncated { .. })
        ));
        let mut long = framed.clone();
        long.push(0);
        assert!(matches!(
            read_frame(&long),
            Err(SnapshotError::TrailingBytes { extra: 1 })
        ));
    }

    #[test]
    fn reader_never_overreads() {
        let mut r = ByteReader::new(&[1, 2, 3]);
        assert_eq!(r.read_u8().unwrap(), 1);
        assert!(matches!(
            r.read_u32(),
            Err(SnapshotError::Truncated { needed: 4, have: 2 })
        ));
        // The failed read consumed nothing.
        assert_eq!(r.remaining(), 2);
    }

    #[test]
    fn writer_reader_round_trip() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32(0x0102_0304);
        w.put_u64(u64::MAX - 1);
        w.put_i32(-5);
        w.put_u64(3);
        w.put_bytes(b"abc");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.read_u8().unwrap(), 7);
        assert_eq!(r.read_u32().unwrap(), 0x0102_0304);
        assert_eq!(r.read_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.read_i32().unwrap(), -5);
        let len = r.read_len("abc").unwrap();
        assert_eq!(r.take(len).unwrap(), b"abc");
        assert!(r.is_exhausted());
    }

    #[test]
    fn hostile_length_prefix_is_malformed_not_alloc() {
        let mut w = ByteWriter::new();
        w.put_u64(u64::MAX);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(
            r.read_len("list"),
            Err(SnapshotError::Malformed { what: "list" })
        ));
    }
}
