//! Cooperative step/fuel budgets for bounding untrusted work.
//!
//! Every long-running computation in the workspace — emulated programs,
//! trace replays, refill storms — is structurally terminating for
//! well-formed inputs, but the service layer cannot assume well-formed
//! inputs. [`StepBudget`] is the shared guard: callers charge it one
//! unit per step (or per simulated cycle, for deadline-aware refill
//! accounting), and it fails with a typed [`BudgetExhausted`] once the
//! fuel runs out or an external watchdog raises the cancellation flag.
//!
//! Fuel exhaustion is *deterministic*: for a fixed budget the failing
//! step depends only on the computation, never on wall clock, so
//! campaign outcomes stay bit-identical across machines and worker
//! counts. The cancellation flag is the non-deterministic backstop — a
//! watchdog thread sets it when a wall-clock deadline passes, and the
//! budget observes it at the next poll interval.

use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// How often [`StepBudget::charge`] polls the cancellation flag, in
/// charges. A power of two so the check is a mask, not a division.
const CANCEL_POLL_INTERVAL: u64 = 1024;

/// A budget was exhausted before the computation finished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetExhausted {
    /// Units charged before exhaustion.
    pub spent: u64,
    /// `true` when the cancellation flag (a watchdog deadline), not the
    /// fuel counter, stopped the computation.
    pub cancelled: bool,
}

impl fmt::Display for BudgetExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.cancelled {
            write!(f, "cancelled by deadline after {} steps", self.spent)
        } else {
            write!(f, "step budget exhausted after {} steps", self.spent)
        }
    }
}

impl Error for BudgetExhausted {}

/// A cooperative fuel counter with an optional cancellation flag.
///
/// # Examples
///
/// ```
/// use ccrp::StepBudget;
///
/// let mut budget = StepBudget::limited(2);
/// assert!(budget.charge(1).is_ok());
/// assert!(budget.charge(1).is_ok());
/// let err = budget.charge(1).unwrap_err();
/// assert_eq!(err.spent, 2);
/// assert!(!err.cancelled);
/// ```
#[derive(Debug, Clone, Default)]
pub struct StepBudget {
    /// Remaining fuel; `None` is unlimited.
    remaining: Option<u64>,
    /// Units charged so far.
    spent: u64,
    /// Charges since the cancellation flag was last polled.
    since_poll: u64,
    /// External cancellation (set by a watchdog thread).
    cancel: Option<Arc<AtomicBool>>,
}

impl StepBudget {
    /// A budget that never exhausts (and never polls a flag).
    pub fn unlimited() -> StepBudget {
        StepBudget::default()
    }

    /// A budget of `fuel` units.
    pub fn limited(fuel: u64) -> StepBudget {
        StepBudget {
            remaining: Some(fuel),
            ..StepBudget::default()
        }
    }

    /// Attaches a cancellation flag, polled every 1024 charges (and on
    /// the first charge), so a watchdog can stop a computation whose
    /// fuel has not yet run out.
    #[must_use]
    pub fn with_cancel(mut self, cancel: Arc<AtomicBool>) -> StepBudget {
        self.cancel = Some(cancel);
        self
    }

    /// Units charged so far.
    pub fn spent(&self) -> u64 {
        self.spent
    }

    /// Remaining fuel; `None` when unlimited.
    pub fn remaining(&self) -> Option<u64> {
        self.remaining
    }

    /// Whether the attached cancellation flag has been raised. Unlike
    /// [`charge`](Self::charge) this polls immediately.
    pub fn cancelled(&self) -> bool {
        self.cancel
            .as_ref()
            .is_some_and(|flag| flag.load(Ordering::Relaxed))
    }

    /// Consumes `amount` units of fuel.
    ///
    /// # Errors
    ///
    /// [`BudgetExhausted`] when the fuel runs out, or when the
    /// cancellation flag is observed raised at a poll interval.
    pub fn charge(&mut self, amount: u64) -> Result<(), BudgetExhausted> {
        if let Some(remaining) = self.remaining {
            let Some(left) = remaining.checked_sub(amount) else {
                self.remaining = Some(0);
                return Err(BudgetExhausted {
                    spent: self.spent,
                    cancelled: false,
                });
            };
            self.remaining = Some(left);
        }
        self.spent = self.spent.saturating_add(amount);
        if self.cancel.is_some() {
            if self.since_poll == 0 && self.cancelled() {
                return Err(BudgetExhausted {
                    spent: self.spent,
                    cancelled: true,
                });
            }
            self.since_poll = (self.since_poll + 1) % CANCEL_POLL_INTERVAL;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_exhausts() {
        let mut budget = StepBudget::unlimited();
        for _ in 0..10_000 {
            budget.charge(u64::MAX / 4).expect("unlimited");
        }
        assert_eq!(budget.remaining(), None);
        assert!(budget.spent() > 0);
    }

    #[test]
    fn fuel_exhaustion_is_exact() {
        let mut budget = StepBudget::limited(5);
        for i in 0..5 {
            assert!(budget.charge(1).is_ok(), "charge {i}");
        }
        let err = budget.charge(1).unwrap_err();
        assert_eq!(err.spent, 5);
        assert!(!err.cancelled);
        assert_eq!(budget.remaining(), Some(0));
        // Exhaustion is sticky.
        assert!(budget.charge(1).is_err());
    }

    #[test]
    fn oversized_charge_exhausts_without_wrap() {
        let mut budget = StepBudget::limited(10);
        assert!(budget.charge(7).is_ok());
        let err = budget.charge(100).unwrap_err();
        assert_eq!(err.spent, 7);
    }

    #[test]
    fn cancellation_flag_observed_at_poll() {
        let flag = Arc::new(AtomicBool::new(false));
        let mut budget = StepBudget::unlimited().with_cancel(flag.clone());
        for _ in 0..100 {
            budget.charge(1).expect("not cancelled yet");
        }
        flag.store(true, Ordering::Relaxed);
        assert!(budget.cancelled());
        // Raised mid-interval: observed no later than the next poll
        // boundary.
        let mut tripped = None;
        for i in 0..2048u64 {
            if let Err(err) = budget.charge(1) {
                assert!(err.cancelled);
                tripped = Some(i);
                break;
            }
        }
        assert!(tripped.is_some(), "cancellation observed within interval");
    }

    #[test]
    fn display_distinguishes_causes() {
        let fuel = BudgetExhausted {
            spent: 9,
            cancelled: false,
        };
        let deadline = BudgetExhausted {
            spent: 9,
            cancelled: true,
        };
        assert!(fuel.to_string().contains("budget exhausted"));
        assert!(deadline.to_string().contains("deadline"));
    }
}
