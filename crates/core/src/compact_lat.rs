//! Compact LAT encoding — the paper's §5 future-work item "Further
//! research into LAT compaction methods".
//!
//! When compressed blocks are **word aligned** (the hardware-friendly
//! configuration the paper simulates), every stored length is a multiple
//! of 4 bytes, so the 5-bit byte-length records of the standard entry
//! waste two bits each. A compact entry stores lengths in *words*
//! (4 bits: 1..=8 words, 0 = uncompressed) packed with the same 24-bit
//! base into **7 bytes per 8 lines — 2.73% overhead** instead of 3.125%.
//!
//! The refill engine's address arithmetic is unchanged (a shift on the
//! summed lengths); this module provides the encoding, its round-trip,
//! and the equivalence proof against the standard entry, which the
//! `ablations` bench reports.

use crate::addr::LINE_SIZE;
use crate::error::CcrpError;
use crate::lat::{LatEntry, RECORDS_PER_ENTRY};

/// Encoded size of one compact LAT entry in bytes (24-bit base +
/// 8×4-bit word-length records).
pub const COMPACT_ENTRY_BYTES: usize = 7;

/// A word-granular LAT entry for word-aligned compressed images.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactLatEntry {
    base: u32,
    /// 4-bit records: 0 = uncompressed (8 words), 1..=8 = words stored.
    records: [u8; RECORDS_PER_ENTRY],
}

impl CompactLatEntry {
    /// Builds an entry from a base pointer and eight block lengths in
    /// **bytes** (each a multiple of 4 in 4..=32).
    ///
    /// # Errors
    ///
    /// [`CcrpError::BaseOverflow`] for a base above 24 bits, or
    /// [`CcrpError::BadBlockLength`] for a length that is not a word
    /// multiple in 4..=32 (byte-aligned images cannot use the compact
    /// encoding — that is the design trade-off).
    pub fn new(base: u32, byte_lengths: [u32; RECORDS_PER_ENTRY]) -> Result<Self, CcrpError> {
        if base >= (1 << 24) {
            return Err(CcrpError::BaseOverflow {
                address: u64::from(base),
            });
        }
        let mut records = [0u8; RECORDS_PER_ENTRY];
        for (record, &len) in records.iter_mut().zip(&byte_lengths) {
            if len % 4 != 0 || !(4..=32).contains(&len) {
                return Err(CcrpError::BadBlockLength {
                    length: len as usize,
                });
            }
            *record = if len == 32 { 0 } else { (len / 4) as u8 };
        }
        Ok(Self { base, records })
    }

    /// Converts a standard entry, failing if any length is not word
    /// aligned.
    ///
    /// # Errors
    ///
    /// [`CcrpError::BadBlockLength`] when the source image was
    /// byte-aligned.
    pub fn from_standard(entry: &LatEntry) -> Result<Self, CcrpError> {
        let mut lengths = [0u32; RECORDS_PER_ENTRY];
        for (slot, len) in lengths.iter_mut().enumerate() {
            *len = entry.block_length(slot);
        }
        Self::new(entry.base(), lengths)
    }

    /// The 24-bit base pointer.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Stored length of block `index` in bytes (record 0 decodes to 32).
    ///
    /// # Panics
    ///
    /// Panics if `index >= 8`.
    pub fn block_length(&self, index: usize) -> u32 {
        match self.records[index] {
            0 => LINE_SIZE,
            n => u32::from(n) * 4,
        }
    }

    /// Whether block `index` is stored uncompressed.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 8`.
    pub fn is_uncompressed(&self, index: usize) -> bool {
        self.records[index] == 0
    }

    /// Physical address of block `index` (prefix sum over word lengths,
    /// shifted — one fewer adder bit than the standard entry needs).
    ///
    /// # Panics
    ///
    /// Panics if `index >= 8`.
    pub fn block_address(&self, index: usize) -> u32 {
        // panic-ok: documented contract — indices are line-local 0..8.
        assert!(
            index < RECORDS_PER_ENTRY,
            "block index {index} out of range"
        );
        let words: u32 = (0..index).map(|i| self.block_length(i) / 4).sum();
        self.base + words * 4
    }

    /// Serializes to the 7-byte in-memory format: 3 little-endian base
    /// bytes, then eight 4-bit records packed MSB-first.
    pub fn encode(&self) -> [u8; COMPACT_ENTRY_BYTES] {
        let mut out = [0u8; COMPACT_ENTRY_BYTES];
        out[0] = self.base as u8;
        out[1] = (self.base >> 8) as u8;
        out[2] = (self.base >> 16) as u8;
        for pair in 0..4 {
            out[3 + pair] = (self.records[2 * pair] << 4) | self.records[2 * pair + 1];
        }
        out
    }

    /// Deserializes the 7-byte format.
    pub fn decode(bytes: [u8; COMPACT_ENTRY_BYTES]) -> Self {
        let base = u32::from(bytes[0]) | (u32::from(bytes[1]) << 8) | (u32::from(bytes[2]) << 16);
        let mut records = [0u8; RECORDS_PER_ENTRY];
        for pair in 0..4 {
            records[2 * pair] = bytes[3 + pair] >> 4;
            records[2 * pair + 1] = bytes[3 + pair] & 0x0F;
        }
        Self { base, records }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::needless_range_loop)]
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn matches_standard_entry_addressing() {
        let lengths = [4u32, 32, 8, 28, 4, 12, 8, 20];
        let standard = LatEntry::new(0x4000, lengths).unwrap();
        let compact = CompactLatEntry::from_standard(&standard).unwrap();
        for i in 0..8 {
            assert_eq!(
                compact.block_address(i),
                standard.block_address(i),
                "block {i}"
            );
            assert_eq!(
                compact.block_length(i),
                standard.block_length(i),
                "block {i}"
            );
            assert_eq!(compact.is_uncompressed(i), standard.is_uncompressed(i));
        }
    }

    #[test]
    fn rejects_byte_aligned_lengths() {
        let standard = LatEntry::new(0, [5, 4, 4, 4, 4, 4, 4, 4]).unwrap();
        assert!(matches!(
            CompactLatEntry::from_standard(&standard),
            Err(CcrpError::BadBlockLength { length: 5 })
        ));
        assert!(CompactLatEntry::new(0, [0, 4, 4, 4, 4, 4, 4, 4]).is_err());
        assert!(CompactLatEntry::new(0, [36, 4, 4, 4, 4, 4, 4, 4]).is_err());
        assert!(CompactLatEntry::new(1 << 24, [4; 8]).is_err());
    }

    #[test]
    fn seven_bytes_is_2_73_percent() {
        assert_eq!(COMPACT_ENTRY_BYTES, 7);
        // 7 bytes per 256 original bytes.
        assert!((7.0f64 / 256.0 - 0.02734).abs() < 1e-4);
    }

    proptest! {
        #[test]
        fn encode_decode_roundtrip(
            base in 0u32..(1 << 24),
            word_lengths in proptest::array::uniform8(1u32..=8),
        ) {
            let byte_lengths = word_lengths.map(|w| w * 4);
            let entry = CompactLatEntry::new(base, byte_lengths).unwrap();
            let back = CompactLatEntry::decode(entry.encode());
            prop_assert_eq!(back, entry);
            for i in 0..8 {
                prop_assert_eq!(back.block_length(i), byte_lengths[i]);
            }
        }

        #[test]
        fn equivalent_to_standard_on_word_aligned(
            base in 0u32..(1 << 20),
            word_lengths in proptest::array::uniform8(1u32..=8),
        ) {
            let byte_lengths = word_lengths.map(|w| w * 4);
            let standard = LatEntry::new(base, byte_lengths).unwrap();
            let compact = CompactLatEntry::from_standard(&standard).unwrap();
            for i in 0..8 {
                prop_assert_eq!(compact.block_address(i), standard.block_address(i));
            }
        }
    }
}
