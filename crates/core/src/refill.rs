//! The cache-line refill engine and its cycle-accurate timing model.
//!
//! On an instruction-cache miss (§3.4): the CLB is probed (in parallel
//! with the cache, so a hit costs nothing); on a CLB miss the 8-byte LAT
//! entry is first read from instruction memory; then the compressed block
//! streams in over the 32-bit bus while the decoder expands it at 2 bytes
//! per cycle, stalling whenever the bits for the next symbols have not
//! arrived yet. Bypassed (uncompressed) blocks refill exactly like a
//! standard processor's.

use ccrp_compress::LineCodec;
use ccrp_probe::{Event, NullProbe, Probe};

use crate::addr::LINE_SIZE;
use crate::clb::{Clb, ClbSnapshot, ClbStats};
use crate::error::CcrpError;
use crate::image::CompressedImage;

/// Timing oracle for the instruction memory: the three models of §4.2.1
/// (EPROM, burst EPROM, static-column DRAM) implement this in `ccrp-sim`.
pub trait MemoryTiming {
    /// Starts a read of `words` consecutive 32-bit words at cycle `now`
    /// (a new random access; bursts never span calls) and pushes the
    /// arrival cycle of each word onto `arrivals` (cleared first).
    fn read_burst(&mut self, words: u32, now: u64, arrivals: &mut Vec<u64>);
}

/// What the refill engine does when it detects corruption (a LAT entry
/// disagreeing with the layout, a CRC mismatch, a block that fails to
/// decode). Modeled on how embedded memory controllers degrade.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DegradePolicy {
    /// Propagate the underlying error to the caller unchanged (the
    /// strict default: fail fast, let software decide).
    #[default]
    Abort,
    /// Invalidate the cached LAT entry and re-read everything from
    /// instruction memory, up to `attempts` extra tries with exponential
    /// backoff (`1 << try` cycles) charged to the timing model — the
    /// right call when corruption may be a transient bus upset. Escalates
    /// to [`CcrpError::MachineCheck`] when the budget is exhausted.
    Retry {
        /// Extra attempts after the first failed read.
        attempts: u32,
    },
    /// Raise [`CcrpError::MachineCheck`] immediately, as hardware whose
    /// only recourse is a machine-check exception would.
    Trap,
}

/// How hard the refill engine looks for corruption on each refill.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IntegrityCheck {
    /// Cross-check the (possibly CLB-cached) LAT entry against the
    /// image layout. Free in hardware terms — the comparators already
    /// exist — and catches table corruption before a bogus fetch.
    #[default]
    Fast,
    /// [`Fast`](IntegrityCheck::Fast), plus actually decode the stored
    /// block (surfacing decode errors and, when the image carries CRC
    /// records, CRC mismatches) and expand from the decoded bytes.
    Full,
}

/// Configuration of the refill engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefillConfig {
    /// CLB capacity in LAT entries (the paper sweeps 4/8/16; default 16).
    pub clb_entries: usize,
    /// Decoder throughput in original bytes per cycle (the paper's
    /// decoder retires 2 by decoding one byte on each clock edge).
    pub decode_bytes_per_cycle: u32,
    /// What to do on detected corruption.
    pub policy: DegradePolicy,
    /// How much corruption detection to do per refill.
    pub integrity: IntegrityCheck,
}

impl Default for RefillConfig {
    fn default() -> Self {
        Self {
            clb_entries: 16,
            decode_bytes_per_cycle: 2,
            policy: DegradePolicy::default(),
            integrity: IntegrityCheck::default(),
        }
    }
}

/// What one refill cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefillOutcome {
    /// Cycle at which the expanded line is fully in the cache.
    pub ready_at: u64,
    /// Bytes moved over the instruction-memory bus (block + any LAT
    /// entry read), counting whole words and every retry's traffic.
    pub bytes_fetched: u32,
    /// Whether the LAT entry was already in the CLB (first attempt).
    pub clb_hit: bool,
    /// Whether the block was stored uncompressed.
    pub bypass: bool,
    /// Re-reads a [`DegradePolicy::Retry`] engine needed (0 otherwise).
    pub retries: u32,
}

/// Running totals of one refill attempt, kept outside the `Result` so a
/// failed attempt still reports the cycles and bus traffic it burned —
/// the retry path charges those to the next attempt's start time.
#[derive(Debug, Clone, Copy)]
struct AttemptProgress {
    time: u64,
    bytes: u32,
    clb_hit: bool,
    bypass: bool,
}

/// The code-expanding refill engine (cache side of Figure 4).
#[derive(Debug, Clone)]
pub struct RefillEngine {
    clb: Clb,
    decode_rate: u32,
    policy: DegradePolicy,
    integrity: IntegrityCheck,
    scratch: Vec<u64>,
    profile: [u64; LINE_SIZE as usize],
}

impl RefillEngine {
    /// Creates an engine.
    ///
    /// # Errors
    ///
    /// [`CcrpError::EmptyClb`] for a zero-entry CLB; a zero decode rate
    /// is also reported as [`CcrpError::BadBlockLength`] (no throughput).
    pub fn new(config: RefillConfig) -> Result<Self, CcrpError> {
        if config.decode_bytes_per_cycle == 0 {
            return Err(CcrpError::BadBlockLength { length: 0 });
        }
        Ok(Self {
            clb: Clb::new(config.clb_entries)?,
            decode_rate: config.decode_bytes_per_cycle,
            policy: config.policy,
            integrity: config.integrity,
            scratch: Vec::with_capacity(8),
            profile: [0; LINE_SIZE as usize],
        })
    }

    /// CLB hit/miss statistics.
    pub fn clb_stats(&self) -> ClbStats {
        self.clb.stats()
    }

    /// Captures the engine's mutable state. Only the CLB is state:
    /// decode rate, policy, and integrity mode are configuration, and
    /// the burst-arrival scratch buffer is cleared at the start of
    /// every memory read.
    pub fn snapshot(&self) -> RefillEngineSnapshot {
        RefillEngineSnapshot {
            clb: self.clb.snapshot(),
        }
    }

    /// Restores the state captured by [`snapshot`](Self::snapshot);
    /// configuration fields are untouched. Refills after a restore
    /// proceed bit-for-bit as they would have on the snapshotted
    /// engine under the same configuration.
    pub fn restore(&mut self, snapshot: &RefillEngineSnapshot) {
        self.clb.restore(&snapshot.clb);
    }

    /// Whether `error` is something the degradation policy covers:
    /// detected corruption, as opposed to caller mistakes like an
    /// out-of-range address.
    fn is_corruption(error: &CcrpError) -> bool {
        matches!(
            error,
            CcrpError::Integrity { .. } | CcrpError::CrcMismatch { .. } | CcrpError::Compress(_)
        )
    }

    /// Refills the cache line holding CPU address `address` from `image`,
    /// starting at cycle `now`, degrading per the configured
    /// [`DegradePolicy`] when corruption is detected.
    ///
    /// # Errors
    ///
    /// [`CcrpError::AddressOutOfRange`] for addresses outside the
    /// program (never degraded — it is a caller mistake, not
    /// corruption); detected-corruption errors per the policy: the
    /// underlying [`CcrpError::Integrity`] / [`CcrpError::CrcMismatch`] /
    /// decode error under [`DegradePolicy::Abort`], or
    /// [`CcrpError::MachineCheck`] under [`DegradePolicy::Trap`] and
    /// under [`DegradePolicy::Retry`] once the budget is exhausted.
    pub fn refill(
        &mut self,
        image: &CompressedImage,
        address: u32,
        now: u64,
        memory: &mut dyn MemoryTiming,
    ) -> Result<RefillOutcome, CcrpError> {
        self.refill_probed(image, address, now, memory, &mut NullProbe)
    }

    /// [`refill`](Self::refill), reporting every step to `probe`:
    /// [`Event::RefillStart`]/[`Event::RefillDone`], the CLB probe
    /// outcome and any eviction, each memory burst, and any
    /// [`Event::IntegrityFailure`]/[`Event::RetryBackoff`] on the
    /// degradation path. The computation is identical — `refill` is this
    /// method with [`NullProbe`], which monomorphizes the emits away.
    ///
    /// # Errors
    ///
    /// As [`refill`](Self::refill).
    pub fn refill_probed<P: Probe>(
        &mut self,
        image: &CompressedImage,
        address: u32,
        now: u64,
        memory: &mut dyn MemoryTiming,
        probe: &mut P,
    ) -> Result<RefillOutcome, CcrpError> {
        // Resolve the LAT index up front so the retry path can
        // invalidate the right CLB entry.
        let lat_index = image.locate(address)?.lat_index;
        probe.emit(now, Event::RefillStart { address });
        let max_retries = match self.policy {
            DegradePolicy::Retry { attempts } => attempts,
            _ => 0,
        };
        let mut retries = 0u32;
        let mut carried_bytes = 0u32;
        let mut start = now;
        loop {
            let mut progress = AttemptProgress {
                time: start,
                bytes: 0,
                clb_hit: false,
                bypass: false,
            };
            match self.refill_attempt(image, address, start, memory, &mut progress, probe) {
                Ok(ready_at) => {
                    let outcome = RefillOutcome {
                        ready_at,
                        bytes_fetched: carried_bytes + progress.bytes,
                        clb_hit: retries == 0 && progress.clb_hit,
                        bypass: progress.bypass,
                        retries,
                    };
                    probe.emit(
                        ready_at,
                        Event::RefillDone {
                            address,
                            cycles: ready_at.saturating_sub(now),
                            bytes: outcome.bytes_fetched,
                            clb_hit: outcome.clb_hit,
                            bypass: outcome.bypass,
                            retries,
                        },
                    );
                    return Ok(outcome);
                }
                Err(e) if Self::is_corruption(&e) => {
                    probe.emit(progress.time, Event::IntegrityFailure { address });
                    match self.policy {
                        DegradePolicy::Abort => return Err(e),
                        DegradePolicy::Trap => return Err(CcrpError::MachineCheck { address }),
                        DegradePolicy::Retry { .. } => {
                            if retries >= max_retries {
                                return Err(CcrpError::MachineCheck { address });
                            }
                            carried_bytes += progress.bytes;
                            // A corrupt LAT entry cached in the CLB would make
                            // every re-read fail identically; force a fresh
                            // in-memory LAT read, then back off exponentially.
                            self.clb.invalidate(lat_index);
                            let backoff_cycles = 1u64 << retries.min(16);
                            probe.emit(
                                progress.time,
                                Event::RetryBackoff {
                                    address,
                                    attempt: retries + 1,
                                    backoff_cycles,
                                },
                            );
                            start = progress.time + backoff_cycles;
                            retries += 1;
                        }
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// One refill attempt: LAT lookup (CLB or memory), integrity
    /// cross-check, block fetch, decode-timing model. Updates `progress`
    /// as it goes so a failure mid-attempt still reports cost.
    fn refill_attempt<P: Probe>(
        &mut self,
        image: &CompressedImage,
        address: u32,
        now: u64,
        memory: &mut dyn MemoryTiming,
        progress: &mut AttemptProgress,
        probe: &mut P,
    ) -> Result<u64, CcrpError> {
        let location = image.locate(address)?;
        progress.bypass = location.bypass;
        let mut start = now;

        let entry = match self.clb.probe(location.lat_index) {
            Some(entry) => {
                progress.clb_hit = true;
                probe.emit(
                    now,
                    Event::ClbHit {
                        lat_index: location.lat_index,
                    },
                );
                entry
            }
            None => {
                probe.emit(
                    now,
                    Event::ClbMiss {
                        lat_index: location.lat_index,
                    },
                );
                // Read the 8-byte LAT entry (2 words) before the block
                // fetch can be addressed.
                memory.read_burst(2, start, &mut self.scratch);
                start = self.scratch.last().copied().ok_or(CcrpError::Integrity {
                    what: "memory returned no arrivals for the LAT read",
                    address,
                })?;
                probe.emit(
                    now,
                    Event::MemoryBurst {
                        words: 2,
                        done: start,
                    },
                );
                progress.time = start;
                progress.bytes += 8;
                let entry = *image
                    .lat()
                    .entry(location.lat_index)
                    .ok_or(CcrpError::Integrity {
                        what: "LAT shorter than the program",
                        address,
                    })?;
                if let Some(evicted) = self.clb.insert(location.lat_index, entry) {
                    probe.emit(start, Event::ClbEvict { lat_index: evicted });
                }
                entry
            }
        };

        // Cross-check the (possibly stale or corrupt) table entry against
        // the image layout before trusting its pointer on the bus.
        let slot = location.line_in_entry as usize;
        if entry.block_address(slot) != location.physical
            || entry.block_length(slot) != location.stored_len
            || entry.is_uncompressed(slot) != location.bypass
        {
            return Err(CcrpError::Integrity {
                what: "LAT entry disagrees with the image layout",
                address,
            });
        }

        // Whole-word bus: the block occupies the words its bytes span.
        let first_byte = location.physical;
        let last_byte = location.physical + location.stored_len - 1;
        let words = (last_byte / 4) - (first_byte / 4) + 1;
        memory.read_burst(words, start, &mut self.scratch);
        progress.bytes += words * 4;
        let last_arrival = self.scratch.last().copied().ok_or(CcrpError::Integrity {
            what: "memory returned no arrivals for the block read",
            address,
        })?;
        probe.emit(
            start,
            Event::MemoryBurst {
                words,
                done: last_arrival,
            },
        );
        progress.time = progress.time.max(last_arrival);

        // Expansion buffer for the Full-integrity decode: stack-only,
        // so the per-refill hot path never heap-allocates.
        let mut line_buf = [0u8; LINE_SIZE as usize];
        let ready_at = if location.bypass {
            // Raw line: bytes go straight to the cache as they arrive;
            // the decoder (and its lookup table) is never consulted.
            if matches!(self.integrity, IntegrityCheck::Full) {
                // CRC the stored bytes when the image carries records.
                image.expand_line_into(address, &mut line_buf)?;
            }
            last_arrival
        } else {
            let byte_offset_in_burst = first_byte % 4;
            match self.integrity {
                // Timing oracle: the original bytes stand in for the
                // decoder output (bit-exact for an uncorrupted image).
                IntegrityCheck::Fast => decode_completion(
                    image.codec(),
                    image.original_line(address)?,
                    byte_offset_in_burst,
                    &self.scratch,
                    self.decode_rate,
                    start,
                    &mut self.profile,
                ),
                // Actually run the decoder (surfacing CRC and decode
                // errors) and time the bytes it really produced.
                IntegrityCheck::Full => {
                    image.expand_line_into(address, &mut line_buf)?;
                    decode_completion(
                        image.codec(),
                        &line_buf,
                        byte_offset_in_burst,
                        &self.scratch,
                        self.decode_rate,
                        start,
                        &mut self.profile,
                    )
                }
            }
        };
        progress.time = progress.time.max(ready_at);
        Ok(ready_at)
    }
}

/// A [`RefillEngine`]'s captured mutable state; see
/// [`RefillEngine::snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefillEngineSnapshot {
    clb: ClbSnapshot,
}

impl RefillEngineSnapshot {
    /// The captured CLB state.
    pub fn clb(&self) -> &ClbSnapshot {
        &self.clb
    }
}

/// Completion cycle of the pipelined decoder.
///
/// The decoder retires `rate` original bytes per cycle — clamped to the
/// codec's modeled [`max_bytes_per_cycle`](ccrp_compress::CodecCost)
/// when its hardware cannot sustain the configured rate — but can only
/// consume compressed bits that have arrived from memory. For each output
/// group we find the last *input* byte its symbols need (from the codec's
/// exact bit profile — this is bit exact, not an estimate), map that byte
/// to the word burst that delivers it, and stall accordingly.
///
/// `byte_offset` is the block's starting byte within the first fetched
/// word (nonzero only for byte-aligned images). `profile` is a caller
/// scratch buffer so the refill hot path stays allocation-free.
pub(crate) fn decode_completion(
    codec: &dyn LineCodec,
    original_line: &[u8],
    byte_offset: u32,
    word_arrivals: &[u64],
    rate: u32,
    start: u64,
    profile: &mut [u64; LINE_SIZE as usize],
) -> u64 {
    // panic-ok: debug-build invariant — callers slice whole cache lines.
    debug_assert_eq!(original_line.len(), LINE_SIZE as usize);
    let rate = codec.cost().effective_rate(rate);
    codec.bit_profile(original_line, profile);
    let mut t = start;
    let mut index = 0usize;
    while index < original_line.len() {
        let group_end = (index + rate as usize).min(original_line.len());
        // Cumulative compressed bits needed through the group's last byte.
        let bits_consumed = profile[group_end - 1];
        // Last compressed byte needed, relative to the block start.
        let last_input_byte = (bits_consumed.max(1) - 1) / 8;
        let word = (u64::from(byte_offset) + last_input_byte) / 4;
        let arrival = word_arrivals[(word as usize).min(word_arrivals.len() - 1)];
        t = t.max(arrival) + 1;
        index = group_end;
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccrp_compress::{BlockAlignment, ByteCode, ByteHistogram};

    /// Memory that delivers the first word after `first` cycles and one
    /// word per cycle after (burst-EPROM-like), counting calls.
    struct TestMemory {
        first: u64,
        calls: Vec<(u32, u64)>,
    }

    impl TestMemory {
        fn new(first: u64) -> Self {
            Self {
                first,
                calls: Vec::new(),
            }
        }
    }

    impl MemoryTiming for TestMemory {
        fn read_burst(&mut self, words: u32, now: u64, arrivals: &mut Vec<u64>) {
            self.calls.push((words, now));
            arrivals.clear();
            for i in 0..u64::from(words) {
                arrivals.push(now + self.first + i);
            }
        }
    }

    fn test_image(len: usize) -> CompressedImage {
        let mut text = vec![0u8; len];
        for (i, b) in text.iter_mut().enumerate() {
            *b = match i % 4 {
                0 => (i / 7) as u8,
                1 => 0,
                2 => 0x3C,
                _ => 0x24,
            };
        }
        let code = ByteCode::preselected(&ByteHistogram::of(&text)).unwrap();
        CompressedImage::build(0, &text, code, BlockAlignment::Word).unwrap()
    }

    #[test]
    fn decode_floor_is_16_cycles() {
        // With all input available instantly, a 2 B/cycle decoder takes
        // exactly 16 cycles past the start.
        let image = test_image(256);
        let original = image.original_line(0).unwrap();
        let arrivals = vec![0u64; 8];
        let done = decode_completion(image.codec(), original, 0, &arrivals, 2, 0, &mut [0; 32]);
        assert_eq!(done, 16);
    }

    #[test]
    fn decoder_stalls_on_slow_memory() {
        // One word per 3 cycles (EPROM-like): input arrives at
        // 1.33 B/cycle < 2 B/cycle decode, so memory dominates.
        let image = test_image(256);
        let original = image.original_line(0).unwrap();
        let loc = image.locate(0).unwrap();
        let words = loc.stored_len.div_ceil(4) as usize;
        let arrivals: Vec<u64> = (0..words).map(|i| 3 * (i as u64 + 1)).collect();
        let done = decode_completion(image.codec(), original, 0, &arrivals, 2, 0, &mut [0; 32]);
        let last = *arrivals.last().unwrap();
        assert!(done > last, "decoder cannot finish before data arrives");
        assert!(done <= last + 16, "at most one full decode pipeline behind");
    }

    #[test]
    fn clb_hit_skips_lat_read() {
        let image = test_image(512);
        let mut engine = RefillEngine::new(RefillConfig::default()).unwrap();
        let mut mem = TestMemory::new(3);

        let miss = engine.refill(&image, 0x00, 0, &mut mem).unwrap();
        assert!(!miss.clb_hit);
        // First call reads the 2-word LAT entry.
        assert_eq!(mem.calls[0].0, 2);
        assert_eq!(miss.bytes_fetched % 4, 0);
        assert!(miss.bytes_fetched >= 8);

        // Line 1 shares LAT entry 0 -> CLB hit, only the block is read.
        let hit = engine.refill(&image, 0x20, 100, &mut mem).unwrap();
        assert!(hit.clb_hit);
        assert_eq!(mem.calls.len(), 3);
        assert!(hit.bytes_fetched < miss.bytes_fetched);
        assert_eq!(engine.clb_stats().hits, 1);
        assert_eq!(engine.clb_stats().misses, 1);
    }

    #[test]
    fn compressed_refill_beats_standard_on_slow_memory() {
        // EPROM-like: 3 cycles per word, no burst advantage. A standard
        // refill is 8 words = 24 cycles. The compressed block is fewer
        // words; even with the decode pipe it should win.
        struct Eprom;
        impl MemoryTiming for Eprom {
            fn read_burst(&mut self, words: u32, now: u64, arrivals: &mut Vec<u64>) {
                arrivals.clear();
                for i in 0..u64::from(words) {
                    arrivals.push(now + 3 * (i + 1));
                }
            }
        }
        let image = test_image(256);
        let mut engine = RefillEngine::new(RefillConfig::default()).unwrap();
        // Warm the CLB so we compare pure line refills.
        let mut mem = Eprom;
        engine.refill(&image, 0, 0, &mut mem).unwrap();
        let outcome = engine.refill(&image, 0, 0, &mut mem).unwrap();
        assert!(outcome.clb_hit);
        let standard_cycles = 24;
        assert!(
            outcome.ready_at < standard_cycles,
            "compressed refill took {} cycles",
            outcome.ready_at
        );
    }

    #[test]
    fn bypass_refills_like_standard() {
        // Build an image whose lines cannot compress (uniform random
        // bytes against a hostile code).
        let mut text = vec![0u8; 256];
        let mut x = 123u32;
        for b in &mut text {
            x = x.wrapping_mul(1_103_515_245).wrapping_add(12_345);
            *b = (x >> 17) as u8;
        }
        // Code trained on completely different, highly skewed data.
        let code = ByteCode::preselected(&ByteHistogram::of(&vec![0u8; 4096])).unwrap();
        let image = CompressedImage::build(0, &text, code, BlockAlignment::Word).unwrap();
        assert!(image.bypass_count() > 0, "expected bypassed lines");
        let mut engine = RefillEngine::new(RefillConfig::default()).unwrap();
        let mut mem = TestMemory::new(3);
        engine.refill(&image, 0, 0, &mut mem).unwrap();
        let outcome = engine.refill(&image, 0, 0, &mut mem).unwrap();
        assert!(outcome.bypass);
        // 8 words, first at 3, then one per cycle -> ready at 10.
        assert_eq!(outcome.ready_at, 10);
        assert_eq!(outcome.bytes_fetched, 32);
    }

    #[test]
    fn bypass_lines_never_consult_the_decoder() {
        // Hostile construction: random text against a code trained on
        // all-zero data, so most lines bypass and their stored bytes are
        // the raw program bytes — garbage *as a Huffman stream* for this
        // image's code. If any path (including Full integrity, which
        // decodes stored blocks) ran bypass bytes through the decode
        // table or the bit-walk, these refills would surface decode
        // errors or wrong bytes; instead every line must expand back to
        // the original text by raw copy.
        let mut text = vec![0u8; 256];
        let mut x = 123u32;
        for b in &mut text {
            x = x.wrapping_mul(1_103_515_245).wrapping_add(12_345);
            *b = (x >> 17) as u8;
        }
        let code = ByteCode::preselected(&ByteHistogram::of(&vec![0u8; 4096])).unwrap();
        let image = CompressedImage::build(0, &text, code.clone(), BlockAlignment::Word).unwrap();
        assert!(image.bypass_count() > 0, "expected bypassed lines");

        let mut engine = RefillEngine::new(RefillConfig {
            integrity: IntegrityCheck::Full,
            ..RefillConfig::default()
        })
        .unwrap();
        let mut mem = TestMemory::new(1);
        let mut bypass_seen = 0usize;
        for line in 0..image.line_count() {
            let address = line as u32 * LINE_SIZE;
            let outcome = engine.refill(&image, address, 0, &mut mem).unwrap();
            let chunk = &text[line * LINE_SIZE as usize..][..LINE_SIZE as usize];
            assert_eq!(image.expand_line(address).unwrap().as_slice(), chunk);
            if outcome.bypass {
                bypass_seen += 1;
                // The stored bytes of a bypassed line are the raw text
                // bytes; prove they are NOT decodable as this code's
                // Huffman stream, so the successful refill above can
                // only have come from the raw-copy path.
                let decoded = code.decode(chunk, LINE_SIZE as usize);
                assert!(
                    decoded.map_or(true, |d| d != chunk),
                    "line {line}: bypass bytes happen to self-decode; \
                     pick a different corpus seed"
                );
            }
        }
        assert_eq!(bypass_seen, image.bypass_count());
    }

    #[test]
    fn out_of_range_is_error() {
        let image = test_image(64);
        let mut engine = RefillEngine::new(RefillConfig::default()).unwrap();
        let mut mem = TestMemory::new(1);
        assert!(matches!(
            engine.refill(&image, 0x1000, 0, &mut mem),
            Err(CcrpError::AddressOutOfRange { .. })
        ));
    }

    #[test]
    fn zero_decode_rate_rejected() {
        assert!(RefillEngine::new(RefillConfig {
            clb_entries: 4,
            decode_bytes_per_cycle: 0,
            ..RefillConfig::default()
        })
        .is_err());
    }

    /// A LAT length record that disagrees with line 0's real stored size.
    fn lat_lie(image: &CompressedImage) -> u32 {
        if image.locate(0).unwrap().stored_len == 32 {
            31
        } else {
            32
        }
    }

    #[test]
    fn abort_surfaces_lat_corruption() {
        let mut image = test_image(512);
        image.corrupt_lat_length(0, lat_lie(&image)).unwrap();
        let mut engine = RefillEngine::new(RefillConfig::default()).unwrap();
        let mut mem = TestMemory::new(3);
        assert!(matches!(
            engine.refill(&image, 0, 0, &mut mem),
            Err(CcrpError::Integrity { .. })
        ));
        // Lines in other LAT entries are unaffected.
        assert!(engine.refill(&image, 0x100, 0, &mut mem).is_ok());
    }

    #[test]
    fn trap_escalates_to_machine_check() {
        let mut image = test_image(512);
        image.corrupt_lat_length(0, lat_lie(&image)).unwrap();
        let mut engine = RefillEngine::new(RefillConfig {
            policy: DegradePolicy::Trap,
            ..RefillConfig::default()
        })
        .unwrap();
        let mut mem = TestMemory::new(3);
        assert!(matches!(
            engine.refill(&image, 0, 0, &mut mem),
            Err(CcrpError::MachineCheck { address: 0 })
        ));
        // Out-of-range addresses are caller mistakes, never trapped.
        assert!(matches!(
            engine.refill(&image, 0x4000, 0, &mut mem),
            Err(CcrpError::AddressOutOfRange { .. })
        ));
    }

    #[test]
    fn retry_exhausts_with_backoff_charged_to_memory() {
        let mut image = test_image(512);
        image.corrupt_lat_length(0, lat_lie(&image)).unwrap();
        let mut engine = RefillEngine::new(RefillConfig {
            policy: DegradePolicy::Retry { attempts: 2 },
            ..RefillConfig::default()
        })
        .unwrap();
        let mut mem = TestMemory::new(3);
        assert!(matches!(
            engine.refill(&image, 0, 0, &mut mem),
            Err(CcrpError::MachineCheck { address: 0 })
        ));
        // Three attempts, each a fresh 2-word LAT read (the CLB entry is
        // invalidated between tries), at strictly increasing cycles.
        assert_eq!(mem.calls.len(), 3);
        for call in &mem.calls {
            assert_eq!(call.0, 2);
        }
        assert!(mem.calls[0].1 < mem.calls[1].1);
        assert!(mem.calls[1].1 < mem.calls[2].1);
    }

    #[test]
    fn retry_recovers_from_stale_clb_entry() {
        let mut image = test_image(512);
        let truth = image.locate(0).unwrap().stored_len;
        let lie = lat_lie(&image);
        let mut engine = RefillEngine::new(RefillConfig {
            policy: DegradePolicy::Retry { attempts: 1 },
            ..RefillConfig::default()
        })
        .unwrap();
        let mut mem = TestMemory::new(3);
        // Corrupt refill fails and leaves the bad entry cached in the CLB.
        image.corrupt_lat_length(0, lie).unwrap();
        assert!(engine.refill(&image, 0, 0, &mut mem).is_err());
        // Repair the table: the next refill hits the stale CLB entry,
        // fails its cross-check, invalidates, re-reads the now-correct
        // LAT, and succeeds — the transient-upset recovery story.
        image.corrupt_lat_length(0, truth).unwrap();
        let outcome = engine.refill(&image, 0, 100, &mut mem).unwrap();
        assert_eq!(outcome.retries, 1);
        assert!(!outcome.clb_hit);
        assert!(outcome.ready_at > 100);
    }

    #[test]
    fn corrupt_lat_entry_survives_clb_eviction() {
        // 18 LAT entries: enough other entries to evict entry 0 from a
        // 16-entry CLB through pure LRU pressure.
        let mut image = test_image(18 * 256);
        image.corrupt_lat_length(0, lat_lie(&image)).unwrap();
        let mut engine = RefillEngine::new(RefillConfig::default()).unwrap();
        let mut mem = TestMemory::new(3);

        // Miss path: the LAT read caches the corrupt entry, then the
        // cross-check rejects it.
        let first = engine.refill(&image, 0, 0, &mut mem).unwrap_err();
        assert!(matches!(first, CcrpError::Integrity { .. }));
        assert_eq!(mem.calls.len(), 1, "one LAT read, no block fetch");

        // Hit path: the cached corrupt entry fails identically, without
        // touching memory at all.
        mem.calls.clear();
        let cached = engine.refill(&image, 0, 0, &mut mem).unwrap_err();
        assert_eq!(cached, first);
        assert!(mem.calls.is_empty(), "CLB hit needs no memory traffic");

        // Evict entry 0 by refilling one line in each of 16 other
        // entries, then re-fetch: the fresh LAT read surfaces the same
        // error again — eviction neither masks nor mutates it.
        for entry in 1..=16u32 {
            engine.refill(&image, entry * 256, 0, &mut mem).unwrap();
        }
        mem.calls.clear();
        let refetched = engine.refill(&image, 0, 0, &mut mem).unwrap_err();
        assert_eq!(refetched, first);
        assert_eq!(mem.calls.len(), 1, "evicted entry forces a LAT re-read");
    }

    #[test]
    fn full_integrity_detects_block_corruption_fast_does_not() {
        let pristine = test_image(512);
        // Find a compressed (non-bypass) line and flip a bit mid-block.
        let target = (0..pristine.line_count())
            .find(|&l| !pristine.locate(l as u32 * 32).unwrap().bypass)
            .expect("some line compresses");
        let mut image = pristine.clone();
        image.attach_block_crcs();
        image.corrupt_block_byte(target, 0, 0x10).unwrap();
        let address = target as u32 * 32;

        let mut fast = RefillEngine::new(RefillConfig::default()).unwrap();
        let mut mem = TestMemory::new(3);
        // Fast never touches the stored bytes: the LAT still matches the
        // layout, so the corruption sails through (the timing oracle uses
        // the original bytes) — this is exactly the silent-miscompare
        // window the Full check closes.
        assert!(fast.refill(&image, address, 0, &mut mem).is_ok());

        let mut full = RefillEngine::new(RefillConfig {
            integrity: IntegrityCheck::Full,
            ..RefillConfig::default()
        })
        .unwrap();
        let err = full.refill(&image, address, 0, &mut mem).unwrap_err();
        assert!(
            matches!(err, CcrpError::CrcMismatch { .. } | CcrpError::Compress(_)),
            "got {err:?}"
        );
    }

    #[test]
    fn full_integrity_timing_matches_fast_on_pristine_image() {
        let image = test_image(512);
        let mut fast = RefillEngine::new(RefillConfig::default()).unwrap();
        let mut full = RefillEngine::new(RefillConfig {
            integrity: IntegrityCheck::Full,
            ..RefillConfig::default()
        })
        .unwrap();
        for addr in (0..512).step_by(32) {
            let mut m1 = TestMemory::new(3);
            let mut m2 = TestMemory::new(3);
            let a = fast.refill(&image, addr, 0, &mut m1).unwrap();
            let b = full.refill(&image, addr, 0, &mut m2).unwrap();
            assert_eq!(a, b, "addr {addr:#x}");
        }
    }

    #[test]
    fn probed_refill_matches_plain_and_emits_events() {
        use ccrp_probe::EventLog;

        let image = test_image(512);
        let mut plain = RefillEngine::new(RefillConfig::default()).unwrap();
        let mut probed = RefillEngine::new(RefillConfig::default()).unwrap();
        let mut log = EventLog::new();
        for addr in (0..512).step_by(32) {
            let mut m1 = TestMemory::new(3);
            let mut m2 = TestMemory::new(3);
            let a = plain.refill(&image, addr, 0, &mut m1).unwrap();
            let b = probed
                .refill_probed(&image, addr, 0, &mut m2, &mut log)
                .unwrap();
            assert_eq!(a, b, "addr {addr:#x}");
            assert_eq!(m1.calls, m2.calls, "addr {addr:#x}");
        }
        // 16 refills: each has a start, a CLB probe outcome, at least one
        // memory burst, and a completion.
        let count = |kind: &str| {
            log.events()
                .iter()
                .filter(|e| e.event.kind() == kind)
                .count()
        };
        assert_eq!(count("refill_start"), 16);
        assert_eq!(count("refill"), 16);
        assert_eq!(count("clb_hit") + count("clb_miss"), 16);
        assert!(count("memory_burst") >= 16);
        // RefillDone stamps carry the outcome's latency.
        for e in log.events() {
            if let Event::RefillDone { cycles, .. } = e.event {
                assert_eq!(e.cycle, cycles, "start was cycle 0");
            }
        }
    }

    #[test]
    fn probed_refill_reports_eviction_and_retry_events() {
        use ccrp_probe::EventLog;

        // 18 LAT entries through a 16-entry CLB forces evictions.
        let image = test_image(18 * 256);
        let mut engine = RefillEngine::new(RefillConfig::default()).unwrap();
        let mut mem = TestMemory::new(3);
        let mut log = EventLog::new();
        for entry in 0..18u32 {
            engine
                .refill_probed(&image, entry * 256, 0, &mut mem, &mut log)
                .unwrap();
        }
        assert!(log
            .events()
            .iter()
            .any(|e| matches!(e.event, Event::ClbEvict { .. })));

        // A corrupt LAT entry under Retry emits failure + backoff pairs.
        let mut image = test_image(512);
        image.corrupt_lat_length(0, lat_lie(&image)).unwrap();
        let mut engine = RefillEngine::new(RefillConfig {
            policy: DegradePolicy::Retry { attempts: 2 },
            ..RefillConfig::default()
        })
        .unwrap();
        let mut log = EventLog::new();
        assert!(engine
            .refill_probed(&image, 0, 0, &mut mem, &mut log)
            .is_err());
        let failures = log
            .events()
            .iter()
            .filter(|e| matches!(e.event, Event::IntegrityFailure { .. }))
            .count();
        let backoffs: Vec<_> = log
            .events()
            .iter()
            .filter_map(|e| match e.event {
                Event::RetryBackoff {
                    attempt,
                    backoff_cycles,
                    ..
                } => Some((attempt, backoff_cycles)),
                _ => None,
            })
            .collect();
        assert_eq!(failures, 3, "initial try + 2 retries all fail");
        assert_eq!(backoffs, vec![(1, 1), (2, 2)], "exponential backoff");
    }

    #[test]
    fn faster_decoder_is_never_slower() {
        let image = test_image(512);
        for addr in (0..512).step_by(32) {
            let original = image.original_line(addr).unwrap();
            let arrivals: Vec<u64> = (0..8).map(|i| 3 * (i + 1)).collect();
            let mut p = [0u64; 32];
            let d2 = decode_completion(image.codec(), original, 0, &arrivals, 2, 0, &mut p);
            let d4 = decode_completion(image.codec(), original, 0, &arrivals, 4, 0, &mut p);
            let d1 = decode_completion(image.codec(), original, 0, &arrivals, 1, 0, &mut p);
            assert!(d4 <= d2, "4 B/cy must not lose to 2 B/cy");
            assert!(d2 <= d1, "2 B/cy must not lose to 1 B/cy");
        }
    }
}
