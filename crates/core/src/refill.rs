//! The cache-line refill engine and its cycle-accurate timing model.
//!
//! On an instruction-cache miss (§3.4): the CLB is probed (in parallel
//! with the cache, so a hit costs nothing); on a CLB miss the 8-byte LAT
//! entry is first read from instruction memory; then the compressed block
//! streams in over the 32-bit bus while the decoder expands it at 2 bytes
//! per cycle, stalling whenever the bits for the next symbols have not
//! arrived yet. Bypassed (uncompressed) blocks refill exactly like a
//! standard processor's.

use ccrp_compress::ByteCode;

use crate::addr::LINE_SIZE;
use crate::clb::{Clb, ClbStats};
use crate::error::CcrpError;
use crate::image::CompressedImage;

/// Timing oracle for the instruction memory: the three models of §4.2.1
/// (EPROM, burst EPROM, static-column DRAM) implement this in `ccrp-sim`.
pub trait MemoryTiming {
    /// Starts a read of `words` consecutive 32-bit words at cycle `now`
    /// (a new random access; bursts never span calls) and pushes the
    /// arrival cycle of each word onto `arrivals` (cleared first).
    fn read_burst(&mut self, words: u32, now: u64, arrivals: &mut Vec<u64>);
}

/// Configuration of the refill engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefillConfig {
    /// CLB capacity in LAT entries (the paper sweeps 4/8/16; default 16).
    pub clb_entries: usize,
    /// Decoder throughput in original bytes per cycle (the paper's
    /// decoder retires 2 by decoding one byte on each clock edge).
    pub decode_bytes_per_cycle: u32,
}

impl Default for RefillConfig {
    fn default() -> Self {
        Self {
            clb_entries: 16,
            decode_bytes_per_cycle: 2,
        }
    }
}

/// What one refill cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefillOutcome {
    /// Cycle at which the expanded line is fully in the cache.
    pub ready_at: u64,
    /// Bytes moved over the instruction-memory bus (block + any LAT
    /// entry read), counting whole words.
    pub bytes_fetched: u32,
    /// Whether the LAT entry was already in the CLB.
    pub clb_hit: bool,
    /// Whether the block was stored uncompressed.
    pub bypass: bool,
}

/// The code-expanding refill engine (cache side of Figure 4).
#[derive(Debug, Clone)]
pub struct RefillEngine {
    clb: Clb,
    decode_rate: u32,
    scratch: Vec<u64>,
}

impl RefillEngine {
    /// Creates an engine.
    ///
    /// # Errors
    ///
    /// [`CcrpError::EmptyClb`] for a zero-entry CLB; a zero decode rate
    /// is also reported as [`CcrpError::BadBlockLength`] (no throughput).
    pub fn new(config: RefillConfig) -> Result<Self, CcrpError> {
        if config.decode_bytes_per_cycle == 0 {
            return Err(CcrpError::BadBlockLength { length: 0 });
        }
        Ok(Self {
            clb: Clb::new(config.clb_entries)?,
            decode_rate: config.decode_bytes_per_cycle,
            scratch: Vec::with_capacity(8),
        })
    }

    /// CLB hit/miss statistics.
    pub fn clb_stats(&self) -> ClbStats {
        self.clb.stats()
    }

    /// Refills the cache line holding CPU address `address` from `image`,
    /// starting at cycle `now`.
    ///
    /// # Errors
    ///
    /// [`CcrpError::AddressOutOfRange`] for addresses outside the program.
    pub fn refill(
        &mut self,
        image: &CompressedImage,
        address: u32,
        now: u64,
        memory: &mut dyn MemoryTiming,
    ) -> Result<RefillOutcome, CcrpError> {
        let location = image.locate(address)?;
        let mut bytes_fetched = 0u32;
        let mut start = now;

        let clb_hit = self.clb.probe(location.lat_index).is_some();
        if !clb_hit {
            // Read the 8-byte LAT entry (2 words) before the block fetch
            // can be addressed.
            memory.read_burst(2, start, &mut self.scratch);
            start = *self.scratch.last().expect("burst returns arrivals");
            bytes_fetched += 8;
            let entry = image
                .lat()
                .entry(location.lat_index)
                .ok_or(CcrpError::AddressOutOfRange { address })?;
            self.clb.insert(location.lat_index, *entry);
        }

        // Whole-word bus: the block occupies the words its bytes span.
        let first_byte = location.physical;
        let last_byte = location.physical + location.stored_len - 1;
        let words = (last_byte / 4) - (first_byte / 4) + 1;
        memory.read_burst(words, start, &mut self.scratch);
        bytes_fetched += words * 4;
        let last_arrival = *self.scratch.last().expect("burst returns arrivals");

        let ready_at = if location.bypass {
            // Raw line: bytes go straight to the cache as they arrive.
            last_arrival
        } else {
            let original = image.original_line(address)?;
            let byte_offset_in_burst = first_byte % 4;
            decode_completion(
                image.code(),
                original,
                byte_offset_in_burst,
                &self.scratch,
                self.decode_rate,
                start,
            )
        };

        Ok(RefillOutcome {
            ready_at,
            bytes_fetched,
            clb_hit,
            bypass: location.bypass,
        })
    }
}

/// Completion cycle of the pipelined decoder.
///
/// The decoder retires `rate` original bytes per cycle but can only
/// consume compressed bits that have arrived from memory. For each output
/// group we find the last *input* byte its symbols need (from the actual
/// code lengths — this is bit exact, not an estimate), map that byte to
/// the word burst that delivers it, and stall accordingly.
///
/// `byte_offset` is the block's starting byte within the first fetched
/// word (nonzero only for byte-aligned images).
pub(crate) fn decode_completion(
    code: &ByteCode,
    original_line: &[u8],
    byte_offset: u32,
    word_arrivals: &[u64],
    rate: u32,
    start: u64,
) -> u64 {
    debug_assert_eq!(original_line.len(), LINE_SIZE as usize);
    let mut t = start;
    let mut bits_consumed: u64 = 0;
    let mut index = 0usize;
    while index < original_line.len() {
        let group_end = (index + rate as usize).min(original_line.len());
        for &byte in &original_line[index..group_end] {
            bits_consumed += u64::from(code.length_of(byte));
        }
        // Last compressed byte needed, relative to the block start.
        let last_input_byte = (bits_consumed.max(1) - 1) / 8;
        let word = (u64::from(byte_offset) + last_input_byte) / 4;
        let arrival = word_arrivals[(word as usize).min(word_arrivals.len() - 1)];
        t = t.max(arrival) + 1;
        index = group_end;
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccrp_compress::{BlockAlignment, ByteHistogram};

    /// Memory that delivers the first word after `first` cycles and one
    /// word per cycle after (burst-EPROM-like), counting calls.
    struct TestMemory {
        first: u64,
        calls: Vec<(u32, u64)>,
    }

    impl TestMemory {
        fn new(first: u64) -> Self {
            Self {
                first,
                calls: Vec::new(),
            }
        }
    }

    impl MemoryTiming for TestMemory {
        fn read_burst(&mut self, words: u32, now: u64, arrivals: &mut Vec<u64>) {
            self.calls.push((words, now));
            arrivals.clear();
            for i in 0..u64::from(words) {
                arrivals.push(now + self.first + i);
            }
        }
    }

    fn test_image(len: usize) -> CompressedImage {
        let mut text = vec![0u8; len];
        for (i, b) in text.iter_mut().enumerate() {
            *b = match i % 4 {
                0 => (i / 7) as u8,
                1 => 0,
                2 => 0x3C,
                _ => 0x24,
            };
        }
        let code = ByteCode::preselected(&ByteHistogram::of(&text)).unwrap();
        CompressedImage::build(0, &text, code, BlockAlignment::Word).unwrap()
    }

    #[test]
    fn decode_floor_is_16_cycles() {
        // With all input available instantly, a 2 B/cycle decoder takes
        // exactly 16 cycles past the start.
        let image = test_image(256);
        let original = image.original_line(0).unwrap();
        let arrivals = vec![0u64; 8];
        let done = decode_completion(image.code(), original, 0, &arrivals, 2, 0);
        assert_eq!(done, 16);
    }

    #[test]
    fn decoder_stalls_on_slow_memory() {
        // One word per 3 cycles (EPROM-like): input arrives at
        // 1.33 B/cycle < 2 B/cycle decode, so memory dominates.
        let image = test_image(256);
        let original = image.original_line(0).unwrap();
        let loc = image.locate(0).unwrap();
        let words = loc.stored_len.div_ceil(4) as usize;
        let arrivals: Vec<u64> = (0..words).map(|i| 3 * (i as u64 + 1)).collect();
        let done = decode_completion(image.code(), original, 0, &arrivals, 2, 0);
        let last = *arrivals.last().unwrap();
        assert!(done > last, "decoder cannot finish before data arrives");
        assert!(done <= last + 16, "at most one full decode pipeline behind");
    }

    #[test]
    fn clb_hit_skips_lat_read() {
        let image = test_image(512);
        let mut engine = RefillEngine::new(RefillConfig::default()).unwrap();
        let mut mem = TestMemory::new(3);

        let miss = engine.refill(&image, 0x00, 0, &mut mem).unwrap();
        assert!(!miss.clb_hit);
        // First call reads the 2-word LAT entry.
        assert_eq!(mem.calls[0].0, 2);
        assert_eq!(miss.bytes_fetched % 4, 0);
        assert!(miss.bytes_fetched >= 8);

        // Line 1 shares LAT entry 0 -> CLB hit, only the block is read.
        let hit = engine.refill(&image, 0x20, 100, &mut mem).unwrap();
        assert!(hit.clb_hit);
        assert_eq!(mem.calls.len(), 3);
        assert!(hit.bytes_fetched < miss.bytes_fetched);
        assert_eq!(engine.clb_stats().hits, 1);
        assert_eq!(engine.clb_stats().misses, 1);
    }

    #[test]
    fn compressed_refill_beats_standard_on_slow_memory() {
        // EPROM-like: 3 cycles per word, no burst advantage. A standard
        // refill is 8 words = 24 cycles. The compressed block is fewer
        // words; even with the decode pipe it should win.
        struct Eprom;
        impl MemoryTiming for Eprom {
            fn read_burst(&mut self, words: u32, now: u64, arrivals: &mut Vec<u64>) {
                arrivals.clear();
                for i in 0..u64::from(words) {
                    arrivals.push(now + 3 * (i + 1));
                }
            }
        }
        let image = test_image(256);
        let mut engine = RefillEngine::new(RefillConfig::default()).unwrap();
        // Warm the CLB so we compare pure line refills.
        let mut mem = Eprom;
        engine.refill(&image, 0, 0, &mut mem).unwrap();
        let outcome = engine.refill(&image, 0, 0, &mut mem).unwrap();
        assert!(outcome.clb_hit);
        let standard_cycles = 24;
        assert!(
            outcome.ready_at < standard_cycles,
            "compressed refill took {} cycles",
            outcome.ready_at
        );
    }

    #[test]
    fn bypass_refills_like_standard() {
        // Build an image whose lines cannot compress (uniform random
        // bytes against a hostile code).
        let mut text = vec![0u8; 256];
        let mut x = 123u32;
        for b in &mut text {
            x = x.wrapping_mul(1_103_515_245).wrapping_add(12_345);
            *b = (x >> 17) as u8;
        }
        // Code trained on completely different, highly skewed data.
        let code = ByteCode::preselected(&ByteHistogram::of(&vec![0u8; 4096])).unwrap();
        let image = CompressedImage::build(0, &text, code, BlockAlignment::Word).unwrap();
        assert!(image.bypass_count() > 0, "expected bypassed lines");
        let mut engine = RefillEngine::new(RefillConfig::default()).unwrap();
        let mut mem = TestMemory::new(3);
        engine.refill(&image, 0, 0, &mut mem).unwrap();
        let outcome = engine.refill(&image, 0, 0, &mut mem).unwrap();
        assert!(outcome.bypass);
        // 8 words, first at 3, then one per cycle -> ready at 10.
        assert_eq!(outcome.ready_at, 10);
        assert_eq!(outcome.bytes_fetched, 32);
    }

    #[test]
    fn out_of_range_is_error() {
        let image = test_image(64);
        let mut engine = RefillEngine::new(RefillConfig::default()).unwrap();
        let mut mem = TestMemory::new(1);
        assert!(matches!(
            engine.refill(&image, 0x1000, 0, &mut mem),
            Err(CcrpError::AddressOutOfRange { .. })
        ));
    }

    #[test]
    fn zero_decode_rate_rejected() {
        assert!(RefillEngine::new(RefillConfig {
            clb_entries: 4,
            decode_bytes_per_cycle: 0
        })
        .is_err());
    }

    #[test]
    fn faster_decoder_is_never_slower() {
        let image = test_image(512);
        for addr in (0..512).step_by(32) {
            let original = image.original_line(addr).unwrap();
            let arrivals: Vec<u64> = (0..8).map(|i| 3 * (i + 1)).collect();
            let d2 = decode_completion(image.code(), original, 0, &arrivals, 2, 0);
            let d4 = decode_completion(image.code(), original, 0, &arrivals, 4, 0);
            let d1 = decode_completion(image.code(), original, 0, &arrivals, 1, 0);
            assert!(d4 <= d2, "4 B/cy must not lose to 2 B/cy");
            assert!(d2 <= d1, "2 B/cy must not lose to 1 B/cy");
        }
    }
}
