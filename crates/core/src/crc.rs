//! CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) for the
//! container format's per-block integrity records.
//!
//! A flipped ROM bit inside a compressed block can decode to a *valid*
//! wrong byte sequence — bounded Huffman streams have no redundancy of
//! their own — so version-2 containers store one CRC-32 per stored block
//! (and one over the header) to turn those silent miscompares into
//! detected errors. Table-driven, std-only, byte-at-a-time: integrity
//! checking runs once per refill, not per bit, so this is plenty fast.

/// The reflected CRC-32 lookup table, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 of `bytes` (IEEE: init `0xFFFF_FFFF`, final XOR `0xFFFF_FFFF`).
///
/// # Examples
///
/// ```
/// // The classic check value for "123456789".
/// assert_eq!(ccrp::crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn single_bit_flip_always_changes_crc() {
        let data: Vec<u8> = (0u16..64).map(|i| (i * 7) as u8).collect();
        let reference = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), reference, "byte {byte} bit {bit}");
            }
        }
    }
}
