//! The Line Address Table (Figures 3 and 6 of the paper).
//!
//! One 8-byte entry per 8 cache lines (256 original bytes / 64
//! instructions): a 24-bit base pointer to the first compressed block of
//! the group, followed by eight 5-bit length records. A record of 0
//! denotes an uncompressed (bypassed) 32-byte block; 1..=31 is the
//! compressed length in bytes. Block addresses are recovered by summing
//! length records onto the base — the CLB's adder tree in hardware.
//!
//! Storage overhead: 8 bytes per 256 program bytes = **3.125%**, the
//! figure quoted in §3.2.

use crate::addr::{LINES_PER_ENTRY, LINE_SIZE};
use crate::error::CcrpError;

/// Compressed-block length records per LAT entry.
pub const RECORDS_PER_ENTRY: usize = LINES_PER_ENTRY as usize;
/// Encoded size of one LAT entry in bytes (24-bit base + 8×5-bit records).
pub const ENTRY_BYTES: usize = 8;

/// One Line Address Table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatEntry {
    base: u32,
    /// Raw 5-bit records (0 = uncompressed 32-byte block).
    records: [u8; RECORDS_PER_ENTRY],
}

impl LatEntry {
    /// Builds an entry from a base pointer and eight *actual* block
    /// lengths in bytes (each 1..=32; 32 means stored uncompressed).
    ///
    /// # Errors
    ///
    /// [`CcrpError::BaseOverflow`] if `base` needs more than 24 bits, or
    /// [`CcrpError::BadBlockLength`] for a length outside 1..=32.
    pub fn new(base: u32, lengths: [u32; RECORDS_PER_ENTRY]) -> Result<Self, CcrpError> {
        if base >= (1 << 24) {
            return Err(CcrpError::BaseOverflow {
                address: u64::from(base),
            });
        }
        let mut records = [0u8; RECORDS_PER_ENTRY];
        for (record, &len) in records.iter_mut().zip(&lengths) {
            *record = match len {
                1..=31 => len as u8,
                32 => 0,
                other => {
                    return Err(CcrpError::BadBlockLength {
                        length: other as usize,
                    })
                }
            };
        }
        Ok(Self { base, records })
    }

    /// The 24-bit pointer to the group's first compressed block.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Actual stored length in bytes of block `index` (record 0 decodes
    /// to 32, per the paper).
    ///
    /// # Panics
    ///
    /// Panics if `index >= 8`.
    pub fn block_length(&self, index: usize) -> u32 {
        match self.records[index] {
            0 => LINE_SIZE,
            n => u32::from(n),
        }
    }

    /// Whether block `index` is stored uncompressed (decoder bypass).
    ///
    /// # Panics
    ///
    /// Panics if `index >= 8`.
    pub fn is_uncompressed(&self, index: usize) -> bool {
        self.records[index] == 0
    }

    /// Physical address of block `index`: the base plus the lengths of
    /// the preceding blocks (the Address Computation Unit of Figure 8).
    ///
    /// # Panics
    ///
    /// Panics if `index >= 8`.
    pub fn block_address(&self, index: usize) -> u32 {
        // panic-ok: documented contract — indices are line-local 0..8.
        assert!(
            index < RECORDS_PER_ENTRY,
            "block index {index} out of range"
        );
        let prefix: u32 = (0..index).map(|i| self.block_length(i)).sum();
        self.base + prefix
    }

    /// Serializes to the 8-byte in-memory format: 3 little-endian base
    /// bytes, then the eight 5-bit records packed MSB-first.
    pub fn encode(&self) -> [u8; ENTRY_BYTES] {
        let mut out = [0u8; ENTRY_BYTES];
        out[0] = self.base as u8;
        out[1] = (self.base >> 8) as u8;
        out[2] = (self.base >> 16) as u8;
        let mut acc: u64 = 0;
        for &r in &self.records {
            acc = (acc << 5) | u64::from(r);
        }
        // 40 bits of records into bytes 3..8.
        for i in 0..5 {
            out[3 + i] = (acc >> (32 - 8 * i)) as u8;
        }
        out
    }

    /// Deserializes the 8-byte in-memory format.
    pub fn decode(bytes: [u8; ENTRY_BYTES]) -> Self {
        let base = u32::from(bytes[0]) | (u32::from(bytes[1]) << 8) | (u32::from(bytes[2]) << 16);
        let mut acc: u64 = 0;
        for &b in &bytes[3..8] {
            acc = (acc << 8) | u64::from(b);
        }
        let mut records = [0u8; RECORDS_PER_ENTRY];
        for (i, record) in records.iter_mut().enumerate() {
            *record = ((acc >> (35 - 5 * i)) & 0x1F) as u8;
        }
        Self { base, records }
    }
}

/// The complete Line Address Table of a compressed program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineAddressTable {
    entries: Vec<LatEntry>,
}

impl LineAddressTable {
    /// Wraps a built entry list.
    pub(crate) fn new(entries: Vec<LatEntry>) -> Self {
        Self { entries }
    }

    /// The entry for `lat_index`, or `None` past the end of the program.
    pub fn entry(&self, lat_index: u32) -> Option<&LatEntry> {
        self.entries.get(lat_index as usize)
    }

    /// Overwrites the entry at `index` (fault injection for
    /// [`CompressedImage::corrupt_lat_length`][crate::CompressedImage::corrupt_lat_length]).
    pub(crate) fn set_entry(&mut self, index: usize, entry: LatEntry) {
        self.entries[index] = entry;
    }

    /// Number of entries (one per 256 original program bytes).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True for an empty program.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Bytes the table occupies in instruction memory.
    pub fn storage_bytes(&self) -> u32 {
        (self.entries.len() * ENTRY_BYTES) as u32
    }

    /// Parses a table serialized by [`encode`](Self::encode).
    ///
    /// # Errors
    ///
    /// [`crate::CcrpError::BadContainer`] if `bytes` is not a whole
    /// number of entries.
    pub fn from_encoded(bytes: &[u8]) -> Result<Self, crate::CcrpError> {
        if !bytes.len().is_multiple_of(ENTRY_BYTES) {
            return Err(crate::CcrpError::BadContainer {
                what: "LAT section is not a whole number of entries",
            });
        }
        let entries = bytes
            .chunks_exact(ENTRY_BYTES)
            .map(|chunk| {
                let mut raw = [0u8; ENTRY_BYTES];
                raw.copy_from_slice(chunk);
                LatEntry::decode(raw)
            })
            .collect();
        Ok(Self { entries })
    }

    /// Serializes every entry, in index order, to the in-memory layout.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.entries.len() * ENTRY_BYTES);
        for e in &self.entries {
            out.extend_from_slice(&e.encode());
        }
        out
    }

    /// Iterates entries in index order.
    pub fn iter(&self) -> impl Iterator<Item = &LatEntry> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::needless_range_loop)]
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn addresses_are_prefix_sums() {
        let entry = LatEntry::new(0x100, [10, 32, 5, 31, 1, 12, 8, 20]).unwrap();
        assert_eq!(entry.block_address(0), 0x100);
        assert_eq!(entry.block_address(1), 0x10A);
        assert_eq!(entry.block_address(2), 0x10A + 32);
        assert_eq!(
            entry.block_address(7),
            0x100 + 10 + 32 + 5 + 31 + 1 + 12 + 8
        );
        assert!(entry.is_uncompressed(1));
        assert!(!entry.is_uncompressed(0));
        assert_eq!(entry.block_length(1), 32);
    }

    #[test]
    fn rejects_invalid() {
        assert!(matches!(
            LatEntry::new(1 << 24, [1; 8]),
            Err(CcrpError::BaseOverflow { .. })
        ));
        assert!(matches!(
            LatEntry::new(0, [0, 1, 1, 1, 1, 1, 1, 1]),
            Err(CcrpError::BadBlockLength { length: 0 })
        ));
        assert!(matches!(
            LatEntry::new(0, [33, 1, 1, 1, 1, 1, 1, 1]),
            Err(CcrpError::BadBlockLength { length: 33 })
        ));
    }

    #[test]
    fn entry_is_eight_bytes_and_overhead_matches_paper() {
        let entry = LatEntry::new(0, [1; 8]).unwrap();
        assert_eq!(entry.encode().len(), 8);
        // 8 bytes per 256 program bytes = 3.125%.
        assert_eq!(8.0 / 256.0, 0.03125);
    }

    proptest! {
        #[test]
        fn encode_decode_roundtrip(
            base in 0u32..(1 << 24),
            lengths in proptest::array::uniform8(1u32..=32),
        ) {
            let entry = LatEntry::new(base, lengths).unwrap();
            let back = LatEntry::decode(entry.encode());
            prop_assert_eq!(back, entry);
            for i in 0..8 {
                prop_assert_eq!(back.block_length(i), lengths[i]);
            }
        }

        #[test]
        fn block_addresses_monotone(
            base in 0u32..(1 << 20),
            lengths in proptest::array::uniform8(1u32..=32),
        ) {
            let entry = LatEntry::new(base, lengths).unwrap();
            for i in 1..8 {
                prop_assert!(entry.block_address(i) > entry.block_address(i - 1));
                prop_assert_eq!(
                    entry.block_address(i),
                    entry.block_address(i - 1) + entry.block_length(i - 1)
                );
            }
        }
    }
}
