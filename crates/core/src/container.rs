//! On-disk container for compressed program images.
//!
//! What an embedded build flow burns into the instruction ROM plus the
//! metadata a loader/debugger needs. Layout (all integers little-endian,
//! as on the DECstation):
//!
//! ```text
//! offset  size  field
//! 0       4     magic "CCRP"
//! 4       2     format version (1 or 2)
//! 6       1     alignment (0 = byte, 1 = word)
//! 7       1     codec id (0 = byte-Huffman, 1 = positional, 2 = LZW)
//! 8       4     text base (CPU address)
//! 12      4     original text bytes (multiple of 32)
//! 16      4     packed block bytes
//! 20      4     LAT base (physical address of the table)
//! 24      256   code table: canonical length of each byte value
//! 280     —     codec parameters (positional: 3×256 more length tables)
//! …       —     packed compressed blocks
//! …       —     encoded LAT (8 bytes per entry)
//! ```
//!
//! Byte 7 was written as a reserved zero before codecs existed, which is
//! exactly the byte-Huffman codec id — every pre-codec container still
//! loads, version-aware, as byte-Huffman with an empty codec-parameter
//! section. Byte-Huffman and LZW containers carry no codec parameters,
//! so their layout is bit-identical to the pre-codec format.
//!
//! Version 2 appends an integrity section after the LAT — a CRC-32 over
//! the header and codec parameters, then one CRC-32 per stored block:
//!
//! ```text
//! …       4     header CRC-32 (over bytes 0..280+params)
//! …       4×N   per-block CRC-32, one per cache line
//! ```
//!
//! Everything before the integrity section is laid out identically, so a
//! v2 container is a v1 container plus trailing records and version-1
//! readers of old images keep working. The per-block CRCs are what turn
//! a flipped ROM bit that still decodes into *valid wrong bytes* — a
//! silent miscompare — into a detected [`CcrpError::CrcMismatch`].
//!
//! Deserialization rebuilds the original text by running every block
//! through the decoder, so a loaded image is verified by construction.

use ccrp_compress::{codec_from_container, BlockAlignment, CodecId};

use crate::crc::crc32;
use crate::error::CcrpError;
use crate::fault::ContainerLayout;
use crate::image::CompressedImage;
use crate::lat::ENTRY_BYTES;

const MAGIC: &[u8; 4] = b"CCRP";
const VERSION: u16 = 1;
const VERSION_V2: u16 = 2;
const HEADER_BYTES: usize = 280;

/// Parses the section byte-ranges out of a serialized container without
/// decoding any block (the basis for [`ContainerLayout::of`]).
pub(crate) fn layout_of(bytes: &[u8]) -> Result<ContainerLayout, CcrpError> {
    let bad = |what: &'static str| CcrpError::BadContainer { what };
    if bytes.len() < HEADER_BYTES {
        return Err(bad("shorter than the fixed header"));
    }
    if &bytes[0..4] != MAGIC {
        return Err(bad("magic is not \"CCRP\""));
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != VERSION && version != VERSION_V2 {
        return Err(bad("unsupported format version"));
    }
    let codec = CodecId::from_byte(bytes[7]).ok_or_else(|| bad("unknown codec id"))?;
    let word =
        |at: usize| u32::from_le_bytes([bytes[at], bytes[at + 1], bytes[at + 2], bytes[at + 3]]);
    let original_bytes = word(12) as usize;
    let block_bytes = word(16) as usize;
    if !original_bytes.is_multiple_of(32) {
        return Err(bad("original size is not a whole number of lines"));
    }
    let lines = original_bytes / 32;
    let lat_entries = lines.div_ceil(crate::lat::RECORDS_PER_ENTRY);
    // The header fields are attacker-controlled: every section end is
    // computed with checked arithmetic and rejected against the actual
    // buffer *before* any caller trusts a range or sizes an allocation,
    // so a pathological header can neither wrap the offsets (32-bit
    // hosts) nor drive a `Vec::with_capacity` beyond the input size.
    let oversize = || bad("header-declared sizes exceed the container");
    let bounded = |end: usize| {
        if end > bytes.len() {
            Err(oversize())
        } else {
            Ok(end)
        }
    };
    let params_end = bounded(
        HEADER_BYTES
            .checked_add(codec.params_len())
            .ok_or_else(oversize)?,
    )?;
    let blocks_end = bounded(params_end.checked_add(block_bytes).ok_or_else(oversize)?)?;
    let lat_bytes = lat_entries.checked_mul(ENTRY_BYTES).ok_or_else(oversize)?;
    let lat_end = bounded(blocks_end.checked_add(lat_bytes).ok_or_else(oversize)?)?;
    let crc_bytes = if version == VERSION_V2 {
        lines
            .checked_mul(4)
            .and_then(|records| records.checked_add(4))
            .ok_or_else(oversize)?
    } else {
        0
    };
    let crc_end = bounded(lat_end.checked_add(crc_bytes).ok_or_else(oversize)?)?;
    let blocks = params_end..blocks_end;
    let lat = blocks_end..lat_end;
    let crc = lat_end..crc_end;
    if bytes.len() != crc.end {
        return Err(bad("container length disagrees with header"));
    }
    Ok(ContainerLayout {
        total: crc.end,
        header: 0..24,
        code_table: 24..HEADER_BYTES,
        codec_params: HEADER_BYTES..params_end,
        codec,
        blocks,
        lat,
        crc,
        version,
    })
}

impl CompressedImage {
    /// Serializes the image to the container format. The codec id lands
    /// in header byte 7 (zero — the historical reserved value — for the
    /// default byte-Huffman codec, so pre-codec readers and images
    /// interoperate).
    pub fn to_bytes(&self) -> Vec<u8> {
        let blocks = self.packed_blocks();
        let lat = self.lat().encode();
        let params = self.codec().extra_params();
        let mut out = Vec::with_capacity(HEADER_BYTES + params.len() + blocks.len() + lat.len());
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.push(match self.alignment() {
            BlockAlignment::Byte => 0,
            BlockAlignment::Word => 1,
        });
        out.push(self.codec().id().byte());
        out.extend_from_slice(&self.text_base().to_le_bytes());
        out.extend_from_slice(&self.original_bytes().to_le_bytes());
        out.extend_from_slice(&(blocks.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.lat_base().to_le_bytes());
        out.extend_from_slice(&self.codec().header_table());
        out.extend_from_slice(&params);
        out.extend_from_slice(&blocks);
        out.extend_from_slice(&lat);
        out
    }

    /// Serializes the image to the version-2 container format: identical
    /// to [`to_bytes`](Self::to_bytes) up through the LAT, with the
    /// header CRC-32 (covering the fixed header plus any codec
    /// parameters) and per-block CRC-32 records appended.
    pub fn to_bytes_v2(&self) -> Vec<u8> {
        let mut out = self.to_bytes();
        out[4..6].copy_from_slice(&VERSION_V2.to_le_bytes());
        let protected = HEADER_BYTES + self.codec().id().params_len();
        out.extend_from_slice(&crc32(&out[..protected]).to_le_bytes());
        for record in self.block_crc_records() {
            out.extend_from_slice(&record.to_le_bytes());
        }
        out
    }

    /// Parses a container produced by [`to_bytes`](Self::to_bytes) or
    /// [`to_bytes_v2`](Self::to_bytes_v2), decompressing every block to
    /// rebuild (and thereby verify) the original program text. Version-2
    /// containers additionally have the header and every stored block
    /// checked against their CRC-32 records, and the loaded image keeps
    /// those records for runtime integrity checks.
    ///
    /// # Errors
    ///
    /// [`CcrpError::BadContainer`] on malformed input (wrong magic,
    /// truncated sections, inconsistent sizes, header CRC mismatch),
    /// [`CcrpError::CrcMismatch`] when a stored block fails its CRC
    /// record, and decode errors on corrupt block data.
    pub fn from_bytes(bytes: &[u8]) -> Result<CompressedImage, CcrpError> {
        let bad = |what: &'static str| CcrpError::BadContainer { what };
        let layout = layout_of(bytes)?;
        let alignment = match bytes[6] {
            0 => BlockAlignment::Byte,
            1 => BlockAlignment::Word,
            _ => return Err(bad("unknown alignment code")),
        };
        let word = |at: usize| {
            u32::from_le_bytes([bytes[at], bytes[at + 1], bytes[at + 2], bytes[at + 3]])
        };
        let text_base = word(8);
        let original_bytes = word(12) as usize;
        let lat_base = word(20);
        if !text_base.is_multiple_of(crate::addr::BYTES_PER_ENTRY) {
            return Err(bad("text base not aligned to a 256-byte LAT group"));
        }
        let lines = original_bytes / 32;

        let block_crcs = if layout.version == VERSION_V2 {
            let crc_section = &bytes[layout.crc.clone()];
            if crc32(&bytes[..layout.codec_params.end]) != word(layout.crc.start) {
                return Err(bad("header CRC mismatch"));
            }
            Some(
                crc_section[4..]
                    .chunks_exact(4)
                    .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                    .collect::<Vec<u32>>(),
            )
        } else {
            None
        };

        let mut table = [0u8; 256];
        table.copy_from_slice(&bytes[24..HEADER_BYTES]);
        let codec =
            codec_from_container(layout.codec, &table, &bytes[layout.codec_params.clone()])?;

        CompressedImage::from_parts(
            text_base,
            alignment,
            codec,
            &bytes[layout.blocks.clone()],
            &bytes[layout.lat.clone()],
            lines,
            lat_base,
            block_crcs,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccrp_compress::{ByteCode, ByteHistogram};

    fn sample_image(alignment: BlockAlignment) -> CompressedImage {
        let mut text = vec![0u8; 1024];
        let mut x = 9u32;
        for (i, b) in text.iter_mut().enumerate() {
            x = x.wrapping_mul(48271);
            *b = if i % 3 == 0 { (x >> 27) as u8 } else { 0x24 };
        }
        let code = ByteCode::preselected(&ByteHistogram::of(&text)).expect("code");
        CompressedImage::build(0x400, &text, code, alignment).expect("builds")
    }

    #[test]
    fn roundtrip_both_alignments() {
        for alignment in [BlockAlignment::Word, BlockAlignment::Byte] {
            let image = sample_image(alignment);
            let bytes = image.to_bytes();
            let back = CompressedImage::from_bytes(&bytes).expect("parses");
            assert_eq!(back.text_base(), image.text_base());
            assert_eq!(back.original_bytes(), image.original_bytes());
            assert_eq!(back.alignment(), image.alignment());
            assert_eq!(back.lat_base(), image.lat_base());
            assert_eq!(back.compressed_code_bytes(), image.compressed_code_bytes());
            back.verify().expect("loaded image verifies");
            // Bit-identical re-serialization.
            assert_eq!(back.to_bytes(), bytes);
            // Identical expansion of every line.
            for line in 0..image.line_count() {
                let addr = image.text_base() + line as u32 * 32;
                assert_eq!(
                    back.expand_line(addr).unwrap(),
                    image.expand_line(addr).unwrap()
                );
            }
        }
    }

    #[test]
    fn rejects_corruption() {
        let image = sample_image(BlockAlignment::Word);
        let good = image.to_bytes();

        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            CompressedImage::from_bytes(&bad_magic),
            Err(CcrpError::BadContainer { .. })
        ));

        let mut bad_version = good.clone();
        bad_version[4] = 0xFF;
        assert!(CompressedImage::from_bytes(&bad_version).is_err());

        let truncated = &good[..good.len() - 1];
        assert!(CompressedImage::from_bytes(truncated).is_err());

        assert!(CompressedImage::from_bytes(&good[..10]).is_err());

        // Flipping a bit inside a compressed block must surface as a
        // decode error or a changed (non-verifying) image — never a
        // silently wrong success that still matches the original.
        let mut bad_block = good.clone();
        bad_block[HEADER_BYTES + 3] ^= 0x40;
        match CompressedImage::from_bytes(&bad_block) {
            Err(_) => {}
            Ok(loaded) => {
                let differs = (0..image.line_count()).any(|line| {
                    let addr = image.text_base() + line as u32 * 32;
                    loaded.expand_line(addr).ok() != image.expand_line(addr).ok()
                });
                assert!(differs, "corruption must not load back identical");
            }
        }
    }

    /// A minimal syntactically plausible header over `body` extra bytes,
    /// with attacker-chosen size fields.
    fn hostile_header(original_bytes: u32, block_bytes: u32, version: u16, body: usize) -> Vec<u8> {
        let mut bytes = vec![0u8; HEADER_BYTES + body];
        bytes[0..4].copy_from_slice(MAGIC);
        bytes[4..6].copy_from_slice(&version.to_le_bytes());
        bytes[6] = 1; // word alignment
        bytes[12..16].copy_from_slice(&original_bytes.to_le_bytes());
        bytes[16..20].copy_from_slice(&block_bytes.to_le_bytes());
        bytes
    }

    #[test]
    fn rejects_adversarial_length_fields_before_allocation() {
        // Sizes wildly exceeding the buffer must bounce off the bounds
        // check in `layout_of` — the parse never reaches the point where
        // header-declared line counts size an allocation.
        let cases = [
            // Huge block section on a tiny container.
            hostile_header(32, u32::MAX, VERSION, 8),
            // Huge line count (LAT + v2 CRC sections follow from it).
            hostile_header(u32::MAX - 31, 0, VERSION, 8),
            hostile_header(u32::MAX - 31, 0, VERSION_V2, 8),
            // Both maxed: on 32-bit hosts the unchecked sum would wrap.
            hostile_header(0xFFFF_FFE0, u32::MAX, VERSION_V2, 0),
            // Plausible-looking sizes that still overshoot the buffer.
            hostile_header(4096, 4096, VERSION, 64),
        ];
        for bytes in cases {
            assert!(
                matches!(
                    layout_of(&bytes),
                    Err(CcrpError::BadContainer {
                        what: "header-declared sizes exceed the container"
                    })
                ),
                "pathological header must be rejected by the bounds check"
            );
            assert!(CompressedImage::from_bytes(&bytes).is_err());
        }
    }

    #[test]
    fn rejects_undersized_declared_sections() {
        // Sections that fit the buffer but do not exactly tile it are a
        // length disagreement, not an oversize.
        let bytes = hostile_header(32, 4, VERSION, 100);
        assert!(matches!(
            layout_of(&bytes),
            Err(CcrpError::BadContainer {
                what: "container length disagrees with header"
            })
        ));
    }

    #[test]
    fn v2_roundtrip_carries_crcs() {
        let image = sample_image(BlockAlignment::Word);
        let v1 = image.to_bytes();
        let v2 = image.to_bytes_v2();
        // v2 is v1 (with a bumped version field) plus the CRC section.
        assert_eq!(v2.len(), v1.len() + 4 + 4 * image.line_count());
        assert_eq!(&v2[6..v1.len()], &v1[6..]);
        let back = CompressedImage::from_bytes(&v2).expect("v2 parses");
        back.verify().expect("loaded v2 image verifies");
        assert!(back.block_crcs().is_some());
        assert_eq!(back.to_bytes_v2(), v2);
        // Old (v1) images still load, just without integrity records.
        assert!(CompressedImage::from_bytes(&v1)
            .expect("v1 parses")
            .block_crcs()
            .is_none());
    }

    #[test]
    fn v2_detects_block_corruption_v1_may_not() {
        let image = sample_image(BlockAlignment::Word);
        let mut v2 = image.to_bytes_v2();
        // Stomp the final byte of the packed section: trailing alignment
        // padding, which the bit-serial decoder never reads — only the
        // CRC record can see this one.
        let offset = HEADER_BYTES + image.compressed_code_bytes() as usize - 1;
        v2[offset] ^= 0xFF;
        assert!(matches!(
            CompressedImage::from_bytes(&v2),
            Err(CcrpError::CrcMismatch { .. })
        ));
    }

    #[test]
    fn v2_detects_header_corruption() {
        let image = sample_image(BlockAlignment::Word);
        let mut v2 = image.to_bytes_v2();
        // Flip a high bit of the text base: the result is still
        // 256-aligned, so only the header CRC can flag it.
        v2[11] ^= 0x40;
        assert!(matches!(
            CompressedImage::from_bytes(&v2),
            Err(CcrpError::BadContainer {
                what: "header CRC mismatch"
            })
        ));
    }

    #[test]
    fn rejects_misaligned_text_base() {
        let image = sample_image(BlockAlignment::Word);
        let mut bytes = image.to_bytes();
        bytes[8] = 0x20; // text base 0x420: not 256-aligned
        assert!(matches!(
            CompressedImage::from_bytes(&bytes),
            Err(CcrpError::BadContainer { .. })
        ));
    }
}
