//! On-disk container for compressed program images.
//!
//! What an embedded build flow burns into the instruction ROM plus the
//! metadata a loader/debugger needs. Layout (all integers little-endian,
//! as on the DECstation):
//!
//! ```text
//! offset  size  field
//! 0       4     magic "CCRP"
//! 4       2     format version (1)
//! 6       1     alignment (0 = byte, 1 = word)
//! 7       1     reserved (0)
//! 8       4     text base (CPU address)
//! 12      4     original text bytes (multiple of 32)
//! 16      4     packed block bytes
//! 20      4     LAT base (physical address of the table)
//! 24      256   code table: canonical length of each byte value
//! 280     —     packed compressed blocks
//! …       —     encoded LAT (8 bytes per entry)
//! ```
//!
//! Deserialization rebuilds the original text by running every block
//! through the decoder, so a loaded image is verified by construction.

use ccrp_compress::{BlockAlignment, ByteCode};

use crate::error::CcrpError;
use crate::image::CompressedImage;
use crate::lat::ENTRY_BYTES;

const MAGIC: &[u8; 4] = b"CCRP";
const VERSION: u16 = 1;
const HEADER_BYTES: usize = 280;

impl CompressedImage {
    /// Serializes the image to the container format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let blocks = self.packed_blocks();
        let lat = self.lat().encode();
        let mut out = Vec::with_capacity(HEADER_BYTES + blocks.len() + lat.len());
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.push(match self.alignment() {
            BlockAlignment::Byte => 0,
            BlockAlignment::Word => 1,
        });
        out.push(0);
        out.extend_from_slice(&self.text_base().to_le_bytes());
        out.extend_from_slice(&self.original_bytes().to_le_bytes());
        out.extend_from_slice(&(blocks.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.lat_base().to_le_bytes());
        out.extend_from_slice(&self.code().lengths()[..]);
        out.extend_from_slice(&blocks);
        out.extend_from_slice(&lat);
        out
    }

    /// Parses a container produced by [`to_bytes`](Self::to_bytes),
    /// decompressing every block to rebuild (and thereby verify) the
    /// original program text.
    ///
    /// # Errors
    ///
    /// [`CcrpError::BadContainer`] on malformed input (wrong magic,
    /// truncated sections, inconsistent sizes) and decode errors on
    /// corrupt block data.
    pub fn from_bytes(bytes: &[u8]) -> Result<CompressedImage, CcrpError> {
        let bad = |what: &'static str| CcrpError::BadContainer { what };
        if bytes.len() < HEADER_BYTES {
            return Err(bad("shorter than the fixed header"));
        }
        if &bytes[0..4] != MAGIC {
            return Err(bad("magic is not \"CCRP\""));
        }
        let version = u16::from_le_bytes([bytes[4], bytes[5]]);
        if version != VERSION {
            return Err(bad("unsupported format version"));
        }
        let alignment = match bytes[6] {
            0 => BlockAlignment::Byte,
            1 => BlockAlignment::Word,
            _ => return Err(bad("unknown alignment code")),
        };
        let word = |at: usize| {
            u32::from_le_bytes([bytes[at], bytes[at + 1], bytes[at + 2], bytes[at + 3]])
        };
        let text_base = word(8);
        let original_bytes = word(12) as usize;
        let block_bytes = word(16) as usize;
        let lat_base = word(20);
        if !original_bytes.is_multiple_of(32) {
            return Err(bad("original size is not a whole number of lines"));
        }
        let mut lengths = [0u8; 256];
        lengths.copy_from_slice(&bytes[24..280]);
        let code = ByteCode::from_lengths(lengths)?;

        let lines = original_bytes / 32;
        let lat_entries = lines.div_ceil(crate::lat::RECORDS_PER_ENTRY);
        let expected = HEADER_BYTES + block_bytes + lat_entries * ENTRY_BYTES;
        if bytes.len() != expected {
            return Err(bad("container length disagrees with header"));
        }
        let blocks = &bytes[HEADER_BYTES..HEADER_BYTES + block_bytes];
        let lat_bytes = &bytes[HEADER_BYTES + block_bytes..];

        CompressedImage::from_parts(
            text_base, alignment, code, blocks, lat_bytes, lines, lat_base,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccrp_compress::ByteHistogram;

    fn sample_image(alignment: BlockAlignment) -> CompressedImage {
        let mut text = vec![0u8; 1024];
        let mut x = 9u32;
        for (i, b) in text.iter_mut().enumerate() {
            x = x.wrapping_mul(48271);
            *b = if i % 3 == 0 { (x >> 27) as u8 } else { 0x24 };
        }
        let code = ByteCode::preselected(&ByteHistogram::of(&text)).expect("code");
        CompressedImage::build(0x400, &text, code, alignment).expect("builds")
    }

    #[test]
    fn roundtrip_both_alignments() {
        for alignment in [BlockAlignment::Word, BlockAlignment::Byte] {
            let image = sample_image(alignment);
            let bytes = image.to_bytes();
            let back = CompressedImage::from_bytes(&bytes).expect("parses");
            assert_eq!(back.text_base(), image.text_base());
            assert_eq!(back.original_bytes(), image.original_bytes());
            assert_eq!(back.alignment(), image.alignment());
            assert_eq!(back.lat_base(), image.lat_base());
            assert_eq!(back.compressed_code_bytes(), image.compressed_code_bytes());
            back.verify().expect("loaded image verifies");
            // Bit-identical re-serialization.
            assert_eq!(back.to_bytes(), bytes);
            // Identical expansion of every line.
            for line in 0..image.line_count() {
                let addr = image.text_base() + line as u32 * 32;
                assert_eq!(
                    back.expand_line(addr).unwrap(),
                    image.expand_line(addr).unwrap()
                );
            }
        }
    }

    #[test]
    fn rejects_corruption() {
        let image = sample_image(BlockAlignment::Word);
        let good = image.to_bytes();

        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            CompressedImage::from_bytes(&bad_magic),
            Err(CcrpError::BadContainer { .. })
        ));

        let mut bad_version = good.clone();
        bad_version[4] = 0xFF;
        assert!(CompressedImage::from_bytes(&bad_version).is_err());

        let truncated = &good[..good.len() - 1];
        assert!(CompressedImage::from_bytes(truncated).is_err());

        assert!(CompressedImage::from_bytes(&good[..10]).is_err());

        // Flipping a bit inside a compressed block must surface as a
        // decode error or a changed (non-verifying) image — never a
        // silently wrong success that still matches the original.
        let mut bad_block = good.clone();
        bad_block[HEADER_BYTES + 3] ^= 0x40;
        match CompressedImage::from_bytes(&bad_block) {
            Err(_) => {}
            Ok(loaded) => {
                let differs = (0..image.line_count()).any(|line| {
                    let addr = image.text_base() + line as u32 * 32;
                    loaded.expand_line(addr).ok() != image.expand_line(addr).ok()
                });
                assert!(differs, "corruption must not load back identical");
            }
        }
    }
}
