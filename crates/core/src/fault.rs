//! Seeded, deterministic fault injection for container images.
//!
//! CCRP stores its instruction stream compressed in ROM, so a single
//! flipped EPROM bit can corrupt a variable-length Huffman stream, a LAT
//! length record, the code table, or the container header. This module
//! generalizes the ad-hoc
//! [`corrupt_lat_length`](crate::CompressedImage::corrupt_lat_length)
//! injector into a campaign API: a [`FaultInjector`] seeded with a
//! `u64` produces [`FaultPlan`]s that flip bits or stomp bytes in a
//! chosen [`FaultRegion`] of a serialized container, and every plan is a
//! pure function of `(seed, layout, region, count)` — campaigns are
//! reproducible bit-for-bit across runs and worker counts.

use std::ops::Range;

use ccrp_compress::CodecId;

use crate::error::CcrpError;

/// A region of the serialized container a fault can land in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultRegion {
    /// The 24-byte fixed header (magic, version, bases, sizes).
    Header,
    /// The 256-byte Huffman code-length table.
    CodeTable,
    /// The packed compressed blocks.
    Blocks,
    /// The encoded Line Address Table.
    Lat,
    /// The CRC section (version-2 containers only; empty on v1).
    Crc,
    /// Anywhere in the container.
    Any,
}

impl FaultRegion {
    /// Every region, in container order.
    pub const ALL: [FaultRegion; 6] = [
        FaultRegion::Header,
        FaultRegion::CodeTable,
        FaultRegion::Blocks,
        FaultRegion::Lat,
        FaultRegion::Crc,
        FaultRegion::Any,
    ];

    /// A stable lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            FaultRegion::Header => "header",
            FaultRegion::CodeTable => "code-table",
            FaultRegion::Blocks => "blocks",
            FaultRegion::Lat => "lat",
            FaultRegion::Crc => "crc",
            FaultRegion::Any => "any",
        }
    }

    /// The byte range this region occupies in `layout`.
    pub fn range(self, layout: &ContainerLayout) -> Range<usize> {
        match self {
            FaultRegion::Header => layout.header.clone(),
            // The codec-parameter section (when present) is more code
            // table, so the region spans both.
            FaultRegion::CodeTable => layout.code_table.start..layout.codec_params.end,
            FaultRegion::Blocks => layout.blocks.clone(),
            FaultRegion::Lat => layout.lat.clone(),
            FaultRegion::Crc => layout.crc.clone(),
            FaultRegion::Any => 0..layout.total,
        }
    }
}

/// How a fault mutates its target byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// XOR one bit (a radiation- or wear-induced single-event upset).
    BitFlip {
        /// Bit index 0..8 within the byte.
        bit: u8,
    },
    /// Overwrite the whole byte (a stuck or misprogrammed ROM cell).
    ByteStomp {
        /// The replacement value.
        value: u8,
    },
}

/// One planned mutation of a container byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// Absolute byte offset into the serialized container.
    pub offset: usize,
    /// The mutation applied there.
    pub kind: FaultKind,
    /// The region the offset was drawn from.
    pub region: FaultRegion,
}

/// Byte ranges of each section of a serialized container, parsed from
/// its header. Computed once from the pristine bytes; plans built
/// against it are then applied to corrupted copies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContainerLayout {
    /// Total container size in bytes.
    pub total: usize,
    /// The fixed header fields (magic through LAT base).
    pub header: Range<usize>,
    /// The 256-byte code-length table.
    pub code_table: Range<usize>,
    /// Extra codec parameters following the fixed header (empty for
    /// codecs that fit their tables in `code_table`).
    pub codec_params: Range<usize>,
    /// The line codec the container's blocks are encoded with.
    pub codec: CodecId,
    /// The packed compressed blocks.
    pub blocks: Range<usize>,
    /// The encoded LAT.
    pub lat: Range<usize>,
    /// The CRC section (empty for version-1 containers).
    pub crc: Range<usize>,
    /// The container format version (1 or 2).
    pub version: u16,
}

/// A deterministic pseudo-random generator (SplitMix64). Hand-rolled so
/// `ccrp-core` needs no RNG dependency; statistical quality is ample for
/// spreading fault offsets.
#[derive(Debug, Clone)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound > 0`) by multiply-shift.
    fn below(&mut self, bound: usize) -> usize {
        ((u128::from(self.next_u64()) * bound as u128) >> 64) as usize
    }
}

/// A seeded generator of [`FaultPlan`]s.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    rng: SplitMix64,
}

impl FaultInjector {
    /// Creates an injector; equal seeds produce equal plan sequences.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: SplitMix64(seed),
        }
    }

    /// Draws a plan of `count` faults inside `region`. An empty region
    /// (e.g. [`FaultRegion::Crc`] on a version-1 container) yields an
    /// empty plan — there is nothing there to corrupt.
    pub fn plan(
        &mut self,
        layout: &ContainerLayout,
        region: FaultRegion,
        count: usize,
    ) -> FaultPlan {
        let range = region.range(layout);
        let mut faults = Vec::with_capacity(count);
        if range.is_empty() {
            return FaultPlan { faults };
        }
        for _ in 0..count {
            let offset = range.start + self.rng.below(range.end - range.start);
            let kind = if self.rng.next_u64() & 1 == 0 {
                FaultKind::BitFlip {
                    bit: (self.rng.next_u64() & 7) as u8,
                }
            } else {
                FaultKind::ByteStomp {
                    value: (self.rng.next_u64() & 0xFF) as u8,
                }
            };
            faults.push(Fault {
                offset,
                kind,
                region,
            });
        }
        FaultPlan { faults }
    }

    /// Draws a plan of `count` faults anywhere in a raw `len`-byte
    /// buffer, for corrupting artifacts that are not containers —
    /// checkpoint files, report blobs. Faults are tagged
    /// [`FaultRegion::Any`]; an empty buffer yields an empty plan.
    pub fn plan_raw(&mut self, len: usize, count: usize) -> FaultPlan {
        let mut faults = Vec::with_capacity(count);
        if len == 0 {
            return FaultPlan { faults };
        }
        for _ in 0..count {
            let offset = self.rng.below(len);
            let kind = if self.rng.next_u64() & 1 == 0 {
                FaultKind::BitFlip {
                    bit: (self.rng.next_u64() & 7) as u8,
                }
            } else {
                FaultKind::ByteStomp {
                    value: (self.rng.next_u64() & 0xFF) as u8,
                }
            };
            faults.push(Fault {
                offset,
                kind,
                region: FaultRegion::Any,
            });
        }
        FaultPlan { faults }
    }
}

/// A deterministic list of byte mutations to apply to container bytes.
///
/// # Examples
///
/// ```
/// use ccrp::{CompressedImage, ContainerLayout, FaultPlan, FaultRegion};
/// use ccrp_compress::{BlockAlignment, ByteCode, ByteHistogram};
///
/// let text = vec![0u8; 512];
/// let code = ByteCode::preselected(&ByteHistogram::of(&text))?;
/// let image = CompressedImage::build(0, &text, code, BlockAlignment::Word)?;
/// let pristine = image.to_bytes();
/// let layout = ContainerLayout::of(&pristine)?;
/// let plan = FaultPlan::seeded(42, &layout, FaultRegion::Blocks, 2);
/// let mut corrupt = pristine.clone();
/// plan.apply(&mut corrupt);
/// // Same seed, same plan, same corruption — campaigns are reproducible.
/// let mut again = pristine.clone();
/// FaultPlan::seeded(42, &layout, FaultRegion::Blocks, 2).apply(&mut again);
/// assert_eq!(corrupt, again);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// Convenience constructor: a fresh [`FaultInjector`] seeded with
    /// `seed`, asked for one plan.
    pub fn seeded(
        seed: u64,
        layout: &ContainerLayout,
        region: FaultRegion,
        count: usize,
    ) -> FaultPlan {
        FaultInjector::new(seed).plan(layout, region, count)
    }

    /// The planned faults.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Applies every fault to `bytes`, returning how many actually
    /// changed a byte (a bit flip always does; a stomp whose value
    /// equals the original is a no-op and classified `benign` by
    /// campaigns). Offsets beyond `bytes` are skipped.
    pub fn apply(&self, bytes: &mut [u8]) -> usize {
        let mut changed = 0;
        for fault in &self.faults {
            let Some(byte) = bytes.get_mut(fault.offset) else {
                continue;
            };
            let before = *byte;
            match fault.kind {
                FaultKind::BitFlip { bit } => *byte ^= 1 << bit,
                FaultKind::ByteStomp { value } => *byte = value,
            }
            if *byte != before {
                changed += 1;
            }
        }
        changed
    }
}

impl ContainerLayout {
    /// Parses the section ranges out of serialized container bytes.
    ///
    /// # Errors
    ///
    /// [`CcrpError::BadContainer`] when `bytes` is not a structurally
    /// well-formed container (this is meant for the *pristine* image a
    /// campaign perturbs, not for corrupted copies).
    pub fn of(bytes: &[u8]) -> Result<ContainerLayout, CcrpError> {
        crate::container::layout_of(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::CompressedImage;
    use ccrp_compress::{BlockAlignment, ByteCode, ByteHistogram};

    fn sample_container() -> Vec<u8> {
        let text: Vec<u8> = (0..1024u32).map(|i| (i % 7) as u8).collect();
        let code = ByteCode::preselected(&ByteHistogram::of(&text)).unwrap();
        CompressedImage::build(0, &text, code, BlockAlignment::Word)
            .unwrap()
            .to_bytes()
    }

    #[test]
    fn layout_partitions_the_container() {
        let bytes = sample_container();
        let layout = ContainerLayout::of(&bytes).unwrap();
        assert_eq!(layout.version, 1);
        assert_eq!(layout.header, 0..24);
        assert_eq!(layout.code_table, 24..280);
        assert_eq!(layout.codec, CodecId::ByteHuffman);
        assert!(layout.codec_params.is_empty());
        assert_eq!(layout.blocks.start, 280);
        assert_eq!(layout.blocks.end, layout.lat.start);
        assert_eq!(layout.lat.end, layout.total);
        assert!(layout.crc.is_empty());
        assert_eq!(layout.total, bytes.len());
    }

    #[test]
    fn plans_are_deterministic_and_land_in_region() {
        let bytes = sample_container();
        let layout = ContainerLayout::of(&bytes).unwrap();
        for region in [
            FaultRegion::Header,
            FaultRegion::CodeTable,
            FaultRegion::Blocks,
            FaultRegion::Lat,
            FaultRegion::Any,
        ] {
            let a = FaultPlan::seeded(7, &layout, region, 5);
            let b = FaultPlan::seeded(7, &layout, region, 5);
            assert_eq!(a, b, "{region:?}");
            let range = region.range(&layout);
            for fault in a.faults() {
                assert!(range.contains(&fault.offset), "{region:?} {fault:?}");
            }
        }
        // Different seeds diverge.
        assert_ne!(
            FaultPlan::seeded(1, &layout, FaultRegion::Any, 8),
            FaultPlan::seeded(2, &layout, FaultRegion::Any, 8)
        );
    }

    #[test]
    fn empty_region_yields_empty_plan() {
        let bytes = sample_container();
        let layout = ContainerLayout::of(&bytes).unwrap();
        assert!(FaultPlan::seeded(3, &layout, FaultRegion::Crc, 4)
            .faults()
            .is_empty());
    }

    #[test]
    fn bit_flips_always_change_stomps_may_not() {
        let bytes = sample_container();
        let layout = ContainerLayout::of(&bytes).unwrap();
        let plan = FaultPlan::seeded(99, &layout, FaultRegion::Blocks, 16);
        let mut corrupt = bytes.clone();
        let changed = plan.apply(&mut corrupt);
        let flips = plan
            .faults()
            .iter()
            .filter(|f| matches!(f.kind, FaultKind::BitFlip { .. }))
            .count();
        assert!(changed >= 1);
        assert!(changed <= plan.faults().len());
        // Every bit flip at a distinct offset changes its byte; stomps
        // may restore the original value, so `changed` can exceed or
        // trail `flips` but never the plan size.
        let _ = flips;
        assert_ne!(corrupt, bytes);
    }

    #[test]
    fn layout_rejects_junk() {
        assert!(ContainerLayout::of(b"not a container").is_err());
    }
}
