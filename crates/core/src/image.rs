//! The compressed program image: packed compressed blocks plus the
//! in-memory Line Address Table (Figure 4's "Instruction Memory | LAT").

use std::sync::Arc;

use ccrp_compress::{block, BlockAlignment, ByteCode, CompressedLine, LineCodec};

use crate::addr::{self, BYTES_PER_ENTRY, LINES_PER_ENTRY, LINE_SIZE};
use crate::crc::crc32;
use crate::error::CcrpError;
use crate::lat::{LatEntry, LineAddressTable, RECORDS_PER_ENTRY};

/// Where a program line lives in compressed instruction memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineLocation {
    /// LAT index relative to the program start (the CLB tag).
    pub lat_index: u32,
    /// Which of the entry's eight blocks (the address's `L` field).
    pub line_in_entry: u32,
    /// Physical byte address of the stored block.
    pub physical: u32,
    /// Stored length in bytes (32 when bypassed).
    pub stored_len: u32,
    /// Whether the block is stored uncompressed.
    pub bypass: bool,
}

/// A program compressed for CCRP execution.
///
/// Blocks are packed contiguously from physical address 0 of the
/// instruction ROM; the encoded LAT follows the last block (its location
/// is the refill engine's LAT base register). The original text is
/// retained for the bit-exact decoder timing model and verification.
///
/// # Examples
///
/// ```
/// use ccrp::CompressedImage;
/// use ccrp_compress::{BlockAlignment, ByteCode, ByteHistogram};
///
/// let text = vec![0u8; 512]; // 16 lines of nops
/// let code = ByteCode::preselected(&ByteHistogram::of(&text))?;
/// let image = CompressedImage::build(0, &text, code, BlockAlignment::Word)?;
/// assert!(image.compressed_code_bytes() < 512);
/// assert_eq!(image.expand_line(0x40)?, [0u8; 32]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct CompressedImage {
    codec: Arc<dyn LineCodec>,
    alignment: BlockAlignment,
    lines: Vec<CompressedLine>,
    block_addresses: Vec<u32>,
    lat: LineAddressTable,
    lat_base: u32,
    original_text: Vec<u8>,
    text_base: u32,
    block_crcs: Option<Vec<u32>>,
}

impl CompressedImage {
    /// Compresses `text` (starting at CPU address `text_base`) with
    /// `code`.
    ///
    /// # Errors
    ///
    /// * [`CcrpError::MisalignedTextBase`] unless `text_base` is
    ///   256-byte aligned (LAT entries cover aligned 256-byte groups);
    /// * [`CcrpError::BaseOverflow`] if the packed blocks exceed the
    ///   24-bit physical space.
    pub fn build(
        text_base: u32,
        text: &[u8],
        code: ByteCode,
        alignment: BlockAlignment,
    ) -> Result<Self, CcrpError> {
        Self::build_with_codec(text_base, text, Arc::new(code), alignment)
    }

    /// [`build`](Self::build) with any [`LineCodec`] — the paper's
    /// byte-Huffman decoder is just the default backend.
    ///
    /// # Errors
    ///
    /// As for [`build`](Self::build).
    pub fn build_with_codec(
        text_base: u32,
        text: &[u8],
        codec: Arc<dyn LineCodec>,
        alignment: BlockAlignment,
    ) -> Result<Self, CcrpError> {
        if !text_base.is_multiple_of(BYTES_PER_ENTRY) {
            return Err(CcrpError::MisalignedTextBase { base: text_base });
        }
        // Pad to a whole number of lines (zero = `nop`, as linkers do).
        let mut original_text = text.to_vec();
        let padded = original_text.len().div_ceil(LINE_SIZE as usize) * LINE_SIZE as usize;
        original_text.resize(padded, 0);

        let lines = block::compress_image_with(codec.as_ref(), &original_text, alignment);
        let mut block_addresses = Vec::with_capacity(lines.len());
        let mut cursor: u32 = 0;
        for line in &lines {
            block_addresses.push(cursor);
            cursor =
                cursor
                    .checked_add(line.stored_len() as u32)
                    .ok_or(CcrpError::BaseOverflow {
                        address: u64::from(u32::MAX),
                    })?;
        }
        if u64::from(cursor) >= (1 << 24) {
            return Err(CcrpError::BaseOverflow {
                address: u64::from(cursor),
            });
        }

        let mut entries = Vec::with_capacity(lines.len().div_ceil(RECORDS_PER_ENTRY));
        for (group_index, group) in lines.chunks(RECORDS_PER_ENTRY).enumerate() {
            let base = block_addresses[group_index * RECORDS_PER_ENTRY];
            let mut lengths = [LINE_SIZE; RECORDS_PER_ENTRY];
            for (slot, line) in lengths.iter_mut().zip(group) {
                *slot = line.stored_len() as u32;
            }
            entries.push(LatEntry::new(base, lengths)?);
        }
        let lat = LineAddressTable::new(entries);
        // The LAT sits word aligned just past the last block.
        let lat_base = (cursor + 3) & !3;

        Ok(Self {
            codec,
            alignment,
            lines,
            block_addresses,
            lat,
            lat_base,
            original_text,
            text_base,
            block_crcs: None,
        })
    }

    /// Computes and attaches per-block CRC-32 integrity records (what a
    /// version-2 container stores). With records attached,
    /// [`expand_line`](Self::expand_line) and [`verify`](Self::verify)
    /// check every stored block against its CRC, turning silent
    /// miscompares into [`CcrpError::CrcMismatch`].
    pub fn attach_block_crcs(&mut self) {
        self.block_crcs = Some(self.block_crc_records());
    }

    /// The attached per-block CRC records, if any (always present on
    /// images loaded from version-2 containers).
    pub fn block_crcs(&self) -> Option<&[u32]> {
        self.block_crcs.as_deref()
    }

    /// CRC-32 of every stored block's current bytes, in line order.
    pub fn block_crc_records(&self) -> Vec<u32> {
        self.lines.iter().map(|l| crc32(l.data())).collect()
    }

    /// The line codec used for compression (byte-Huffman unless the
    /// image was built or loaded with a non-default codec).
    pub fn codec(&self) -> &dyn LineCodec {
        self.codec.as_ref()
    }

    /// A shared handle to the line codec (for building sibling images
    /// with the same decoder).
    pub fn codec_handle(&self) -> Arc<dyn LineCodec> {
        Arc::clone(&self.codec)
    }

    /// The block alignment the image was packed with.
    pub fn alignment(&self) -> BlockAlignment {
        self.alignment
    }

    /// CPU address of the first instruction.
    pub fn text_base(&self) -> u32 {
        self.text_base
    }

    /// Original program size in bytes (padded to whole lines).
    pub fn original_bytes(&self) -> u32 {
        self.original_text.len() as u32
    }

    /// Number of 32-byte cache lines in the program.
    pub fn line_count(&self) -> usize {
        self.lines.len()
    }

    /// The Line Address Table.
    pub fn lat(&self) -> &LineAddressTable {
        &self.lat
    }

    /// Physical address of the in-memory LAT (the LAT base register).
    pub fn lat_base(&self) -> u32 {
        self.lat_base
    }

    /// Bytes of packed compressed blocks (excluding LAT and code table).
    pub fn compressed_code_bytes(&self) -> u32 {
        self.lines.iter().map(|l| l.stored_len() as u32).sum()
    }

    /// Total instruction-memory footprint: blocks + LAT, plus the stored
    /// code table when `with_code_table` (per-program codes ship their
    /// table; the hardwired preselected code does not).
    pub fn total_stored_bytes(&self, with_code_table: bool) -> u32 {
        let table = if with_code_table {
            self.codec.table_storage_bytes() as u32
        } else {
            0
        };
        self.compressed_code_bytes() + self.lat.storage_bytes() + table
    }

    /// Compression ratio: stored size (blocks + LAT) over original size.
    /// Below 1.0 means the program shrank.
    pub fn compression_ratio(&self) -> f64 {
        f64::from(self.total_stored_bytes(false)) / f64::from(self.original_bytes())
    }

    /// Number of blocks stored uncompressed.
    pub fn bypass_count(&self) -> usize {
        self.lines.iter().filter(|l| l.is_bypass()).count()
    }

    /// Locates the stored block holding CPU address `address`.
    ///
    /// # Errors
    ///
    /// [`CcrpError::AddressOutOfRange`] outside the program text.
    pub fn locate(&self, address: u32) -> Result<LineLocation, CcrpError> {
        let offset = address
            .checked_sub(self.text_base)
            .ok_or(CcrpError::AddressOutOfRange { address })?;
        let global_line = (offset / LINE_SIZE) as usize;
        if global_line >= self.lines.len() {
            return Err(CcrpError::AddressOutOfRange { address });
        }
        let parts = addr::decompose(offset);
        let line = &self.lines[global_line];
        Ok(LineLocation {
            lat_index: parts.lat_index,
            line_in_entry: parts.line_in_entry,
            physical: self.block_addresses[global_line],
            stored_len: line.stored_len() as u32,
            bypass: line.is_bypass(),
        })
    }

    /// The stored (possibly compressed) block covering `address`.
    ///
    /// # Errors
    ///
    /// [`CcrpError::AddressOutOfRange`] outside the program text.
    pub fn stored_line(&self, address: u32) -> Result<&CompressedLine, CcrpError> {
        let loc = self.locate(address)?;
        let global = (loc.lat_index * LINES_PER_ENTRY + loc.line_in_entry) as usize;
        Ok(&self.lines[global])
    }

    /// The original 32 bytes of the line covering `address`.
    ///
    /// # Errors
    ///
    /// [`CcrpError::AddressOutOfRange`] outside the program text.
    pub fn original_line(&self, address: u32) -> Result<&[u8], CcrpError> {
        let loc = self.locate(address)?;
        let global = (loc.lat_index * LINES_PER_ENTRY + loc.line_in_entry) as usize;
        let start = global * LINE_SIZE as usize;
        Ok(&self.original_text[start..start + LINE_SIZE as usize])
    }

    /// Runs the decompressor on the stored block covering `address`,
    /// expanding the 32-byte cache line directly into `out` — the
    /// allocation-free path the refill engine and the emulator's
    /// compressed-ROM fetch use. When CRC records are attached
    /// (version-2 containers), the stored bytes are checked against
    /// their record first.
    ///
    /// # Errors
    ///
    /// Address-range, [`CcrpError::CrcMismatch`], or (for corrupt
    /// images) decode failures; `out` holds the bytes expanded before a
    /// decode failure.
    pub fn expand_line_into(&self, address: u32, out: &mut [u8; 32]) -> Result<(), CcrpError> {
        let loc = self.locate(address)?;
        let global = (loc.lat_index * LINES_PER_ENTRY + loc.line_in_entry) as usize;
        let stored = &self.lines[global];
        if let Some(crcs) = &self.block_crcs {
            let record = crcs.get(global).copied().ok_or(CcrpError::Integrity {
                what: "CRC record table shorter than line count",
                address,
            })?;
            if crc32(stored.data()) != record {
                return Err(CcrpError::CrcMismatch {
                    line: global as u32,
                });
            }
        }
        Ok(block::decompress_line_into_with(
            self.codec.as_ref(),
            stored,
            out,
        )?)
    }

    /// [`expand_line_into`](Self::expand_line_into), returning the
    /// expanded line by value.
    ///
    /// # Errors
    ///
    /// As for [`expand_line_into`](Self::expand_line_into).
    pub fn expand_line(&self, address: u32) -> Result<[u8; 32], CcrpError> {
        let mut out = [0u8; 32];
        self.expand_line_into(address, &mut out)?;
        Ok(out)
    }

    /// The packed compressed blocks, exactly as laid out in instruction
    /// memory (block `i` occupies `block_addresses[i]..+stored_len`).
    pub fn packed_blocks(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.compressed_code_bytes() as usize);
        for line in &self.lines {
            out.extend_from_slice(line.data());
        }
        out
    }

    /// Rebuilds an image from its serialized parts (the `container`
    /// module's loader). The original text is reconstructed by running
    /// every block through the decoder; when `block_crcs` is given
    /// (version-2 containers), each stored block is checked against its
    /// record before decoding.
    ///
    /// # Errors
    ///
    /// [`CcrpError::BadContainer`] on structural inconsistencies,
    /// [`CcrpError::CrcMismatch`] on integrity-record mismatches, and
    /// decode errors on corrupt block data.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        text_base: u32,
        alignment: BlockAlignment,
        codec: Arc<dyn LineCodec>,
        blocks: &[u8],
        lat_bytes: &[u8],
        line_count: usize,
        lat_base: u32,
        block_crcs: Option<Vec<u32>>,
    ) -> Result<CompressedImage, CcrpError> {
        use crate::lat::RECORDS_PER_ENTRY;
        let lat = LineAddressTable::from_encoded(lat_bytes)?;
        if lat.len() != line_count.div_ceil(RECORDS_PER_ENTRY) {
            return Err(CcrpError::BadContainer {
                what: "LAT entry count mismatch",
            });
        }
        if let Some(crcs) = &block_crcs {
            if crcs.len() != line_count {
                return Err(CcrpError::BadContainer {
                    what: "CRC record count mismatch",
                });
            }
        }
        let mut lines = Vec::with_capacity(line_count);
        let mut block_addresses = Vec::with_capacity(line_count);
        let mut original_text = Vec::with_capacity(line_count * LINE_SIZE as usize);
        let mut expanded = [0u8; LINE_SIZE as usize];
        for global in 0..line_count {
            let entry =
                lat.entry((global / RECORDS_PER_ENTRY) as u32)
                    .ok_or(CcrpError::BadContainer {
                        what: "LAT entry count mismatch",
                    })?;
            let slot = global % RECORDS_PER_ENTRY;
            let physical = entry.block_address(slot) as usize;
            let stored = entry.block_length(slot) as usize;
            let data = blocks
                .get(physical..physical + stored)
                .ok_or(CcrpError::BadContainer {
                    what: "block outside the packed section",
                })?;
            if let Some(crcs) = &block_crcs {
                if crc32(data) != crcs[global] {
                    return Err(CcrpError::CrcMismatch {
                        line: global as u32,
                    });
                }
            }
            let line = ccrp_compress::CompressedLine::from_stored_checked(
                data.to_vec(),
                entry.is_uncompressed(slot),
            )?;
            block::decompress_line_into_with(codec.as_ref(), &line, &mut expanded)?;
            original_text.extend_from_slice(&expanded);
            block_addresses.push(physical as u32);
            lines.push(line);
        }
        let image = CompressedImage {
            codec,
            alignment,
            lines,
            block_addresses,
            lat,
            lat_base,
            original_text,
            text_base,
            block_crcs,
        };
        Ok(image)
    }

    /// Consistency check: the container-header invariants must hold (LAT
    /// entry count matches the line count, base pointers monotonically
    /// non-decreasing and in-bounds of the packed section), every
    /// LAT-computed block address must equal the packed layout's, every
    /// line must expand to the original bytes, and — when CRC records
    /// are attached — every stored block must match its record. Used by
    /// tests, the image inspector, and fault campaigns.
    ///
    /// # Errors
    ///
    /// The first inconsistency found: [`CcrpError::Integrity`] for
    /// structural/layout mismatches, [`CcrpError::CrcMismatch`] for
    /// integrity-record failures, or a decode error.
    pub fn verify(&self) -> Result<(), CcrpError> {
        if self.lat.len() != self.lines.len().div_ceil(RECORDS_PER_ENTRY) {
            return Err(CcrpError::Integrity {
                what: "LAT entry count disagrees with line count",
                address: self.text_base,
            });
        }
        let packed = self.compressed_code_bytes();
        let mut prev_base = 0u32;
        for index in 0..self.lat.len() {
            let entry = self.lat.entry(index as u32).ok_or(CcrpError::Integrity {
                what: "LAT entry missing",
                address: self.text_base + index as u32 * BYTES_PER_ENTRY,
            })?;
            if entry.base() < prev_base || entry.base() > packed {
                return Err(CcrpError::Integrity {
                    what: "LAT base pointers not monotonically in-bounds",
                    address: self.text_base + index as u32 * BYTES_PER_ENTRY,
                });
            }
            prev_base = entry.base();
        }
        for global in 0..self.lines.len() {
            let address = self.text_base + global as u32 * LINE_SIZE;
            let loc = self.locate(address)?;
            let entry = self.lat.entry(loc.lat_index).ok_or(CcrpError::Integrity {
                what: "LAT entry missing",
                address,
            })?;
            let computed = entry.block_address(loc.line_in_entry as usize);
            if computed != loc.physical
                || entry.block_length(loc.line_in_entry as usize) != loc.stored_len
            {
                return Err(CcrpError::Integrity {
                    what: "LAT entry disagrees with packed layout",
                    address,
                });
            }
            if computed + loc.stored_len > packed {
                return Err(CcrpError::Integrity {
                    what: "block extends past the packed section",
                    address,
                });
            }
            let expanded = self.expand_line(address)?;
            if expanded[..] != *self.original_line(address)? {
                return Err(CcrpError::Integrity {
                    what: "expanded line differs from original text",
                    address,
                });
            }
        }
        Ok(())
    }

    /// Fault injection: overwrites the LAT length record for
    /// `global_line` with `stored_len` (1..=32 bytes), leaving the
    /// packed blocks untouched — the corruption a flipped ROM bit in
    /// the table region would cause. [`verify`](Self::verify) detects
    /// the resulting layout mismatch; tests and robustness checks use
    /// this to exercise that path, since the normal constructors only
    /// ever produce self-consistent images.
    ///
    /// # Errors
    ///
    /// [`CcrpError::AddressOutOfRange`] for a line outside the program,
    /// or [`CcrpError::BadBlockLength`] for a length outside 1..=32.
    pub fn corrupt_lat_length(
        &mut self,
        global_line: usize,
        stored_len: u32,
    ) -> Result<(), CcrpError> {
        if global_line >= self.lines.len() {
            return Err(CcrpError::AddressOutOfRange {
                address: self.text_base + global_line as u32 * LINE_SIZE,
            });
        }
        let lat_index = global_line / RECORDS_PER_ENTRY;
        let slot = global_line % RECORDS_PER_ENTRY;
        let entry = self
            .lat
            .entry(lat_index as u32)
            .ok_or(CcrpError::Integrity {
                what: "LAT shorter than the line count",
                address: self.text_base + global_line as u32 * LINE_SIZE,
            })?;
        let mut lengths = [0u32; RECORDS_PER_ENTRY];
        for (record, length) in lengths.iter_mut().enumerate() {
            *length = entry.block_length(record);
        }
        lengths[slot] = stored_len;
        let corrupted = LatEntry::new(entry.base(), lengths)?;
        self.lat.set_entry(lat_index, corrupted);
        Ok(())
    }

    /// Fault injection: XORs `xor` into byte `byte_offset` of the stored
    /// block for `global_line` — the corruption a flipped ROM bit in the
    /// packed-blocks region would cause. Unlike
    /// [`corrupt_lat_length`](Self::corrupt_lat_length) this is visible
    /// to [`expand_line`](Self::expand_line) and thus to the emulator's
    /// demand-expansion path; depending on where the bit lands it
    /// surfaces as a decode error, a [`CcrpError::CrcMismatch`] (with
    /// records attached), or — without CRCs — a silent miscompare.
    ///
    /// # Errors
    ///
    /// [`CcrpError::AddressOutOfRange`] for a line outside the program,
    /// [`CcrpError::Integrity`] for an offset outside the stored block.
    pub fn corrupt_block_byte(
        &mut self,
        global_line: usize,
        byte_offset: usize,
        xor: u8,
    ) -> Result<(), CcrpError> {
        let address = self.text_base + global_line as u32 * LINE_SIZE;
        let line = self
            .lines
            .get(global_line)
            .ok_or(CcrpError::AddressOutOfRange { address })?;
        let mut data = line.data().to_vec();
        let byte = data.get_mut(byte_offset).ok_or(CcrpError::Integrity {
            what: "corruption offset outside the stored block",
            address,
        })?;
        *byte ^= xor;
        self.lines[global_line] = CompressedLine::from_stored_checked(data, line.is_bypass())?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccrp_compress::ByteHistogram;

    fn code_for(text: &[u8]) -> ByteCode {
        ByteCode::preselected(&ByteHistogram::of(text)).expect("code builds")
    }

    fn sample_text(len: usize) -> Vec<u8> {
        // Realistic mix: skewed bytes with occasional high-entropy runs.
        let mut text = Vec::with_capacity(len);
        let mut x = 1u32;
        for i in 0..len {
            x = x.wrapping_mul(48271);
            text.push(match i % 4 {
                0 => (x >> 24) as u8, // varying low byte
                1 => 0x00,
                2 => (i as u8) & 0x1F,
                _ => 0x24,
            });
        }
        text
    }

    #[test]
    fn build_and_verify() {
        let text = sample_text(4096);
        let image =
            CompressedImage::build(0, &text, code_for(&text), BlockAlignment::Word).unwrap();
        image.verify().unwrap();
        assert_eq!(image.line_count(), 128);
        assert_eq!(image.lat().len(), 16);
        assert!(image.compression_ratio() < 1.0 + 3.2 / 100.0);
    }

    #[test]
    fn lat_overhead_is_3_125_percent() {
        let text = sample_text(2560);
        let image =
            CompressedImage::build(0, &text, code_for(&text), BlockAlignment::Word).unwrap();
        let overhead = f64::from(image.lat().storage_bytes()) / f64::from(image.original_bytes());
        assert!((overhead - 0.03125).abs() < 1e-9);
    }

    #[test]
    fn partial_final_group() {
        // 5 lines -> one full LAT entry is still emitted with padding.
        let text = sample_text(5 * 32);
        let image =
            CompressedImage::build(0, &text, code_for(&text), BlockAlignment::Word).unwrap();
        assert_eq!(image.line_count(), 5);
        assert_eq!(image.lat().len(), 1);
        image.verify().unwrap();
    }

    #[test]
    fn partial_final_line_padded() {
        let text = sample_text(40); // 1 line + 8 bytes
        let image =
            CompressedImage::build(0, &text, code_for(&text), BlockAlignment::Word).unwrap();
        assert_eq!(image.line_count(), 2);
        assert_eq!(image.original_bytes(), 64);
        let line = image.original_line(32).unwrap();
        assert_eq!(&line[8..], &[0u8; 24]);
    }

    #[test]
    fn nonzero_text_base() {
        let text = sample_text(512);
        let image =
            CompressedImage::build(0x400, &text, code_for(&text), BlockAlignment::Word).unwrap();
        image.verify().unwrap();
        assert!(image.locate(0x3FF).is_err());
        assert!(image.locate(0x400).is_ok());
        assert!(image.locate(0x400 + 512).is_err());
        let loc = image.locate(0x400).unwrap();
        assert_eq!(loc.lat_index, 0);
    }

    #[test]
    fn misaligned_base_rejected() {
        let text = sample_text(64);
        assert!(matches!(
            CompressedImage::build(0x20, &text, code_for(&text), BlockAlignment::Byte),
            Err(CcrpError::MisalignedTextBase { .. })
        ));
    }

    #[test]
    fn byte_alignment_is_no_larger() {
        let text = sample_text(8192);
        let word = CompressedImage::build(0, &text, code_for(&text), BlockAlignment::Word).unwrap();
        let byte = CompressedImage::build(0, &text, code_for(&text), BlockAlignment::Byte).unwrap();
        byte.verify().unwrap();
        assert!(byte.compressed_code_bytes() <= word.compressed_code_bytes());
    }

    #[test]
    fn lat_base_follows_blocks() {
        let text = sample_text(1024);
        let image =
            CompressedImage::build(0, &text, code_for(&text), BlockAlignment::Byte).unwrap();
        assert!(image.lat_base() >= image.compressed_code_bytes());
        assert_eq!(image.lat_base() % 4, 0);
    }
}
