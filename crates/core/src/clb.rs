//! The Cache Line Address Lookaside Buffer (Figure 8).
//!
//! A small fully associative cache of recently used LAT entries, managed
//! LRU — "essentially identical to a TLB" (§2.1). It is probed in
//! parallel with every instruction-cache access, so a CLB hit adds no
//! cycles to a cache miss; a CLB miss adds the LAT-entry read to the
//! refill.

use crate::error::CcrpError;
use crate::lat::LatEntry;

/// Hit/miss counters for a [`Clb`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClbStats {
    /// Probes that found their LAT entry resident.
    pub hits: u64,
    /// Probes that required a LAT read.
    pub misses: u64,
}

impl ClbStats {
    /// Fraction of probes that missed (0 when never probed).
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// A fully associative, LRU-replaced buffer of LAT entries.
///
/// # Examples
///
/// ```
/// use ccrp::{Clb, LatEntry};
///
/// let mut clb = Clb::new(4)?;
/// let entry = LatEntry::new(0x40, [8; 8])?;
/// assert!(clb.probe(7).is_none());   // cold miss
/// clb.insert(7, entry);
/// assert!(clb.probe(7).is_some());   // now resident
/// # Ok::<(), ccrp::CcrpError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Clb {
    capacity: usize,
    /// Resident entries, most recently used last.
    slots: Vec<(u32, LatEntry)>,
    stats: ClbStats,
}

impl Clb {
    /// Creates a CLB holding `capacity` LAT entries (the paper evaluates
    /// 4, 8, and 16).
    ///
    /// # Errors
    ///
    /// [`CcrpError::EmptyClb`] for a zero capacity.
    pub fn new(capacity: usize) -> Result<Self, CcrpError> {
        if capacity == 0 {
            return Err(CcrpError::EmptyClb);
        }
        Ok(Self {
            capacity,
            slots: Vec::with_capacity(capacity),
            stats: ClbStats::default(),
        })
    }

    /// Number of entries the CLB can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks up `lat_index`, updating LRU order and statistics.
    pub fn probe(&mut self, lat_index: u32) -> Option<LatEntry> {
        if let Some(pos) = self.slots.iter().position(|&(tag, _)| tag == lat_index) {
            let slot = self.slots.remove(pos);
            let entry = slot.1;
            self.slots.push(slot);
            self.stats.hits += 1;
            Some(entry)
        } else {
            self.stats.misses += 1;
            None
        }
    }

    /// Installs an entry fetched from the in-memory LAT, evicting the
    /// least recently used entry if full. Returns the evicted entry's
    /// LAT index, if the insert displaced one.
    pub fn insert(&mut self, lat_index: u32, entry: LatEntry) -> Option<u32> {
        let mut evicted = None;
        if let Some(pos) = self.slots.iter().position(|&(tag, _)| tag == lat_index) {
            self.slots.remove(pos);
        } else if self.slots.len() == self.capacity {
            evicted = Some(self.slots.remove(0).0);
        }
        self.slots.push((lat_index, entry));
        evicted
    }

    /// Invalidates all entries (keeps statistics).
    pub fn flush(&mut self) {
        self.slots.clear();
    }

    /// Invalidates one entry, returning whether it was resident. The
    /// degradation machinery uses this to force a fresh LAT read on
    /// retry: a corrupt entry cached in the CLB would otherwise make
    /// every re-read fail identically.
    pub fn invalidate(&mut self, lat_index: u32) -> bool {
        if let Some(pos) = self.slots.iter().position(|&(tag, _)| tag == lat_index) {
            self.slots.remove(pos);
            true
        } else {
            false
        }
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> ClbStats {
        self.stats
    }

    /// Resets the counters (e.g. after a warm-up phase).
    pub fn reset_stats(&mut self) {
        self.stats = ClbStats::default();
    }

    /// Currently resident LAT indices, least recently used first.
    pub fn resident(&self) -> impl Iterator<Item = u32> + '_ {
        self.slots.iter().map(|&(tag, _)| tag)
    }

    /// A point-in-time copy of the CLB's full state — contents, LRU
    /// order, and counters — for checkpointed replay.
    pub fn snapshot(&self) -> ClbSnapshot {
        ClbSnapshot {
            capacity: self.capacity,
            slots: self.slots.clone(),
            stats: self.stats,
        }
    }

    /// Restores the CLB to exactly the state `snapshot` captured,
    /// adopting its capacity, resident entries (in LRU order), and
    /// counters. Subsequent probes behave bit-for-bit as they would
    /// have on the snapshotted CLB — the property checkpointed
    /// segment replay relies on.
    pub fn restore(&mut self, snapshot: &ClbSnapshot) {
        self.capacity = snapshot.capacity;
        self.slots.clone_from(&snapshot.slots);
        self.stats = snapshot.stats;
    }
}

/// A [`Clb`]'s captured state; see [`Clb::snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClbSnapshot {
    capacity: usize,
    slots: Vec<(u32, LatEntry)>,
    stats: ClbStats,
}

impl ClbSnapshot {
    /// Number of resident entries captured.
    pub fn resident_len(&self) -> usize {
        self.slots.len()
    }

    /// The captured counters.
    pub fn stats(&self) -> ClbStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(n: u32) -> LatEntry {
        LatEntry::new(n * 64, [4; 8]).expect("valid entry")
    }

    #[test]
    fn zero_capacity_rejected() {
        assert!(matches!(Clb::new(0), Err(CcrpError::EmptyClb)));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut clb = Clb::new(2).unwrap();
        assert_eq!(clb.insert(1, entry(1)), None);
        assert_eq!(clb.insert(2, entry(2)), None);
        // Touch 1, making 2 the LRU victim.
        assert!(clb.probe(1).is_some());
        assert_eq!(clb.insert(3, entry(3)), Some(2));
        assert!(clb.probe(2).is_none(), "2 should be evicted");
        assert!(clb.probe(1).is_some());
        assert!(clb.probe(3).is_some());
    }

    #[test]
    fn reinsert_does_not_duplicate() {
        let mut clb = Clb::new(2).unwrap();
        clb.insert(1, entry(1));
        assert_eq!(clb.insert(1, entry(1)), None, "refresh is not an eviction");
        clb.insert(2, entry(2));
        assert_eq!(clb.resident().count(), 2);
        assert!(clb.probe(1).is_some());
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let mut clb = Clb::new(4).unwrap();
        assert!(clb.probe(9).is_none());
        clb.insert(9, entry(9));
        assert!(clb.probe(9).is_some());
        assert!(clb.probe(9).is_some());
        let s = clb.stats();
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 1);
        assert!((s.miss_rate() - 1.0 / 3.0).abs() < 1e-12);
        clb.reset_stats();
        assert_eq!(clb.stats(), ClbStats::default());
    }

    #[test]
    fn flush_empties_but_keeps_stats() {
        let mut clb = Clb::new(4).unwrap();
        clb.insert(1, entry(1));
        clb.probe(1);
        clb.flush();
        assert!(clb.probe(1).is_none());
        assert_eq!(clb.stats().hits, 1);
    }

    #[test]
    fn larger_clb_holds_bigger_working_set() {
        // The paper's tables 9-10 premise: a 16-entry CLB covers working
        // sets a 4-entry one cannot.
        let indices: Vec<u32> = (0..8).collect();
        for (cap, expect_all_hits) in [(4usize, false), (16, true)] {
            let mut clb = Clb::new(cap).unwrap();
            for &i in &indices {
                clb.insert(i, entry(i));
            }
            clb.reset_stats();
            let mut all = true;
            for &i in &indices {
                if clb.probe(i).is_none() {
                    all = false;
                    clb.insert(i, entry(i));
                }
            }
            assert_eq!(all, expect_all_hits, "capacity {cap}");
        }
    }

    #[test]
    fn invalidate_removes_one_entry() {
        let mut clb = Clb::new(4).unwrap();
        clb.insert(1, entry(1));
        clb.insert(2, entry(2));
        assert!(clb.invalidate(1));
        assert!(!clb.invalidate(1), "already gone");
        assert!(clb.probe(1).is_none());
        assert!(clb.probe(2).is_some(), "other entries untouched");
    }

    #[test]
    fn single_slot_never_serves_an_aliased_index() {
        // Two LAT indices competing for one slot: after eviction and
        // refetch the slot must serve whichever index was inserted
        // last, never entry 8's records for a probe of entry 0.
        let mut clb = Clb::new(1).unwrap();
        clb.insert(0, entry(0));
        assert_eq!(clb.insert(8, entry(8)), Some(0));
        assert!(clb.probe(0).is_none(), "evicted index must miss");
        assert_eq!(clb.probe(8).unwrap().base(), entry(8).base());
        // Refetching 0 displaces 8 in turn.
        assert_eq!(clb.insert(0, entry(0)), Some(8));
        assert!(clb.probe(8).is_none());
        assert_eq!(clb.probe(0).unwrap().base(), entry(0).base());
    }

    #[test]
    fn miss_rate_zero_when_unprobed() {
        let clb = Clb::new(1).unwrap();
        assert_eq!(clb.stats().miss_rate(), 0.0);
    }

    #[test]
    fn snapshot_restore_resumes_identically() {
        // Drive one CLB to an interesting state, snapshot, then keep
        // driving it and a restored copy with the same probe sequence:
        // every observable (hit/miss outcome, evictions, stats) must
        // match step for step.
        let mut original = Clb::new(3).unwrap();
        for i in 0..5u32 {
            if original.probe(i % 4).is_none() {
                original.insert(i % 4, entry(i % 4));
            }
        }
        let snap = original.snapshot();
        assert_eq!(snap.resident_len(), 3);
        let mut restored = Clb::new(3).unwrap();
        restored.restore(&snap);
        for i in 0..32u32 {
            let index = (i * 7) % 6;
            let a = original.probe(index).is_some();
            let b = restored.probe(index).is_some();
            assert_eq!(a, b, "probe {i}");
            if !a {
                assert_eq!(
                    original.insert(index, entry(index)),
                    restored.insert(index, entry(index)),
                    "eviction {i}"
                );
            }
        }
        assert_eq!(original.stats(), restored.stats());
    }

    #[test]
    fn restore_adopts_snapshot_capacity() {
        let mut small = Clb::new(2).unwrap();
        small.insert(1, entry(1));
        let snap = small.snapshot();
        let mut other = Clb::new(16).unwrap();
        other.restore(&snap);
        assert_eq!(other.capacity(), 2);
        assert!(other.probe(1).is_some());
    }
}
