//! # CCRP — the Compressed Code RISC Processor
//!
//! Reproduction of the core contribution of Wolfe & Chanin, *"Executing
//! Compressed Programs on An Embedded RISC Architecture"* (MICRO-25,
//! 1992): a standard RISC core whose **instruction-cache refill engine
//! decompresses code on demand**, so programs are stored compressed in
//! EPROM yet execute unmodified.
//!
//! The pieces, mapping one-to-one onto the paper's figures:
//!
//! * [`addr`] — instruction-address decomposition (Fig. 7);
//! * [`LatEntry`] / [`LineAddressTable`] — the Line Address Table that
//!   maps program line addresses to compressed block locations, 8 bytes
//!   per 8 lines = 3.125% overhead (Figs. 3 & 6);
//! * [`Clb`] — the Cache Line Address Lookaside Buffer, a fully
//!   associative LRU cache of LAT entries (Fig. 8);
//! * [`CompressedImage`] — the packed compressed program plus in-memory
//!   LAT (Fig. 4);
//! * [`RefillEngine`] — the cache-miss path with a bit-exact model of the
//!   2-byte-per-cycle pipelined decoder (§3.4);
//! * [`CompactLatEntry`] — an *extension* implementing §5's "further
//!   research into LAT compaction": 4-bit word-length records cut the
//!   table to 2.73% of program size for word-aligned images.
//!
//! Compression itself (bounded Huffman codes, the bypass rule) lives in
//! [`ccrp_compress`]; cache and memory-system simulation live in
//! `ccrp-sim`, which implements [`MemoryTiming`] for the paper's three
//! memory models.
//!
//! # Examples
//!
//! Compress a program and refill a line through the engine:
//!
//! ```
//! use ccrp::{CompressedImage, MemoryTiming, RefillConfig, RefillEngine};
//! use ccrp_compress::{BlockAlignment, ByteCode, ByteHistogram};
//!
//! // EPROM-like timing: 3 cycles per word, no burst mode.
//! struct Eprom;
//! impl MemoryTiming for Eprom {
//!     fn read_burst(&mut self, words: u32, now: u64, arrivals: &mut Vec<u64>) {
//!         arrivals.clear();
//!         arrivals.extend((0..u64::from(words)).map(|i| now + 3 * (i + 1)));
//!     }
//! }
//!
//! let text = vec![0u8; 1024];
//! let code = ByteCode::preselected(&ByteHistogram::of(&text))?;
//! let image = CompressedImage::build(0, &text, code, BlockAlignment::Word)?;
//! let mut engine = RefillEngine::new(RefillConfig::default())?;
//! let outcome = engine.refill(&image, 0x40, 0, &mut Eprom)?;
//! assert!(outcome.ready_at > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
mod budget;
mod clb;
mod compact_lat;
mod container;
mod crc;
mod error;
mod fault;
mod image;
mod lat;
mod refill;
mod snapshot;

pub use budget::{BudgetExhausted, StepBudget};
pub use clb::{Clb, ClbSnapshot, ClbStats};
pub use compact_lat::{CompactLatEntry, COMPACT_ENTRY_BYTES};
pub use crc::crc32;
pub use error::CcrpError;
pub use fault::{ContainerLayout, Fault, FaultInjector, FaultKind, FaultPlan, FaultRegion};
pub use image::{CompressedImage, LineLocation};
pub use lat::{LatEntry, LineAddressTable, ENTRY_BYTES, RECORDS_PER_ENTRY};
pub use refill::{
    DegradePolicy, IntegrityCheck, MemoryTiming, RefillConfig, RefillEngine, RefillEngineSnapshot,
    RefillOutcome,
};
pub use snapshot::{
    read_frame, write_frame, ByteReader, ByteWriter, SnapshotError, SnapshotHeader,
    SNAPSHOT_HEADER_BYTES, SNAPSHOT_MAGIC,
};

#[cfg(test)]
mod proptests {
    use super::*;
    use ccrp_compress::{BlockAlignment, ByteCode, ByteHistogram};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Any program image, under either alignment, verifies: LAT
        /// arithmetic matches the packed layout and every line expands to
        /// the original bytes.
        #[test]
        fn image_invariants(
            seed in any::<u64>(),
            lines in 1usize..40,
            byte_aligned in any::<bool>(),
        ) {
            let mut x = seed | 1;
            let text: Vec<u8> = (0..lines * 32)
                .map(|_| {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    // Mix of compressible and hostile bytes.
                    if x & 0x30000 == 0 { (x >> 33) as u8 } else { (x >> 62) as u8 }
                })
                .collect();
            let code = ByteCode::preselected(&ByteHistogram::of(&text)).unwrap();
            let alignment = if byte_aligned { BlockAlignment::Byte } else { BlockAlignment::Word };
            let image = CompressedImage::build(0, &text, code, alignment).unwrap();
            prop_assert!(image.verify().is_ok());
            // Stored size never exceeds original + LAT overhead.
            prop_assert!(
                image.total_stored_bytes(false)
                    <= image.original_bytes() + image.lat().storage_bytes()
            );
        }
    }
}
