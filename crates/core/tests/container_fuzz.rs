//! Container robustness: arbitrary corruption of a serialized image
//! must surface as a clean error or a loadable-but-different image —
//! never a panic. A ROM loader lives on this property.

use ccrp::CompressedImage;
use ccrp_compress::{BlockAlignment, ByteCode, ByteHistogram};
use proptest::prelude::*;

fn sample_container() -> Vec<u8> {
    let mut text = vec![0u8; 2048];
    let mut x = 3u32;
    for (i, byte) in text.iter_mut().enumerate() {
        x = x.wrapping_mul(48271);
        *byte = if i % 3 == 0 { (x >> 27) as u8 } else { 0x24 };
    }
    let code = ByteCode::preselected(&ByteHistogram::of(&text)).expect("code builds");
    CompressedImage::build(0, &text, code, BlockAlignment::Word)
        .expect("builds")
        .to_bytes()
}

proptest! {
    #[test]
    fn single_byte_corruption_never_panics(
        index in 0usize..4096,
        flip in 1u8..=255,
    ) {
        let mut bytes = sample_container();
        let index = index % bytes.len();
        bytes[index] ^= flip;
        // Either a clean parse error, or a structurally valid image —
        // whose accessors must also hold up.
        if let Ok(image) = CompressedImage::from_bytes(&bytes) {
            let _ = image.compression_ratio();
            let _ = image.verify();
            for line in 0..image.line_count().min(4) {
                let _ = image.expand_line(image.text_base() + line as u32 * 32);
            }
        }
    }

    #[test]
    fn truncation_never_panics(keep in 0usize..4096) {
        let bytes = sample_container();
        let keep = keep % (bytes.len() + 1);
        prop_assert!(CompressedImage::from_bytes(&bytes[..keep]).is_err() || keep == bytes.len());
    }

    #[test]
    fn random_garbage_never_parses(noise in proptest::collection::vec(any::<u8>(), 0..600)) {
        // Without the magic, parsing must fail immediately.
        if noise.len() < 4 || &noise[0..4] != b"CCRP" {
            prop_assert!(CompressedImage::from_bytes(&noise).is_err());
        }
    }
}
