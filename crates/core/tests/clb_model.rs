//! Model-based testing of the CLB: the hardware-style LRU buffer must
//! behave identically to an obviously-correct reference model over
//! arbitrary probe/insert sequences.

use ccrp::{Clb, LatEntry};
use proptest::prelude::*;

/// An obviously-correct reference: a vector ordered least-recent first.
#[derive(Debug, Default)]
struct ModelClb {
    capacity: usize,
    entries: Vec<u32>,
}

impl ModelClb {
    fn probe(&mut self, tag: u32) -> bool {
        if let Some(pos) = self.entries.iter().position(|&t| t == tag) {
            let tag = self.entries.remove(pos);
            self.entries.push(tag);
            true
        } else {
            false
        }
    }

    fn insert(&mut self, tag: u32) {
        if let Some(pos) = self.entries.iter().position(|&t| t == tag) {
            self.entries.remove(pos);
        } else if self.entries.len() == self.capacity {
            self.entries.remove(0);
        }
        self.entries.push(tag);
    }
}

fn entry_for(tag: u32) -> LatEntry {
    LatEntry::new((tag % 1000) * 16, [4; 8]).expect("valid")
}

proptest! {
    #[test]
    fn clb_matches_reference_model(
        capacity in 1usize..20,
        operations in proptest::collection::vec((any::<bool>(), 0u32..12), 0..300),
    ) {
        let mut clb = Clb::new(capacity).expect("nonzero capacity");
        let mut model = ModelClb { capacity, entries: Vec::new() };
        let mut hits = 0u64;
        let mut misses = 0u64;
        for (is_probe, tag) in operations {
            if is_probe {
                let got = clb.probe(tag).is_some();
                let expected = model.probe(tag);
                prop_assert_eq!(got, expected, "probe({}) diverged", tag);
                if expected {
                    hits += 1;
                } else {
                    misses += 1;
                }
            } else {
                clb.insert(tag, entry_for(tag));
                model.insert(tag);
            }
            // Residency sets and LRU order agree at every step.
            let got: Vec<u32> = clb.resident().collect();
            prop_assert_eq!(&got, &model.entries);
        }
        prop_assert_eq!(clb.stats().hits, hits);
        prop_assert_eq!(clb.stats().misses, misses);
    }

    #[test]
    fn probe_returns_the_inserted_entry(tags in proptest::collection::vec(0u32..32, 1..64)) {
        let mut clb = Clb::new(8).expect("valid");
        for &tag in &tags {
            clb.insert(tag, entry_for(tag));
            let got = clb.probe(tag).expect("just inserted");
            prop_assert_eq!(got.base(), entry_for(tag).base());
        }
    }
}
