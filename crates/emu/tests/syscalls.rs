//! SPIM-ABI syscall coverage: every service the workloads rely on,
//! including the FP print paths and the heap.

use ccrp_asm::assemble;
use ccrp_emu::{EmuError, Machine, NullSink};

fn run_output(source: &str) -> String {
    let image = assemble(source).expect("assembles");
    let mut machine = Machine::new(&image);
    machine.run(&mut NullSink).expect("runs");
    machine.output().to_string()
}

#[test]
fn print_int_negative() {
    let out = run_output("main: li $a0, -42\n li $v0, 1\n syscall\n li $v0, 10\n syscall");
    assert_eq!(out, "-42");
}

#[test]
fn print_float_and_double() {
    let out = run_output(
        "
        .data
        .align 3
d:      .double 2.5
f:      .float -0.75
        .text
main:
        la   $t0, d
        l.d  $f12, 0($t0)
        li   $v0, 3              # print_double from $f12
        syscall
        li   $a0, ' '
        li   $v0, 11
        syscall
        la   $t0, f
        l.s  $f12, 0($t0)
        li   $v0, 2              # print_float from $f12
        syscall
        li   $v0, 10
        syscall
        ",
    );
    assert_eq!(out, "2.5 -0.75");
}

#[test]
fn print_string_walks_to_nul() {
    let out = run_output(
        r#"
        .data
msg:    .asciiz "ab"
more:   .asciiz "zz"
        .text
main:
        la   $a0, msg
        li   $v0, 4
        syscall
        li   $v0, 10
        syscall
        "#,
    );
    assert_eq!(
        out, "ab",
        "must stop at the terminator, not run into `more`"
    );
}

#[test]
fn read_int_defaults_to_zero_when_queue_empty() {
    let out = run_output(
        "main: li $v0, 5\n syscall\n move $a0, $v0\n li $v0, 1\n syscall\n li $v0, 10\n syscall",
    );
    assert_eq!(out, "0");
}

#[test]
fn sbrk_returns_distinct_growing_regions() {
    let out = run_output(
        "
main:
        li   $a0, 64
        li   $v0, 9
        syscall
        move $s0, $v0
        li   $a0, 64
        li   $v0, 9
        syscall
        subu $a0, $v0, $s0       # second break - first = 64
        li   $v0, 1
        syscall
        li   $v0, 10
        syscall
        ",
    );
    assert_eq!(out, "64");
}

#[test]
fn unknown_syscall_faults() {
    let image = assemble("main: li $v0, 99\n syscall").unwrap();
    let err = Machine::new(&image).run(&mut NullSink).unwrap_err();
    assert!(matches!(err, EmuError::UnknownSyscall { number: 99, .. }));
}

#[test]
fn exit_codes_surface() {
    let image = assemble("main: li $a0, -5\n li $v0, 17\n syscall").unwrap();
    let mut machine = Machine::new(&image);
    let summary = machine.run(&mut NullSink).unwrap();
    assert_eq!(summary.exit_code, -5);
    assert_eq!(machine.exit_code(), Some(-5));
}

#[test]
fn output_interleaves_in_program_order() {
    let out = run_output(
        "
main:
        li   $a0, 1
        li   $v0, 1
        syscall
        li   $a0, 'x'
        li   $v0, 11
        syscall
        li   $a0, 2
        li   $v0, 1
        syscall
        li   $v0, 10
        syscall
        ",
    );
    assert_eq!(out, "1x2");
}
