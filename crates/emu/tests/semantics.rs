//! Instruction-semantics tests: each R2000 behaviour pinned against an
//! independent Rust computation, plus property tests for the tricky
//! corners (unaligned access pairs, signed/unsigned edges).

use ccrp_asm::assemble;
use ccrp_emu::{Machine, NullSink};
use ccrp_isa::Reg;
use proptest::prelude::*;

/// Assembles a fragment that leaves its result in `$v1`, runs it, and
/// returns the register value.
fn eval(body: &str) -> u32 {
    let source = format!("main:\n{body}\n li $v0, 10\n syscall\n");
    let image = assemble(&source).expect("fragment assembles");
    let mut machine = Machine::new(&image);
    machine.run(&mut NullSink).expect("fragment runs");
    machine.reg(Reg::V1)
}

#[test]
fn alu_edge_cases() {
    // addu wraps
    assert_eq!(
        eval("li $t0, 0xFFFFFFFF\n addiu $t1, $t0, 1\n move $v1, $t1"),
        0
    );
    // subu borrows
    assert_eq!(eval("li $t0, 0\n li $t1, 1\n subu $v1, $t0, $t1"), u32::MAX);
    // nor of zero is all ones
    assert_eq!(eval("nor $v1, $zero, $zero"), u32::MAX);
    // sra keeps sign, srl does not
    assert_eq!(eval("li $t0, 0x80000000\n sra $v1, $t0, 4"), 0xF800_0000);
    assert_eq!(eval("li $t0, 0x80000000\n srl $v1, $t0, 4"), 0x0800_0000);
    // variable shift masks to 5 bits
    assert_eq!(eval("li $t0, 1\n li $t1, 33\n sllv $v1, $t0, $t1"), 2);
}

#[test]
fn compare_edges() {
    assert_eq!(
        eval("li $t0, 0x80000000\n li $t1, 1\n slt $v1, $t0, $t1"),
        1
    );
    assert_eq!(
        eval("li $t0, 0x80000000\n li $t1, 1\n sltu $v1, $t0, $t1"),
        0
    );
    assert_eq!(eval("li $t0, -1\n slti $v1, $t0, 0"), 1);
    assert_eq!(eval("li $t0, -1\n sltiu $v1, $t0, 0"), 0);
    // sltiu compares against the *sign-extended* immediate as unsigned.
    assert_eq!(eval("li $t0, 5\n sltiu $v1, $t0, -1"), 1);
}

#[test]
fn immediate_extension_rules() {
    // andi/ori/xori zero-extend.
    assert_eq!(
        eval("li $t0, 0xFFFF0000\n ori $v1, $t0, 0x8000"),
        0xFFFF_8000
    );
    assert_eq!(
        eval("li $t0, 0xFFFFFFFF\n andi $v1, $t0, 0x8000"),
        0x0000_8000
    );
    assert_eq!(eval("li $t0, 0\n xori $v1, $t0, 0xFFFF"), 0x0000_FFFF);
    // addiu sign-extends.
    assert_eq!(eval("li $t0, 0\n addiu $v1, $t0, -1"), u32::MAX);
}

#[test]
fn hi_lo_precision() {
    // Signed multiply of negatives.
    assert_eq!(
        eval("li $t0, -3\n li $t1, 4\n mult $t0, $t1\n mflo $v1"),
        (-12i32) as u32
    );
    assert_eq!(
        eval("li $t0, -3\n li $t1, 4\n mult $t0, $t1\n mfhi $v1"),
        u32::MAX // sign extension of the 64-bit product
    );
    // Signed division truncates toward zero; remainder keeps dividend sign.
    assert_eq!(
        eval("li $t0, -7\n li $t1, 2\n div $t0, $t1\n mflo $v1"),
        (-3i32) as u32
    );
    assert_eq!(
        eval("li $t0, -7\n li $t1, 2\n div $t0, $t1\n mfhi $v1"),
        (-1i32) as u32
    );
    // mthi/mtlo round trip.
    assert_eq!(eval("li $t0, 77\n mthi $t0\n mfhi $v1"), 77);
    assert_eq!(eval("li $t0, 78\n mtlo $t0\n mflo $v1"), 78);
}

#[test]
fn branch_taken_and_not_taken() {
    for (op, a, b, expect) in [
        ("beq", 5, 5, 1u32),
        ("beq", 5, 6, 0),
        ("bne", 5, 6, 1),
        ("bne", 5, 5, 0),
    ] {
        let body = format!(
            "li $t0, {a}\n li $t1, {b}\n li $v1, 0\n {op} $t0, $t1, taken\n b done\ntaken: li $v1, 1\ndone:"
        );
        assert_eq!(eval(&body), expect, "{op} {a},{b}");
    }
    for (op, value, expect) in [
        ("blez", -1i32, 1u32),
        ("blez", 0, 1),
        ("blez", 1, 0),
        ("bgtz", 1, 1),
        ("bgtz", 0, 0),
        ("bltz", -1, 1),
        ("bltz", 0, 0),
        ("bgez", 0, 1),
        ("bgez", -1, 0),
    ] {
        let body = format!(
            "li $t0, {value}\n li $v1, 0\n {op} $t0, taken\n b done\ntaken: li $v1, 1\ndone:"
        );
        assert_eq!(eval(&body), expect, "{op} {value}");
    }
}

#[test]
fn bltzal_links_even_when_not_taken() {
    // Per the R2000 manual, the link register is written unconditionally.
    let body = "
        li   $t0, 1          # positive: branch not taken
        la   $t1, here
        bltzal $t0, target
here:
        move $v1, $ra        # $ra points past the delay slot = here
        subu $v1, $v1, $t1
        b    done
target:
        li   $v1, 999
done:";
    // The delay-slot nop sits between the branch and `here`, so the
    // link value is exactly `here`.
    assert_eq!(eval(body), 0);
}

#[test]
fn sub_byte_memory() {
    // sb/lb/lbu and sh/lh/lhu sign behaviour.
    let body = "
        li   $t0, 0xFF
        sb   $t0, -4($sp)
        lb   $t1, -4($sp)       # sign-extends to -1
        lbu  $t2, -4($sp)       # zero-extends to 255
        addu $v1, $t1, $t2      # -1 + 255 = 254
    ";
    assert_eq!(eval(body), 254);
    let body = "
        li   $t0, 0x8000
        sh   $t0, -8($sp)
        lh   $t1, -8($sp)
        lhu  $t2, -8($sp)
        subu $v1, $t2, $t1      # 0x8000 - (-0x8000) = 0x10000
    ";
    assert_eq!(eval(body), 0x1_0000);
}

#[test]
fn fp_single_vs_double_precision() {
    // 1/3 in single then widened differs from 1/3 in double — checks the
    // emulator honours the format distinction.
    let body = "
        .data
        .align 3
one:    .double 1.0
three:  .double 3.0
onef:   .float 1.0
threef: .float 3.0
        .text
        la   $t0, one
        l.d  $f2, 0($t0)
        la   $t0, three
        l.d  $f4, 0($t0)
        div.d $f6, $f2, $f4      # double 1/3
        la   $t0, onef
        l.s  $f8, 0($t0)
        la   $t0, threef
        l.s  $f10, 0($t0)
        div.s $f12, $f8, $f10    # single 1/3
        cvt.d.s $f14, $f12       # widen
        c.eq.d $f6, $f14
        li   $v1, 1
        bc1f  differ
        li   $v1, 0
differ:";
    assert_eq!(
        eval(body),
        1,
        "single-precision 1/3 widened must differ from double"
    );
}

proptest! {
    /// lwr+lwl reconstruct any unaligned word exactly.
    #[test]
    fn unaligned_load_pair(bytes in proptest::array::uniform8(any::<u8>()), offset in 0u32..5) {
        let byte_list = bytes.map(|b| b.to_string()).join(", ");
        let body = format!(
            "
            .data
buf:        .byte {byte_list}
            .text
            la   $t0, buf
            .set noreorder
            lwr  $v1, {offset}($t0)
            lwl  $v1, {off3}($t0)
            .set reorder
            ",
            off3 = offset + 3
        );
        let expected = u32::from_le_bytes([
            bytes[offset as usize],
            bytes[offset as usize + 1],
            bytes[offset as usize + 2],
            bytes[offset as usize + 3],
        ]);
        prop_assert_eq!(eval(&body), expected);
    }

    /// swr+swl store any word to any unaligned address exactly.
    #[test]
    fn unaligned_store_pair(value: u32, offset in 0u32..5) {
        let body = format!(
            "
            .data
buf:        .space 12
            .text
            la   $t0, buf
            li   $t1, {value}
            .set noreorder
            swr  $t1, {offset}($t0)
            swl  $t1, {off3}($t0)
            lwr  $v1, {offset}($t0)
            lwl  $v1, {off3}($t0)
            .set reorder
            ",
            off3 = offset + 3
        );
        prop_assert_eq!(eval(&body), value);
    }

    /// Integer arithmetic matches Rust's wrapping semantics.
    #[test]
    fn alu_matches_rust(a: i32, b: i32) {
        let body = format!("li $t0, {a}\n li $t1, {b}\n addu $v1, $t0, $t1");
        prop_assert_eq!(eval(&body), (a as u32).wrapping_add(b as u32));
        let body = format!("li $t0, {a}\n li $t1, {b}\n xor $v1, $t0, $t1");
        prop_assert_eq!(eval(&body), (a ^ b) as u32);
        let body = format!("li $t0, {a}\n li $t1, {b}\n slt $v1, $t0, $t1");
        prop_assert_eq!(eval(&body), u32::from(a < b));
    }

    /// mult's 64-bit product matches Rust's.
    #[test]
    fn mult_matches_rust(a: i32, b: i32) {
        let product = i64::from(a) * i64::from(b);
        let body = format!("li $t0, {a}\n li $t1, {b}\n mult $t0, $t1\n mflo $v1");
        prop_assert_eq!(eval(&body), product as u32);
        let body = format!("li $t0, {a}\n li $t1, {b}\n mult $t0, $t1\n mfhi $v1");
        prop_assert_eq!(eval(&body), (product >> 32) as u32);
    }
}
