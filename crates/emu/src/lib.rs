//! Functional MIPS R2000 emulator and trace capture.
//!
//! The CCRP paper's performance methodology is trace driven: the authors
//! profiled DECstation 3100 programs with `pixie` and replayed the
//! resulting instruction-address traces through a cache/memory simulator.
//! This crate is the reproduction's `pixie` + R2000: it executes images
//! assembled by [`ccrp-asm`](ccrp_asm) and records
//! [`ProgramTrace`]s for [`ccrp-sim`] to replay.
//!
//! Modeled faithfully: branch delay slots, little-endian data layout,
//! HI/LO multiply/divide, overflow traps, the R2010 FPA subset emitted by
//! 1992 compilers, and SPIM-style syscalls for I/O. Deliberately absent:
//! cycle timing (that is `ccrp-sim`'s job) and kernel mode.
//!
//! [`ccrp-sim`]: https://example.invalid/ccrp
//!
//! # Examples
//!
//! ```
//! use ccrp_asm::assemble;
//! use ccrp_emu::{Machine, ProgramTrace};
//!
//! let image = assemble("
//!     main:
//!         li   $t0, 3
//!     loop:
//!         addiu $t0, $t0, -1
//!         bnez $t0, loop
//!         li   $v0, 10
//!         syscall
//! ")?;
//! let mut trace = ProgramTrace::new();
//! Machine::new(&image).run(&mut trace)?;
//! assert!(trace.len() > 6); // loop ran three times
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checkpoint;
mod error;
mod isa_core;
mod machine;
mod memory;
mod state;
mod trace;

pub use ccrp::{BudgetExhausted, DegradePolicy, StepBudget};
pub use checkpoint::{Checkpoint, CheckpointError, CHECKPOINT_VERSION};
pub use error::EmuError;
pub use isa_core::IsaCore;
pub use machine::{Machine, MachineConfig, RunSummary};
pub use memory::{Memory, PAGE_BYTES};
pub use state::ArchState;
pub use trace::{CountingSink, NullSink, ProgramTrace, TraceSink};

#[cfg(test)]
mod tests {
    use super::*;
    use ccrp_asm::assemble;

    fn run_src(src: &str) -> (Machine, RunSummary) {
        let image = assemble(src).expect("assembles");
        let mut m = Machine::new(&image);
        let summary = m.run(&mut NullSink).expect("runs");
        (m, summary)
    }

    #[test]
    fn arithmetic_loop() {
        // Sum 1..=10 = 55.
        let (m, _) = run_src(
            "
            main:
                li   $t0, 10
                li   $t1, 0
            loop:
                addu $t1, $t1, $t0
                addiu $t0, $t0, -1
                bnez $t0, loop
                li   $v0, 1
                move $a0, $t1
                syscall
                li   $v0, 10
                syscall
            ",
        );
        assert_eq!(m.output(), "55");
    }

    #[test]
    fn delay_slot_executes_before_branch_target() {
        let (m, _) = run_src(
            "
            .set noreorder
            main:
                li   $t0, 0
                b    after
                addiu $t0, $t0, 1    # delay slot: must execute
                addiu $t0, $t0, 100  # skipped
            after:
                move $a0, $t0
                li   $v0, 1
                syscall
                li   $v0, 10
                syscall
                nop
            ",
        );
        assert_eq!(m.output(), "1");
    }

    #[test]
    fn jal_links_past_delay_slot() {
        let (m, _) = run_src(
            "
            .set noreorder
            main:
                jal  func
                li   $t5, 7          # delay slot
                move $a0, $t5
                li   $v0, 1
                syscall
                li   $v0, 10
                syscall
                nop
            func:
                jr   $ra
                nop
            ",
        );
        assert_eq!(m.output(), "7");
    }

    #[test]
    fn function_call_with_stack() {
        // Recursive factorial(6) = 720 through the standard calling
        // convention.
        let (m, _) = run_src(
            "
            main:
                li   $a0, 6
                jal  fact
                move $a0, $v0
                li   $v0, 1
                syscall
                li   $v0, 10
                syscall
            fact:
                addiu $sp, $sp, -8
                sw   $ra, 4($sp)
                sw   $a0, 0($sp)
                li   $v0, 1
                blez $a0, done
                addiu $a0, $a0, -1
                jal  fact
                lw   $a0, 0($sp)
                mult $v0, $a0
                mflo $v0
            done:
                lw   $ra, 4($sp)
                addiu $sp, $sp, 8
                jr   $ra
            ",
        );
        assert_eq!(m.output(), "720");
    }

    #[test]
    fn memory_and_strings() {
        let (m, _) = run_src(
            r#"
            .data
            msg: .asciiz "hi "
            buf: .space 4
            .text
            main:
                li  $v0, 4
                la  $a0, msg
                syscall
                la  $t0, buf
                li  $t1, 0x216B6F21   # LE bytes: 21 6F 6B 21
                sw  $t1, 0($t0)
                lb  $a0, 2($t0)       # 'k' = 0x6B
                li  $v0, 11
                syscall
                li  $v0, 10
                syscall
            "#,
        );
        assert_eq!(m.output(), "hi k");
    }

    #[test]
    fn signed_and_unsigned_compares() {
        let (m, _) = run_src(
            "
            main:
                li   $t0, -1
                li   $t1, 1
                slt  $t2, $t0, $t1      # signed: -1 < 1 -> 1
                sltu $t3, $t0, $t1      # unsigned: 0xFFFFFFFF < 1 -> 0
                sll  $t2, $t2, 1
                or   $a0, $t2, $t3      # 2
                li   $v0, 1
                syscall
                li   $v0, 10
                syscall
            ",
        );
        assert_eq!(m.output(), "2");
    }

    #[test]
    fn hi_lo_multiply_divide() {
        let (m, _) = run_src(
            "
            main:
                li   $t0, 100000
                li   $t1, 100000
                multu $t0, $t1         # 10^10 = 0x2540BE400
                mfhi $a0               # 2
                li   $v0, 1
                syscall
                li   $t2, 47
                li   $t3, 10
                div  $t2, $t3
                mflo $a0               # 4
                li   $v0, 1
                syscall
                mfhi $a0               # 7
                li   $v0, 1
                syscall
                li   $v0, 10
                syscall
            ",
        );
        assert_eq!(m.output(), "247");
    }

    #[test]
    fn floating_point_basics() {
        let (m, _) = run_src(
            "
            .data
            two:  .word 0            # placeholder
            .text
            main:
                li   $t0, 3
                mtc1 $t0, $f0
                cvt.d.w $f2, $f0      # 3.0
                li   $t0, 4
                mtc1 $t0, $f0
                cvt.d.w $f4, $f0      # 4.0
                mul.d $f6, $f2, $f4   # 12.0
                add.d $f6, $f6, $f2   # 15.0
                cvt.w.d $f8, $f6
                mfc1 $a0, $f8
                li   $v0, 1
                syscall
                c.lt.d $f2, $f4
                bc1t yes
                li   $a0, 0
                b    print
            yes:
                li   $a0, 1
            print:
                li   $v0, 1
                syscall
                li   $v0, 10
                syscall
            ",
        );
        assert_eq!(m.output(), "151");
    }

    #[test]
    fn unaligned_word_with_lwl_lwr() {
        let (m, _) = run_src(
            "
            .data
            buf: .byte 0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77
            .text
            main:
                la   $t0, buf
                .set noreorder
                lwr  $t1, 1($t0)
                lwl  $t1, 4($t0)     # word at buf+1 = 0x44332211
                .set reorder
                srl  $a0, $t1, 24    # 0x44 = 68
                li   $v0, 1
                syscall
                li   $v0, 10
                syscall
            ",
        );
        assert_eq!(m.output(), "68");
    }

    #[test]
    fn jump_table_dispatch() {
        let (m, _) = run_src(
            "
            main:
                li   $t0, 2
                sll  $t0, $t0, 2
                la   $t1, table
                addu $t1, $t1, $t0
                lw   $t2, 0($t1)
                jr   $t2
            case0: li $a0, 10
                   b  print
            case1: li $a0, 20
                   b  print
            case2: li $a0, 30
                   b  print
            print:
                li   $v0, 1
                syscall
                li   $v0, 10
                syscall
            table: .word case0, case1, case2
            ",
        );
        assert_eq!(m.output(), "30");
    }

    #[test]
    fn traps_are_reported() {
        let image = assemble("main: li $t0, 1\n li $t1, 0\n div $t0, $t1").unwrap();
        let err = Machine::new(&image).run(&mut NullSink).unwrap_err();
        assert!(matches!(err, EmuError::DivideByZero { .. }));

        let image =
            assemble("main: lui $t0, 0x7FFF\n ori $t0, $t0, 0xFFFF\n add $t0, $t0, $t0").unwrap();
        let err = Machine::new(&image).run(&mut NullSink).unwrap_err();
        assert!(matches!(err, EmuError::ArithmeticOverflow { .. }));

        let image = assemble("main: li $t0, 2\n lw $t1, 1($t0)").unwrap();
        let err = Machine::new(&image).run(&mut NullSink).unwrap_err();
        assert!(matches!(err, EmuError::UnalignedAccess { align: 4, .. }));

        let image = assemble("main: li $t0, 0x00E00000\n lw $t1, 0($t0)").unwrap();
        let err = Machine::new(&image).run(&mut NullSink).unwrap_err();
        assert!(matches!(err, EmuError::UnmappedRead { .. }));

        let image = assemble("main: break 3").unwrap();
        let err = Machine::new(&image).run(&mut NullSink).unwrap_err();
        assert!(matches!(err, EmuError::BreakTrap { code: 3, .. }));
    }

    #[test]
    fn step_limit_enforced() {
        let image = assemble("main: b main").unwrap();
        let mut m = Machine::with_config(
            &image,
            MachineConfig {
                max_steps: 100,
                ..MachineConfig::default()
            },
        );
        let err = m.run(&mut NullSink).unwrap_err();
        assert!(matches!(err, EmuError::StepLimitExceeded { limit: 100 }));
    }

    #[test]
    fn step_budget_bounds_runaway_program() {
        let image = assemble("main: b main").unwrap();
        let mut m = Machine::new(&image);
        let mut budget = StepBudget::limited(50);
        let err = m.run_budgeted(&mut NullSink, &mut budget).unwrap_err();
        assert!(matches!(
            err,
            EmuError::BudgetExhausted {
                steps: 50,
                cancelled: false
            }
        ));
        assert_eq!(m.steps(), 50);
    }

    #[test]
    fn step_budget_is_invisible_when_sufficient() {
        let src = "
            main:
                li   $t0, 10
                li   $t1, 0
            loop:
                addu $t1, $t1, $t0
                addiu $t0, $t0, -1
                bnez $t0, loop
                li   $v0, 10
                syscall
            ";
        let (_, plain) = run_src(src);
        let image = assemble(src).expect("assembles");
        let mut m = Machine::new(&image);
        let mut budget = StepBudget::limited(1_000_000);
        let budgeted = m.run_budgeted(&mut NullSink, &mut budget).expect("runs");
        assert_eq!(budgeted, plain);
        assert_eq!(budget.spent(), budgeted.instructions);
    }

    #[test]
    fn cancellation_flag_stops_the_run() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;

        let image = assemble("main: b main").unwrap();
        let mut m = Machine::new(&image);
        let flag = Arc::new(AtomicBool::new(true));
        let mut budget = StepBudget::unlimited().with_cancel(flag);
        let err = m.run_budgeted(&mut NullSink, &mut budget).unwrap_err();
        assert!(matches!(
            err,
            EmuError::BudgetExhausted {
                cancelled: true,
                ..
            }
        ));
        // A raised flag is observed within one poll interval.
        assert!(m.steps() < 1024);
    }

    #[test]
    fn zero_register_is_immutable() {
        let (m, _) = run_src(
            "
            main:
                li   $t0, 9
                addu $zero, $t0, $t0
                move $a0, $zero
                li   $v0, 1
                syscall
                li   $v0, 10
                syscall
            ",
        );
        assert_eq!(m.output(), "0");
    }

    #[test]
    fn trace_capture_matches_counts() {
        let image = assemble(
            "
            main:
                li   $t0, 4
                sw   $t0, -4($sp)
                lw   $t1, -4($sp)
                li   $v0, 10
                syscall
            ",
        )
        .unwrap();
        let mut trace = ProgramTrace::new();
        let mut m = Machine::new(&image);
        let summary = m.run(&mut trace).unwrap();
        assert_eq!(trace.len() as u64, summary.instructions);
        assert_eq!(trace.data_accesses(), 2);
        // all fetches inside text
        for (pc, _) in trace.iter() {
            assert!(pc < image.text_size());
        }
    }

    #[test]
    fn read_int_input_queue() {
        let image = assemble(
            "
            main:
                li  $v0, 5
                syscall
                move $a0, $v0
                li  $v0, 1
                syscall
                li  $v0, 10
                syscall
            ",
        )
        .unwrap();
        let mut m = Machine::new(&image);
        m.push_input([42]);
        m.run(&mut NullSink).unwrap();
        assert_eq!(m.output(), "42");
    }

    #[test]
    fn exit2_code_propagates() {
        let (_, summary) = run_src("main: li $a0, 3\n li $v0, 17\n syscall");
        assert_eq!(summary.exit_code, 3);
    }

    #[test]
    fn sbrk_allocates_readable_memory() {
        let (m, _) = run_src(
            "
            main:
                li  $a0, 4096
                li  $v0, 9
                syscall
                lw  $t0, 0($v0)     # freshly sbrk'd memory reads as 0
                move $a0, $t0
                li  $v0, 1
                syscall
                li  $v0, 10
                syscall
            ",
        );
        assert_eq!(m.output(), "0");
    }

    #[test]
    fn swl_swr_store_unaligned() {
        let (m, _) = run_src(
            "
            .data
            buf: .space 8
            .text
            main:
                la   $t0, buf
                li   $t1, 0x44332211
                .set noreorder
                swr  $t1, 1($t0)
                swl  $t1, 4($t0)
                lwr  $t2, 1($t0)
                lwl  $t2, 4($t0)
                .set reorder
                bne  $t1, $t2, bad
                li   $a0, 1
                b    print
            bad:
                li   $a0, 0
            print:
                li   $v0, 1
                syscall
                li   $v0, 10
                syscall
            ",
        );
        assert_eq!(m.output(), "1");
    }
}

#[cfg(test)]
mod compressed_rom_tests {
    use super::*;
    use ccrp::{CompressedImage, DegradePolicy};
    use ccrp_asm::{assemble, ProgramImage};
    use ccrp_compress::{BlockAlignment, ByteCode, ByteHistogram};

    const SUM_SRC: &str = "
        main:
            li   $t0, 10
            li   $t1, 0
        loop:
            addu $t1, $t1, $t0
            addiu $t0, $t0, -1
            bnez $t0, loop
            li   $v0, 1
            move $a0, $t1
            syscall
            li   $v0, 10
            syscall
        ";

    fn rom_for(image: &ProgramImage) -> CompressedImage {
        let code = ByteCode::preselected(&ByteHistogram::of(image.text_bytes())).unwrap();
        CompressedImage::build(
            image.text_base(),
            image.text_bytes(),
            code,
            BlockAlignment::Word,
        )
        .unwrap()
    }

    #[test]
    fn compressed_rom_matches_plain_execution() {
        let image = assemble(SUM_SRC).unwrap();
        let mut plain = Machine::new(&image);
        let plain_summary = plain.run(&mut NullSink).unwrap();
        let rom = rom_for(&image);
        for policy in [
            DegradePolicy::Abort,
            DegradePolicy::Trap,
            DegradePolicy::Retry { attempts: 2 },
        ] {
            let mut m =
                Machine::with_compressed_text(&image, &rom, policy, MachineConfig::default())
                    .unwrap();
            let summary = m.run(&mut NullSink).unwrap();
            assert_eq!(m.output(), plain.output(), "{policy:?}");
            assert_eq!(summary, plain_summary, "{policy:?}");
        }
    }

    #[test]
    fn abort_policy_fails_at_construction() {
        let image = assemble(SUM_SRC).unwrap();
        let mut rom = rom_for(&image);
        rom.attach_block_crcs();
        rom.corrupt_block_byte(0, 0, 0x08).unwrap();
        assert!(matches!(
            Machine::with_compressed_text(
                &image,
                &rom,
                DegradePolicy::Abort,
                MachineConfig::default()
            ),
            Err(EmuError::MachineCheck { pc: 0 })
        ));
    }

    #[test]
    fn trap_policy_machine_checks_at_first_corrupt_fetch() {
        let image = assemble(SUM_SRC).unwrap();
        let mut rom = rom_for(&image);
        rom.attach_block_crcs();
        rom.corrupt_block_byte(0, 0, 0x08).unwrap();
        // Construction succeeds; the fault surfaces at the fetch.
        let mut m = Machine::with_compressed_text(
            &image,
            &rom,
            DegradePolicy::Trap,
            MachineConfig::default(),
        )
        .unwrap();
        assert!(matches!(
            m.run(&mut NullSink),
            Err(EmuError::MachineCheck { pc: 0 })
        ));
    }

    #[test]
    fn retry_policy_exhausts_on_persistent_corruption() {
        let image = assemble(SUM_SRC).unwrap();
        let mut rom = rom_for(&image);
        rom.attach_block_crcs();
        rom.corrupt_block_byte(0, 0, 0x08).unwrap();
        let mut m = Machine::with_compressed_text(
            &image,
            &rom,
            DegradePolicy::Retry { attempts: 3 },
            MachineConfig::default(),
        )
        .unwrap();
        assert!(matches!(
            m.run(&mut NullSink),
            Err(EmuError::MachineCheck { .. })
        ));
    }

    #[test]
    fn probe_log_records_demand_expansions() {
        use ccrp_probe::Event;

        let image = assemble(SUM_SRC).unwrap();
        let rom = rom_for(&image);
        let mut m = Machine::with_compressed_text(
            &image,
            &rom,
            DegradePolicy::Trap,
            MachineConfig::default(),
        )
        .unwrap();
        m.enable_probe();
        let summary = m.run(&mut NullSink).unwrap();
        let log = m.take_probe_log().expect("probe was enabled");
        let refills: Vec<_> = log
            .events()
            .iter()
            .filter_map(|e| match e.event {
                Event::RefillDone { address, bytes, .. } => Some((e.cycle, address, bytes)),
                _ => None,
            })
            .collect();
        // One demand expansion per executed line, each with bus traffic,
        // stamped within the run.
        assert!(!refills.is_empty());
        for &(cycle, address, bytes) in &refills {
            assert!(cycle <= summary.instructions);
            assert!(address.is_multiple_of(32));
            assert!(bytes > 0 && bytes % 4 == 0);
        }
        // Each line is expanded at most once: addresses are unique.
        let mut addrs: Vec<u32> = refills.iter().map(|r| r.1).collect();
        addrs.sort_unstable();
        addrs.dedup();
        assert_eq!(addrs.len(), refills.len());
        // Probing must not change execution.
        let mut plain = Machine::with_compressed_text(
            &image,
            &rom,
            DegradePolicy::Trap,
            MachineConfig::default(),
        )
        .unwrap();
        assert_eq!(plain.run(&mut NullSink).unwrap(), summary);
    }

    #[test]
    fn probe_log_records_retry_failures() {
        use ccrp_probe::Event;

        let image = assemble(SUM_SRC).unwrap();
        let mut rom = rom_for(&image);
        rom.attach_block_crcs();
        rom.corrupt_block_byte(0, 0, 0x08).unwrap();
        let mut m = Machine::with_compressed_text(
            &image,
            &rom,
            DegradePolicy::Retry { attempts: 2 },
            MachineConfig::default(),
        )
        .unwrap();
        m.enable_probe();
        assert!(m.run(&mut NullSink).is_err());
        let log = m.take_probe_log().unwrap();
        let failures = log
            .events()
            .iter()
            .filter(|e| matches!(e.event, Event::IntegrityFailure { .. }))
            .count();
        let backoffs = log
            .events()
            .iter()
            .filter(|e| matches!(e.event, Event::RetryBackoff { .. }))
            .count();
        assert_eq!(failures, 3, "initial read + 2 retries");
        assert_eq!(backoffs, 2);
        assert!(!log
            .events()
            .iter()
            .any(|e| matches!(e.event, Event::RefillDone { .. })));
    }

    #[test]
    fn mismatched_rom_rejected() {
        let image = assemble(SUM_SRC).unwrap();
        let other = assemble("main: li $v0, 10\n syscall").unwrap();
        let rom = rom_for(&other);
        // Too small to cover the program's text.
        assert!(matches!(
            Machine::with_compressed_text(
                &image,
                &rom,
                DegradePolicy::Abort,
                MachineConfig::default()
            ),
            Err(EmuError::RomMismatch)
        ));
    }
}
