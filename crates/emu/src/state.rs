use std::collections::VecDeque;

use crate::memory::Memory;

/// The complete architectural state of a [`Machine`](crate::Machine):
/// everything the program can observe, separated from the stepping logic
/// and from derived caches (the pre-decoded text, the compressed-ROM
/// expansion flags) that can be rebuilt from the program image.
///
/// Two machines with equal `ArchState` behave identically from that point
/// on, whatever path got them there — this is the unit a
/// [`Checkpoint`](crate::Checkpoint) snapshots and the equality the
/// checkpoint test battery asserts instruction by instruction. FP
/// registers are raw bits, so `Eq` is exact (no NaN ambiguity).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchState {
    /// General-purpose registers; index 0 is hardwired zero.
    pub regs: [u32; 32],
    /// Multiply/divide `hi` result register.
    pub hi: u32,
    /// Multiply/divide `lo` result register.
    pub lo: u32,
    /// R2010 FP registers as raw bits (doubles live in even/odd pairs).
    pub fpr: [u32; 32],
    /// The CP1 condition flag set by `c.eq.s`-family compares.
    pub fp_cond: bool,
    /// Address of the next instruction to execute.
    pub pc: u32,
    /// Address after that — distinct from `pc + 4` inside branch delay
    /// slots, which is why it must be part of the snapshot.
    pub next_pc: u32,
    /// Current program break (syscall 9).
    pub brk: u32,
    /// Exit code once the program has exited via syscall.
    pub exit: Option<i32>,
    /// Dynamic instructions retired so far — the checkpoint clock.
    pub steps: u64,
    /// Everything the program printed so far.
    pub output: String,
    /// Integers queued for the `read_int` syscall.
    pub input: VecDeque<i32>,
    /// Byte-addressed paged memory (text, data, stack, heap).
    pub mem: Memory,
}
