//! Versioned, serializable machine checkpoints.
//!
//! A [`Checkpoint`] captures a machine's [`ArchState`] (plus which
//! compressed-ROM lines were already expanded, so demand-policy probe
//! event streams replay identically) at an instruction boundary.
//! [`Machine::restore`] resumes deterministically: the restored machine
//! retires the same instruction stream, produces the same output, and
//! faults at the same step as the original.
//!
//! Derived state is deliberately *not* serialized — the pre-decoded text
//! and the ROM's expanded line bytes are rebuilt from the program image
//! on restore, which keeps checkpoints small and means a checkpoint can
//! move between a plain machine and any compressed-text variant of the
//! same program.
//!
//! On-disk form is a [`write_frame`] snapshot: CRC-checked header
//! carrying [`CHECKPOINT_VERSION`] and the program fingerprint, so a
//! stomped file is rejected with a typed [`CheckpointError`], never a
//! panic or a silently diverging resume.

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

use ccrp::{read_frame, write_frame, ByteReader, ByteWriter, SnapshotError};
use ccrp_probe::{Event, Probe};

use crate::machine::Machine;
use crate::memory::{Memory, PAGE_BYTES};
use crate::state::ArchState;

/// Current checkpoint payload format version.
pub const CHECKPOINT_VERSION: u32 = 1;

/// Why a checkpoint could not be deserialized or restored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum CheckpointError {
    /// The snapshot frame or a payload field was rejected.
    Snapshot(SnapshotError),
    /// The checkpoint belongs to a different program than the machine it
    /// was restored into.
    ProgramMismatch {
        /// The machine's program fingerprint.
        expected: u32,
        /// The checkpoint's program fingerprint.
        found: u32,
    },
    /// Re-expanding a compressed-ROM line recorded as expanded failed —
    /// the ROM corrupted between checkpoint and restore.
    CorruptRom {
        /// First address of the line that failed to expand.
        address: u32,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Snapshot(err) => write!(f, "bad snapshot frame: {err}"),
            CheckpointError::ProgramMismatch { expected, found } => write!(
                f,
                "checkpoint is for a different program: machine fingerprint \
                 {expected:#010x}, checkpoint fingerprint {found:#010x}"
            ),
            CheckpointError::CorruptRom { address } => {
                write!(f, "compressed ROM line at {address:#x} failed to re-expand")
            }
        }
    }
}

impl Error for CheckpointError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CheckpointError::Snapshot(err) => Some(err),
            _ => None,
        }
    }
}

impl From<SnapshotError> for CheckpointError {
    fn from(err: SnapshotError) -> Self {
        CheckpointError::Snapshot(err)
    }
}

/// A machine checkpoint: full architectural state at an instruction
/// boundary, tagged with the program it belongs to.
///
/// # Examples
///
/// ```
/// use ccrp_asm::assemble;
/// use ccrp_emu::{Checkpoint, Machine, NullSink};
///
/// let image = assemble("
///     main:
///         li   $t0, 3
///     loop:
///         addiu $t0, $t0, -1
///         bnez $t0, loop
///         li   $v0, 10
///         syscall
/// ")?;
/// let mut m = Machine::new(&image);
/// m.step(&mut NullSink)?;
/// let bytes = m.checkpoint().to_bytes();
///
/// let mut resumed = Machine::new(&image);
/// resumed.restore(&Checkpoint::from_bytes(&bytes)?)?;
/// assert_eq!(resumed.steps(), 1);
/// assert_eq!(resumed.arch_state(), m.arch_state());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    pub(crate) fingerprint: u32,
    pub(crate) state: ArchState,
    /// Which ROM lines were expanded, for machines running under a
    /// demand degradation policy; `None` for plain machines.
    pub(crate) rom_expanded: Option<Vec<bool>>,
}

impl Checkpoint {
    /// Fingerprint of the program this checkpoint belongs to.
    pub fn fingerprint(&self) -> u32 {
        self.fingerprint
    }

    /// Instructions retired when the checkpoint was taken.
    pub fn steps(&self) -> u64 {
        self.state.steps
    }

    /// Program counter at the checkpoint.
    pub fn pc(&self) -> u32 {
        self.state.pc
    }

    /// The captured architectural state.
    pub fn arch_state(&self) -> &ArchState {
        &self.state
    }

    /// Serializes into a CRC-framed snapshot (see [`ccrp::write_frame`]
    /// for the header layout).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        for reg in &self.state.regs {
            w.put_u32(*reg);
        }
        w.put_u32(self.state.hi);
        w.put_u32(self.state.lo);
        for reg in &self.state.fpr {
            w.put_u32(*reg);
        }
        w.put_u8(u8::from(self.state.fp_cond));
        w.put_u32(self.state.pc);
        w.put_u32(self.state.next_pc);
        w.put_u32(self.state.brk);
        match self.state.exit {
            None => w.put_u8(0),
            Some(code) => {
                w.put_u8(1);
                w.put_i32(code);
            }
        }
        w.put_u64(self.state.steps);
        w.put_u64(self.state.output.len() as u64);
        w.put_bytes(self.state.output.as_bytes());
        w.put_u64(self.state.input.len() as u64);
        for value in &self.state.input {
            w.put_i32(*value);
        }
        w.put_u64(self.state.mem.mapped_pages() as u64);
        for (index, page) in self.state.mem.pages() {
            w.put_u32(index);
            w.put_bytes(page);
        }
        match &self.rom_expanded {
            None => w.put_u8(0),
            Some(flags) => {
                w.put_u8(1);
                w.put_u64(flags.len() as u64);
                for flag in flags {
                    w.put_u8(u8::from(*flag));
                }
            }
        }
        write_frame(CHECKPOINT_VERSION, self.fingerprint, &w.into_bytes())
    }

    /// Deserializes checkpoint bytes, validating the frame CRCs, the
    /// format version, and every payload field.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Snapshot`] on any corruption: bad magic or
    /// CRCs, truncation, an unsupported version, or a structurally
    /// invalid payload. Never panics on hostile input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        let (header, payload) = read_frame(bytes)?;
        if header.version != CHECKPOINT_VERSION {
            return Err(SnapshotError::UnsupportedVersion {
                found: header.version,
            }
            .into());
        }
        let mut r = ByteReader::new(payload);
        let mut regs = [0u32; 32];
        for reg in &mut regs {
            *reg = r.read_u32()?;
        }
        let hi = r.read_u32()?;
        let lo = r.read_u32()?;
        let mut fpr = [0u32; 32];
        for reg in &mut fpr {
            *reg = r.read_u32()?;
        }
        let fp_cond = read_bool(&mut r, "fp_cond flag")?;
        let pc = r.read_u32()?;
        let next_pc = r.read_u32()?;
        let brk = r.read_u32()?;
        let exit = match r.read_u8()? {
            0 => None,
            1 => Some(r.read_i32()?),
            _ => return Err(SnapshotError::Malformed { what: "exit tag" }.into()),
        };
        let steps = r.read_u64()?;
        let output_len = r.read_len("output length")?;
        let output = String::from_utf8(r.take(output_len)?.to_vec()).map_err(|_| {
            SnapshotError::Malformed {
                what: "output utf-8",
            }
        })?;
        let input_count = r.read_u64()?;
        if input_count > (r.remaining() / 4) as u64 {
            return Err(SnapshotError::Malformed {
                what: "input count",
            }
            .into());
        }
        let mut input = VecDeque::with_capacity(input_count as usize);
        for _ in 0..input_count {
            input.push_back(r.read_i32()?);
        }
        let page_count = r.read_u64()?;
        if page_count > (r.remaining() / (4 + PAGE_BYTES)) as u64 {
            return Err(SnapshotError::Malformed {
                what: "memory page count",
            }
            .into());
        }
        let mut mem = Memory::new();
        for _ in 0..page_count {
            let index = r.read_u32()?;
            let bytes = r.take(PAGE_BYTES)?;
            let mut page = [0u8; PAGE_BYTES];
            page.copy_from_slice(bytes);
            mem.install_page(index, &page);
        }
        let rom_expanded = match r.read_u8()? {
            0 => None,
            1 => {
                let count = r.read_len("rom line count")?;
                let mut flags = Vec::with_capacity(count);
                for _ in 0..count {
                    flags.push(read_bool(&mut r, "rom line flag")?);
                }
                Some(flags)
            }
            _ => {
                return Err(SnapshotError::Malformed {
                    what: "rom flags tag",
                }
                .into())
            }
        };
        if !r.is_exhausted() {
            return Err(SnapshotError::Malformed {
                what: "trailing payload bytes",
            }
            .into());
        }
        Ok(Checkpoint {
            fingerprint: header.fingerprint,
            state: ArchState {
                regs,
                hi,
                lo,
                fpr,
                fp_cond,
                pc,
                next_pc,
                brk,
                exit,
                steps,
                output,
                input,
                mem,
            },
            rom_expanded,
        })
    }
}

fn read_bool(r: &mut ByteReader<'_>, what: &'static str) -> Result<bool, CheckpointError> {
    match r.read_u8()? {
        0 => Ok(false),
        1 => Ok(true),
        _ => Err(SnapshotError::Malformed { what }.into()),
    }
}

impl Machine {
    /// The machine's complete architectural state.
    pub fn arch_state(&self) -> &ArchState {
        &self.state
    }

    /// Fingerprint of the loaded program (see [`Checkpoint::fingerprint`]).
    pub fn fingerprint(&self) -> u32 {
        self.fingerprint
    }

    /// Captures a checkpoint of the current architectural state. Cheap:
    /// one clone of the live state, no serialization.
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            fingerprint: self.fingerprint,
            state: self.state.clone(),
            rom_expanded: self.rom.as_ref().map(|rom| rom.expanded.clone()),
        }
    }

    /// Replaces the architectural state with `checkpoint`'s, so stepping
    /// resumes exactly where the checkpoint was taken.
    ///
    /// Derived state is rebuilt rather than trusted: with a compressed
    /// ROM attached, the lines the checkpoint recorded as expanded are
    /// re-expanded from the ROM (silently — no probe events, since these
    /// refills already happened before the checkpoint). A checkpoint
    /// from a plain machine restores into a ROM-backed one (lines
    /// re-expand on demand) and vice versa.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::ProgramMismatch`] when the checkpoint's
    /// fingerprint is not this machine's program;
    /// [`CheckpointError::CorruptRom`] when a recorded line no longer
    /// expands. The machine state is unchanged on mismatch.
    pub fn restore(&mut self, checkpoint: &Checkpoint) -> Result<(), CheckpointError> {
        if checkpoint.fingerprint != self.fingerprint {
            return Err(CheckpointError::ProgramMismatch {
                expected: self.fingerprint,
                found: checkpoint.fingerprint,
            });
        }
        self.state = checkpoint.state.clone();
        if let Some(rom) = &mut self.rom {
            let lines = rom.expanded.len();
            self.decoded.fill(None);
            rom.expanded.fill(false);
            let flags = match &checkpoint.rom_expanded {
                Some(flags) if flags.len() == lines => flags.clone(),
                // Plain-machine checkpoint (or a different ROM geometry):
                // nothing is pre-expanded; fetches re-expand on demand.
                _ => return Ok(()),
            };
            let mut bytes = [0u8; 32];
            for (line, flag) in flags.iter().enumerate() {
                if !flag {
                    continue;
                }
                let line_addr = self.text_base + line as u32 * 32;
                rom.image
                    .expand_line_into(line_addr, &mut bytes)
                    .map_err(|_| CheckpointError::CorruptRom { address: line_addr })?;
                rom.expanded[line] = true;
                for (w, chunk) in bytes.chunks_exact(4).enumerate() {
                    let word = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
                    if let Some(slot) = self.decoded.get_mut(line * 8 + w) {
                        *slot = ccrp_isa::decode(word).ok();
                    }
                }
            }
        }
        Ok(())
    }

    /// Records a segment boundary in the probe log (no-op when probing
    /// is disabled): [`Event::SegmentBoundary`] stamped at the current
    /// retired-instruction count. The segment scheduler calls this when
    /// it captures a checkpoint (recording pass) or restores one (replay
    /// pass), so traces show where segments begin.
    pub fn note_segment_boundary(&mut self, index: u32) {
        let retired = self.state.steps;
        if let Some(log) = &mut self.probe_log {
            log.emit(retired, Event::SegmentBoundary { index, retired });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::NullSink;
    use crate::MachineConfig;
    use ccrp::DegradePolicy;
    use ccrp_asm::assemble;
    use ccrp_compress::{BlockAlignment, ByteCode, ByteHistogram};

    const SUM_SRC: &str = "
        main:
            li   $t0, 10
            li   $t1, 0
        loop:
            addu $t1, $t1, $t0
            addiu $t0, $t0, -1
            bnez $t0, loop
            li   $v0, 1
            move $a0, $t1
            syscall
            li   $v0, 10
            syscall
        ";

    #[test]
    fn checkpoint_round_trips_through_bytes() {
        let image = assemble(SUM_SRC).unwrap();
        let mut m = Machine::new(&image);
        for _ in 0..7 {
            m.step(&mut NullSink).unwrap();
        }
        let ck = m.checkpoint();
        let bytes = ck.to_bytes();
        let back = Checkpoint::from_bytes(&bytes).unwrap();
        assert_eq!(back, ck);
        assert_eq!(back.steps(), 7);
    }

    #[test]
    fn restored_machine_finishes_identically() {
        let image = assemble(SUM_SRC).unwrap();
        let mut original = Machine::new(&image);
        for _ in 0..5 {
            original.step(&mut NullSink).unwrap();
        }
        let ck = original.checkpoint();
        let mut resumed = Machine::new(&image);
        resumed.restore(&ck).unwrap();
        assert_eq!(resumed.arch_state(), original.arch_state());
        let a = original.run(&mut NullSink).unwrap();
        let b = resumed.run(&mut NullSink).unwrap();
        assert_eq!(a, b);
        assert_eq!(original.arch_state(), resumed.arch_state());
        assert_eq!(original.output(), "55");
    }

    #[test]
    fn wrong_program_is_rejected_and_state_untouched() {
        let image = assemble(SUM_SRC).unwrap();
        let other = assemble("main: li $v0, 10\n syscall").unwrap();
        let mut m = Machine::new(&image);
        m.step(&mut NullSink).unwrap();
        let before = m.arch_state().clone();
        let foreign = Machine::new(&other).checkpoint();
        let err = m.restore(&foreign).unwrap_err();
        assert!(matches!(err, CheckpointError::ProgramMismatch { .. }));
        assert_eq!(m.arch_state(), &before);
    }

    #[test]
    fn rom_machine_checkpoint_resumes_under_demand_policy() {
        let image = assemble(SUM_SRC).unwrap();
        let code = ByteCode::preselected(&ByteHistogram::of(image.text_bytes())).unwrap();
        let rom = ccrp::CompressedImage::build(
            image.text_base(),
            image.text_bytes(),
            code,
            BlockAlignment::Word,
        )
        .unwrap();
        let mut original = Machine::with_compressed_text(
            &image,
            &rom,
            DegradePolicy::Trap,
            MachineConfig::default(),
        )
        .unwrap();
        for _ in 0..9 {
            original.step(&mut NullSink).unwrap();
        }
        let ck = original.checkpoint();
        assert!(ck.rom_expanded.is_some());
        let mut resumed = Machine::with_compressed_text(
            &image,
            &rom,
            DegradePolicy::Trap,
            MachineConfig::default(),
        )
        .unwrap();
        resumed
            .restore(&Checkpoint::from_bytes(&ck.to_bytes()).unwrap())
            .unwrap();
        original.run(&mut NullSink).unwrap();
        resumed.run(&mut NullSink).unwrap();
        assert_eq!(original.arch_state(), resumed.arch_state());
    }

    #[test]
    fn plain_checkpoint_restores_into_rom_machine() {
        let image = assemble(SUM_SRC).unwrap();
        let code = ByteCode::preselected(&ByteHistogram::of(image.text_bytes())).unwrap();
        let rom = ccrp::CompressedImage::build(
            image.text_base(),
            image.text_bytes(),
            code,
            BlockAlignment::Word,
        )
        .unwrap();
        let mut plain = Machine::new(&image);
        for _ in 0..4 {
            plain.step(&mut NullSink).unwrap();
        }
        let ck = plain.checkpoint();
        let mut rom_machine = Machine::with_compressed_text(
            &image,
            &rom,
            DegradePolicy::Retry { attempts: 2 },
            MachineConfig::default(),
        )
        .unwrap();
        rom_machine.restore(&ck).unwrap();
        plain.run(&mut NullSink).unwrap();
        rom_machine.run(&mut NullSink).unwrap();
        assert_eq!(plain.arch_state(), rom_machine.arch_state());
    }

    #[test]
    fn segment_boundary_event_is_recorded() {
        let image = assemble(SUM_SRC).unwrap();
        let mut m = Machine::new(&image);
        m.enable_probe();
        m.step(&mut NullSink).unwrap();
        m.note_segment_boundary(1);
        let log = m.take_probe_log().unwrap();
        assert_eq!(
            log.events()
                .iter()
                .filter(|e| matches!(
                    e.event,
                    Event::SegmentBoundary {
                        index: 1,
                        retired: 1
                    }
                ))
                .count(),
            1
        );
    }
}
