use std::collections::BTreeMap;

/// Byte-addressed little-endian memory, paged so sparse address spaces
/// (text at 0, data at 4 MB, stack near the top) stay cheap.
///
/// Reads from pages that were never written return `None`, which the
/// emulator turns into an [`UnmappedRead`](crate::EmuError::UnmappedRead)
/// fault — catching workload bugs instead of silently reading zeros.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Memory {
    pages: BTreeMap<u32, Box<Page>>,
}

const PAGE_BITS: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_BITS;

/// Size of one memory page in bytes; the granularity at which
/// checkpoints serialize memory.
pub const PAGE_BYTES: usize = PAGE_SIZE;

type Page = [u8; PAGE_SIZE];

impl Memory {
    /// Creates an empty memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies `bytes` into memory starting at `base`, mapping pages as
    /// needed.
    pub fn load(&mut self, base: u32, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            self.write_u8(base + i as u32, b);
        }
    }

    fn page(&self, addr: u32) -> Option<&Page> {
        self.pages.get(&(addr >> PAGE_BITS)).map(|p| &**p)
    }

    fn page_mut(&mut self, addr: u32) -> &mut Page {
        self.pages
            .entry(addr >> PAGE_BITS)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE]))
    }

    /// Reads one byte; `None` if the page was never mapped.
    pub fn read_u8(&self, addr: u32) -> Option<u8> {
        self.page(addr)
            .map(|p| p[(addr as usize) & (PAGE_SIZE - 1)])
    }

    /// Writes one byte, mapping the page on demand.
    pub fn write_u8(&mut self, addr: u32, value: u8) {
        self.page_mut(addr)[(addr as usize) & (PAGE_SIZE - 1)] = value;
    }

    /// Reads a little-endian halfword. The caller checks alignment.
    pub fn read_u16(&self, addr: u32) -> Option<u16> {
        Some(u16::from_le_bytes([
            self.read_u8(addr)?,
            self.read_u8(addr + 1)?,
        ]))
    }

    /// Writes a little-endian halfword.
    pub fn write_u16(&mut self, addr: u32, value: u16) {
        let [a, b] = value.to_le_bytes();
        self.write_u8(addr, a);
        self.write_u8(addr + 1, b);
    }

    /// Reads a little-endian word. The caller checks alignment.
    pub fn read_u32(&self, addr: u32) -> Option<u32> {
        Some(u32::from_le_bytes([
            self.read_u8(addr)?,
            self.read_u8(addr + 1)?,
            self.read_u8(addr + 2)?,
            self.read_u8(addr + 3)?,
        ]))
    }

    /// Writes a little-endian word.
    pub fn write_u32(&mut self, addr: u32, value: u32) {
        for (i, b) in value.to_le_bytes().into_iter().enumerate() {
            self.write_u8(addr + i as u32, b);
        }
    }

    /// Number of mapped pages (for resource accounting in tests).
    pub fn mapped_pages(&self) -> usize {
        self.pages.len()
    }

    /// Iterates `(page_index, page_bytes)` for every mapped page in
    /// ascending page-index order — a deterministic order, so memory
    /// serializes identically across runs. A page's base address is
    /// `page_index << 12`.
    pub fn pages(&self) -> impl Iterator<Item = (u32, &[u8; PAGE_BYTES])> + '_ {
        self.pages.iter().map(|(index, page)| (*index, &**page))
    }

    /// Installs a full page at `page_index`, replacing any existing
    /// mapping — the rebuild half of [`pages`](Self::pages).
    pub fn install_page(&mut self, page_index: u32, bytes: &[u8; PAGE_BYTES]) {
        self.pages.insert(page_index, Box::new(*bytes));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmapped_reads_are_none() {
        let m = Memory::new();
        assert_eq!(m.read_u8(0), None);
        assert_eq!(m.read_u32(0x123456), None);
    }

    #[test]
    fn roundtrip_across_page_boundary() {
        let mut m = Memory::new();
        let addr = (1 << PAGE_BITS) - 2;
        m.write_u32(addr, 0xAABB_CCDD);
        assert_eq!(m.read_u32(addr), Some(0xAABB_CCDD));
        assert_eq!(m.read_u8(addr), Some(0xDD)); // little-endian
        assert_eq!(m.mapped_pages(), 2);
    }

    #[test]
    fn load_places_bytes() {
        let mut m = Memory::new();
        m.load(0x100, &[1, 2, 3, 4]);
        assert_eq!(m.read_u32(0x100), Some(0x0403_0201));
    }

    #[test]
    fn sparse_mapping_is_cheap() {
        let mut m = Memory::new();
        m.write_u8(0, 1);
        m.write_u8(0x00FF_FFF0, 2);
        assert_eq!(m.mapped_pages(), 2);
    }
}
