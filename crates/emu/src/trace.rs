/// Receives the dynamic events the CCRP system simulator replays:
/// instruction-fetch addresses and data accesses.
///
/// This plays the role of the `pixie` profiling tool in the paper's
/// methodology — it observes a run and records the address stream the
/// cache simulator consumes.
pub trait TraceSink {
    /// An instruction was fetched (and executed) at `pc`.
    fn instruction(&mut self, pc: u32);
    /// The instruction at the most recent `pc` performed a data access.
    fn data_access(&mut self, addr: u32, store: bool);
}

/// Forwarding impl so trait objects (`&mut dyn TraceSink`) satisfy
/// `impl TraceSink` bounds — the ISA-generic [`IsaCore`] surface steps
/// machines through a `dyn` sink.
///
/// [`IsaCore`]: crate::IsaCore
impl<T: TraceSink + ?Sized> TraceSink for &mut T {
    fn instruction(&mut self, pc: u32) {
        (**self).instruction(pc);
    }
    fn data_access(&mut self, addr: u32, store: bool) {
        (**self).data_access(addr, store);
    }
}

/// Discards all events; used when only architectural results matter.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn instruction(&mut self, _pc: u32) {}
    fn data_access(&mut self, _addr: u32, _store: bool) {}
}

/// Counts events without storing them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountingSink {
    /// Dynamic instruction count.
    pub instructions: u64,
    /// Dynamic load count.
    pub loads: u64,
    /// Dynamic store count.
    pub stores: u64,
}

impl TraceSink for CountingSink {
    fn instruction(&mut self, _pc: u32) {
        self.instructions += 1;
    }
    fn data_access(&mut self, _addr: u32, store: bool) {
        if store {
            self.stores += 1;
        } else {
            self.loads += 1;
        }
    }
}

/// A captured execution trace: the instruction-address stream plus, per
/// instruction, how many data accesses it made.
///
/// Capturing once and replaying lets one emulator run feed the dozens of
/// (cache size × memory model × processor) simulations each paper table
/// sweeps.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProgramTrace {
    pcs: Vec<u32>,
    data_counts: Vec<u8>,
}

impl ProgramTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of dynamic instructions.
    pub fn len(&self) -> usize {
        self.pcs.len()
    }

    /// True when no instructions were recorded.
    pub fn is_empty(&self) -> bool {
        self.pcs.is_empty()
    }

    /// Total number of data accesses across the run.
    pub fn data_accesses(&self) -> u64 {
        self.data_counts.iter().map(|&c| u64::from(c)).sum()
    }

    /// Iterates `(pc, data_access_count)` pairs in execution order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u8)> + Clone + '_ {
        self.pcs
            .iter()
            .copied()
            .zip(self.data_counts.iter().copied())
    }

    /// The instruction-address stream alone.
    pub fn pcs(&self) -> &[u32] {
        &self.pcs
    }
}

impl TraceSink for ProgramTrace {
    fn instruction(&mut self, pc: u32) {
        self.pcs.push(pc);
        self.data_counts.push(0);
    }
    fn data_access(&mut self, _addr: u32, _store: bool) {
        if let Some(last) = self.data_counts.last_mut() {
            *last = last.saturating_add(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_sink_counts() {
        let mut s = CountingSink::default();
        s.instruction(0);
        s.instruction(4);
        s.data_access(100, false);
        s.data_access(104, true);
        assert_eq!(s.instructions, 2);
        assert_eq!(s.loads, 1);
        assert_eq!(s.stores, 1);
    }

    #[test]
    fn program_trace_attributes_data_to_instruction() {
        let mut t = ProgramTrace::new();
        t.instruction(0x10);
        t.data_access(0x200, false);
        t.data_access(0x204, false);
        t.instruction(0x14);
        let pairs: Vec<_> = t.iter().collect();
        assert_eq!(pairs, vec![(0x10, 2), (0x14, 0)]);
        assert_eq!(t.data_accesses(), 2);
        assert_eq!(t.len(), 2);
    }
}
