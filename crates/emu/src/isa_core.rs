//! The ISA-generic machine surface the lockstep difftest drives.
//!
//! A co-simulation campaign runs one reference machine and several
//! compressed-ROM variants of the *same* program in lockstep, comparing
//! architectural state after every instruction. That driver needs to
//! step a machine and observe it — PC, general registers, exit status,
//! console output, touched memory — but nothing MIPS-specific.
//! [`IsaCore`] is that surface: [`Machine`](crate::Machine) implements
//! it for MIPS, `ccrp-rv32`'s machine implements it for RV32I/RV32C,
//! and `ccrp-difftest`'s generic driver works against either.
//!
//! State the trait cannot see (MIPS HI/LO and the FPA register file,
//! for instance) is compared through a per-ISA hook the driver accepts
//! alongside the machines, so adding an architecture never weakens the
//! comparison for another.

use crate::TraceSink;
use ccrp_isa::Isa;
use std::fmt;

/// A steppable, observable machine for one [`Isa`].
///
/// Implementations promise that two machines constructed from the same
/// program image and stepped identically expose identical observations
/// — the whole premise of lockstep co-simulation.
pub trait IsaCore {
    /// The architecture this core executes.
    type Isa: Isa;

    /// A fault raised by one step: bad fetch, illegal instruction,
    /// unmapped access, step-budget exhaustion. Faults are compared
    /// across lockstep variants, so they must be `PartialEq`.
    type Fault: fmt::Debug + fmt::Display + Clone + PartialEq;

    /// Current program counter.
    fn pc(&self) -> u32;

    /// General-purpose register `index` (`0..Isa::GPR_COUNT`).
    fn gpr(&self, index: usize) -> u32;

    /// `Some(code)` once the program has exited.
    fn exit_code(&self) -> Option<i32>;

    /// Instructions retired so far.
    fn steps(&self) -> u64;

    /// Console output accumulated so far.
    fn output(&self) -> &str;

    /// The aligned word at `addr`, when mapped.
    fn read_word(&self, addr: u32) -> Option<u32>;

    /// Executes one instruction, reporting fetches and data accesses to
    /// `sink`.
    fn step_traced(&mut self, sink: &mut dyn TraceSink) -> Result<(), Self::Fault>;
}

impl IsaCore for crate::Machine {
    type Isa = ccrp_isa::Mips;
    type Fault = crate::EmuError;

    fn pc(&self) -> u32 {
        crate::Machine::pc(self)
    }

    fn gpr(&self, index: usize) -> u32 {
        // panic-ok: caller contract — index < GPR_COUNT (= 32).
        let reg = ccrp_isa::Reg::new(index as u8).expect("GPR index in range");
        self.reg(reg)
    }

    fn exit_code(&self) -> Option<i32> {
        crate::Machine::exit_code(self)
    }

    fn steps(&self) -> u64 {
        crate::Machine::steps(self)
    }

    fn output(&self) -> &str {
        crate::Machine::output(self)
    }

    fn read_word(&self, addr: u32) -> Option<u32> {
        crate::Machine::read_word(self, addr)
    }

    fn step_traced(&mut self, mut sink: &mut dyn TraceSink) -> Result<(), Self::Fault> {
        self.step(&mut sink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Machine, NullSink};
    use ccrp_asm::assemble;
    use ccrp_isa::{Isa, Mips};

    #[test]
    fn machine_observes_identically_through_the_trait() {
        let image = assemble(
            "
            main:
                li   $t0, 7
                li   $v0, 10
                syscall
            ",
        )
        .expect("assembles");
        let mut direct = Machine::new(&image);
        let mut via_trait = Machine::new(&image);
        loop {
            let a = direct.step(&mut NullSink);
            let b = IsaCore::step_traced(&mut via_trait, &mut NullSink);
            assert_eq!(a, b);
            assert_eq!(Machine::pc(&direct), IsaCore::pc(&via_trait));
            for i in 0..Mips::GPR_COUNT {
                assert_eq!(direct.gpr(i), via_trait.gpr(i));
            }
            if direct.exit_code().is_some() || a.is_err() {
                break;
            }
        }
        assert_eq!(IsaCore::exit_code(&via_trait), Some(0));
    }
}
