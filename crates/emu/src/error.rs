use std::error::Error;
use std::fmt;

/// Runtime faults raised by the emulator.
///
/// These model the R2000's exception conditions; in this reproduction they
/// terminate the run (the embedded workloads are expected not to fault).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum EmuError {
    /// A read from memory that was never written or mapped.
    UnmappedRead {
        /// Faulting data address.
        addr: u32,
        /// Program counter of the faulting instruction.
        pc: u32,
    },
    /// An instruction fetch from outside the text segment.
    BadFetch {
        /// Faulting instruction address.
        pc: u32,
    },
    /// A word the decoder rejected.
    IllegalInstruction {
        /// Address of the word.
        pc: u32,
        /// The undecodable word.
        word: u32,
    },
    /// A halfword/word access that is not naturally aligned.
    UnalignedAccess {
        /// Faulting data address.
        addr: u32,
        /// Required alignment in bytes.
        align: u32,
        /// Program counter of the faulting instruction.
        pc: u32,
    },
    /// Signed overflow in `add`, `addi`, or `sub` (the R2000 traps).
    ArithmeticOverflow {
        /// Program counter of the trapping instruction.
        pc: u32,
    },
    /// Integer division by zero (left undefined by MIPS; we trap to
    /// surface workload bugs).
    DivideByZero {
        /// Program counter of the faulting instruction.
        pc: u32,
    },
    /// A `break` instruction was executed.
    BreakTrap {
        /// Program counter of the `break`.
        pc: u32,
        /// The 20-bit code field.
        code: u32,
    },
    /// An unknown syscall number in `$v0`.
    UnknownSyscall {
        /// Program counter of the `syscall`.
        pc: u32,
        /// The requested service number.
        number: u32,
    },
    /// The step budget was exhausted before the program exited.
    StepLimitExceeded {
        /// The configured limit.
        limit: u64,
    },
    /// A caller-supplied [`StepBudget`](ccrp::StepBudget) ran out of
    /// fuel (or its watchdog cancellation flag was raised) before the
    /// program exited — the machine-check-style outcome bounding
    /// runaway or hostile programs without wall-clock dependence.
    BudgetExhausted {
        /// Dynamic instructions retired when the budget tripped.
        steps: u64,
        /// `true` when a watchdog deadline, not fuel, stopped the run.
        cancelled: bool,
    },
    /// A compressed instruction ROM that does not cover the program: its
    /// text base or size disagrees with the loaded image.
    RomMismatch,
    /// A cache-line refill from the compressed instruction ROM hit
    /// corruption the degradation policy could not recover from.
    MachineCheck {
        /// First address of the corrupt line.
        pc: u32,
    },
}

impl fmt::Display for EmuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            EmuError::UnmappedRead { addr, pc } => {
                write!(
                    f,
                    "read from unmapped address {addr:#010x} at pc {pc:#010x}"
                )
            }
            EmuError::BadFetch { pc } => write!(f, "instruction fetch outside text at {pc:#010x}"),
            EmuError::IllegalInstruction { pc, word } => {
                write!(f, "illegal instruction {word:#010x} at pc {pc:#010x}")
            }
            EmuError::UnalignedAccess { addr, align, pc } => write!(
                f,
                "address {addr:#010x} not {align}-byte aligned at pc {pc:#010x}"
            ),
            EmuError::ArithmeticOverflow { pc } => {
                write!(f, "arithmetic overflow trap at pc {pc:#010x}")
            }
            EmuError::DivideByZero { pc } => write!(f, "division by zero at pc {pc:#010x}"),
            EmuError::BreakTrap { pc, code } => {
                write!(f, "break trap (code {code}) at pc {pc:#010x}")
            }
            EmuError::UnknownSyscall { pc, number } => {
                write!(f, "unknown syscall {number} at pc {pc:#010x}")
            }
            EmuError::StepLimitExceeded { limit } => {
                write!(f, "program did not exit within {limit} instructions")
            }
            EmuError::BudgetExhausted { steps, cancelled } => {
                if cancelled {
                    write!(f, "run cancelled by deadline after {steps} instructions")
                } else {
                    write!(f, "step budget exhausted after {steps} instructions")
                }
            }
            EmuError::RomMismatch => {
                write!(f, "compressed ROM does not cover the program text")
            }
            EmuError::MachineCheck { pc } => {
                write!(f, "machine check: corrupt instruction line at {pc:#010x}")
            }
        }
    }
}

impl Error for EmuError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_pc() {
        let e = EmuError::DivideByZero { pc: 0x40 };
        assert!(e.to_string().contains("0x00000040"));
    }
}
