use std::collections::VecDeque;

use ccrp::{crc32, CompressedImage, DegradePolicy, StepBudget};
use ccrp_asm::ProgramImage;
use ccrp_isa::{
    decode, AluOp, BranchOp, BranchZOp, Cp1MoveOp, FpCond, FpFmt, FpOp, FpReg, FpUnaryOp, HiLoOp,
    IAluOp, Instruction, MemOp, MultDivOp, Reg, ShiftOp,
};
use ccrp_probe::{Event, EventLog, Probe};

use crate::error::EmuError;
use crate::memory::Memory;
use crate::state::ArchState;
use crate::trace::TraceSink;

/// Configuration for a [`Machine`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineConfig {
    /// Initial stack pointer. Defaults to near the top of the paper's
    /// 24-bit physical address space, growing down.
    pub initial_sp: u32,
    /// Instruction budget; exceeding it is an error so runaway workloads
    /// fail loudly.
    pub max_steps: u64,
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self {
            initial_sp: 0x00F0_0000,
            max_steps: 200_000_000,
        }
    }
}

/// Result of running a program to completion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunSummary {
    /// Dynamic instructions executed (including delay slots).
    pub instructions: u64,
    /// The code passed to the exit syscall (0 for plain exit).
    pub exit_code: i32,
}

/// Compressed-ROM state for demand line expansion: decoded instructions
/// come from the ROM's expanded lines, so in-ROM corruption is visible to
/// the fetch path and handled per the degradation policy.
#[derive(Debug, Clone)]
pub(crate) struct CompressedRom {
    pub(crate) image: CompressedImage,
    pub(crate) policy: DegradePolicy,
    /// One flag per cache line: whether it has been expanded and decoded.
    pub(crate) expanded: Vec<bool>,
}

/// Identifies a program image for checkpoint compatibility checks:
/// content CRCs mixed with the layout parameters, so a checkpoint taken
/// on one program (or the same bytes loaded elsewhere) is rejected when
/// restored into another.
fn program_fingerprint(image: &ProgramImage) -> u32 {
    crc32(image.text_bytes())
        ^ crc32(image.data_bytes()).rotate_left(1)
        ^ image.text_base().wrapping_mul(0x9E37_79B9)
        ^ image.entry().wrapping_mul(0x85EB_CA6B)
}

/// A functional MIPS R2000 + R2010 (FPA) emulator.
///
/// Faithful in the ways that matter to the CCRP experiments: branch delay
/// slots, little-endian memory (the DECstation configuration), the
/// overflow-trapping arithmetic ops, and SPIM-style syscalls for I/O. It
/// is *not* cycle accurate — timing is the job of `ccrp-sim`, which replays
/// the traces this emulator captures.
///
/// # Examples
///
/// ```
/// use ccrp_asm::assemble;
/// use ccrp_emu::{Machine, NullSink};
///
/// let image = assemble("
///     main:
///         li  $a0, 6
///         li  $t0, 7
///         mul $a0, $a0, $t0
///         li  $v0, 1      # print_int
///         syscall
///         li  $v0, 10     # exit
///         syscall
/// ")?;
/// let mut machine = Machine::new(&image);
/// let summary = machine.run(&mut NullSink)?;
/// assert_eq!(machine.output(), "42");
/// assert_eq!(summary.exit_code, 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Machine {
    /// Everything the program can observe — the checkpointable part.
    pub(crate) state: ArchState,
    pub(crate) text_base: u32,
    /// Pre-decoded text segment; `None` entries are data words (jump
    /// tables) or invalid encodings and fault if fetched. Derived state:
    /// rebuilt from memory / the ROM on restore, never serialized.
    pub(crate) decoded: Vec<Option<Instruction>>,
    /// Compressed instruction ROM for demand line expansion, when the
    /// machine was built with [`with_compressed_text`]
    /// (Self::with_compressed_text) under a demand policy.
    pub(crate) rom: Option<CompressedRom>,
    pub(crate) config: MachineConfig,
    /// Identifies the loaded program, so a checkpoint taken on one
    /// program is rejected when restored into another.
    pub(crate) fingerprint: u32,
    /// Recording sink for compressed-ROM refill events, when enabled via
    /// [`enable_probe`](Self::enable_probe). Timestamps are dynamic
    /// instruction counts (the emulator is not cycle accurate).
    pub(crate) probe_log: Option<EventLog>,
}

impl Machine {
    /// Builds a machine loaded with `image`, default configuration.
    pub fn new(image: &ProgramImage) -> Self {
        Self::with_config(image, MachineConfig::default())
    }

    /// Builds a machine loaded with `image`.
    pub fn with_config(image: &ProgramImage, config: MachineConfig) -> Self {
        let mut mem = Memory::new();
        mem.load(image.text_base(), image.text_bytes());
        if !image.data_bytes().is_empty() {
            mem.load(image.data_base(), image.data_bytes());
        }
        // Map the top stack page so leaf functions can spill immediately.
        mem.write_u32(config.initial_sp, 0);
        let decoded = image.text_words().map(|w| decode(w).ok()).collect();
        let mut regs = [0u32; 32];
        regs[Reg::SP.number() as usize] = config.initial_sp;
        regs[Reg::GP.number() as usize] = image.data_base();
        // Returning from `main` jumps to an address outside text, which
        // reports BadFetch; workloads exit via syscall instead.
        regs[Reg::RA.number() as usize] = 0x00FF_FFF0;
        let brk = image.data_base() + image.data_bytes().len() as u32;
        Self {
            state: ArchState {
                regs,
                hi: 0,
                lo: 0,
                fpr: [0; 32],
                fp_cond: false,
                pc: image.entry(),
                next_pc: image.entry().wrapping_add(4),
                brk: (brk + 7) & !7,
                exit: None,
                steps: 0,
                output: String::new(),
                input: VecDeque::new(),
                mem,
            },
            text_base: image.text_base(),
            decoded,
            rom: None,
            config,
            fingerprint: program_fingerprint(image),
            probe_log: None,
        }
    }

    /// Builds a machine whose instruction stream comes from a compressed
    /// instruction ROM instead of the pre-decoded program text — the
    /// execution-side counterpart of the refill engine's degradation
    /// policies. Data accesses still see the program image's memory; only
    /// instruction fetch goes through the ROM.
    ///
    /// Under [`DegradePolicy::Abort`] every line is expanded (and
    /// checked) eagerly at construction, so a corrupt ROM fails here.
    /// Under [`DegradePolicy::Trap`] and [`DegradePolicy::Retry`] lines
    /// are expanded on first fetch; a corrupt line raises
    /// [`EmuError::MachineCheck`] at the offending fetch, after the
    /// retry budget (if any) is spent re-reading the ROM.
    ///
    /// # Errors
    ///
    /// [`EmuError::RomMismatch`] when `rom`'s text base or size does not
    /// cover `image`'s text; [`EmuError::MachineCheck`] when eager
    /// expansion hits corruption.
    pub fn with_compressed_text(
        image: &ProgramImage,
        rom: &CompressedImage,
        policy: DegradePolicy,
        config: MachineConfig,
    ) -> Result<Self, EmuError> {
        if rom.text_base() != image.text_base()
            || (rom.original_bytes() as usize) < image.text_bytes().len()
        {
            return Err(EmuError::RomMismatch);
        }
        let mut machine = Self::with_config(image, config);
        let words = (rom.original_bytes() / 4) as usize;
        match policy {
            DegradePolicy::Abort => {
                // Fail-fast: expand and decode the whole ROM up front,
                // reusing one stack line buffer for every expansion.
                let mut decoded = Vec::with_capacity(words);
                let mut bytes = [0u8; 32];
                for line in 0..rom.line_count() {
                    let addr = rom.text_base() + line as u32 * 32;
                    rom.expand_line_into(addr, &mut bytes)
                        .map_err(|_| EmuError::MachineCheck { pc: addr })?;
                    decoded.extend(
                        bytes
                            .chunks_exact(4)
                            .map(|w| decode(u32::from_le_bytes([w[0], w[1], w[2], w[3]])).ok()),
                    );
                }
                machine.decoded = decoded;
            }
            DegradePolicy::Trap | DegradePolicy::Retry { .. } => {
                machine.decoded = vec![None; words];
                machine.rom = Some(CompressedRom {
                    image: rom.clone(),
                    policy,
                    expanded: vec![false; rom.line_count()],
                });
            }
        }
        Ok(machine)
    }

    /// Starts recording compressed-ROM refill events ([`Event::CacheMiss`]
    /// / [`Event::RefillStart`] / [`Event::RefillDone`] per first-touch
    /// line expansion, plus [`Event::IntegrityFailure`] and
    /// [`Event::RetryBackoff`] on the degradation path). Timestamps are
    /// dynamic instruction counts, and `RefillDone` reports zero latency —
    /// the emulator is functional, not cycle accurate; `ccrp-sim` owns
    /// timing. Only meaningful for machines built with
    /// [`with_compressed_text`](Self::with_compressed_text) under a demand
    /// policy (eager Abort expansion happens before probes can observe it).
    pub fn enable_probe(&mut self) {
        self.probe_log = Some(EventLog::new());
    }

    /// The recorded refill events, if probing is enabled.
    pub fn probe_log(&self) -> Option<&EventLog> {
        self.probe_log.as_ref()
    }

    /// Detaches and returns the recorded refill events.
    pub fn take_probe_log(&mut self) -> Option<EventLog> {
        self.probe_log.take()
    }

    /// Queues integers for the `read_int` syscall to return in order.
    pub fn push_input(&mut self, values: impl IntoIterator<Item = i32>) {
        self.state.input.extend(values);
    }

    /// Everything the program printed so far.
    pub fn output(&self) -> &str {
        &self.state.output
    }

    /// Current value of a general-purpose register.
    pub fn reg(&self, reg: Reg) -> u32 {
        self.state.regs[reg.number() as usize]
    }

    /// Sets a general-purpose register (writes to `$zero` are ignored).
    pub fn set_reg(&mut self, reg: Reg, value: u32) {
        if reg != Reg::ZERO {
            self.state.regs[reg.number() as usize] = value;
        }
    }

    /// The address of the next instruction to execute.
    pub fn pc(&self) -> u32 {
        self.state.pc
    }

    /// The multiply/divide `hi` result register.
    pub fn hi(&self) -> u32 {
        self.state.hi
    }

    /// The multiply/divide `lo` result register.
    pub fn lo(&self) -> u32 {
        self.state.lo
    }

    /// The CP1 condition flag set by `c.eq.s`-family compares.
    pub fn fp_cond(&self) -> bool {
        self.state.fp_cond
    }

    /// Raw bits of an FP register.
    pub fn fp_bits(&self, reg: FpReg) -> u32 {
        self.state.fpr[reg.number() as usize]
    }

    /// The single-precision value in `reg`.
    pub fn fp_single(&self, reg: FpReg) -> f32 {
        f32::from_bits(self.fp_bits(reg))
    }

    /// The double-precision value in the even/odd pair starting at `reg`.
    ///
    /// Doubles live in even pairs on the R2010; the pair is addressed by
    /// the even number, so the low register-number bit is ignored. A
    /// hand-encoded odd register therefore reads the enclosing pair
    /// rather than faulting — arbitrary instruction words must never
    /// panic the emulator.
    pub fn fp_double(&self, reg: FpReg) -> f64 {
        let n = (reg.number() & !1) as usize;
        let lo = self.state.fpr[n] as u64;
        let hi = self.state.fpr[n + 1] as u64;
        f64::from_bits((hi << 32) | lo)
    }

    fn set_fp_double(&mut self, reg: FpReg, value: f64) {
        let n = (reg.number() & !1) as usize;
        let bits = value.to_bits();
        self.state.fpr[n] = bits as u32;
        self.state.fpr[n + 1] = (bits >> 32) as u32;
    }

    /// Whether the program has exited, and with what code.
    pub fn exit_code(&self) -> Option<i32> {
        self.state.exit
    }

    /// Dynamic instructions executed so far.
    pub fn steps(&self) -> u64 {
        self.state.steps
    }

    /// Direct read access to memory, for assertions in tests.
    pub fn read_word(&self, addr: u32) -> Option<u32> {
        self.state.mem.read_u32(addr)
    }

    /// Runs until the program exits via syscall.
    ///
    /// # Errors
    ///
    /// Any [`EmuError`] fault, including exceeding the configured step
    /// budget.
    pub fn run(&mut self, sink: &mut impl TraceSink) -> Result<RunSummary, EmuError> {
        self.run_budgeted(sink, &mut StepBudget::unlimited())
    }

    /// Runs until the program exits via syscall, charging `budget` one
    /// unit per retired instruction on top of the configured
    /// `max_steps` ceiling.
    ///
    /// This is the guard rail for programs that cannot be trusted to
    /// terminate — hostile service uploads, or difftest programs should
    /// the generator's termination-by-construction invariant ever be
    /// violated. Fuel exhaustion is deterministic (it depends only on
    /// the program), while an attached cancellation flag lets a
    /// watchdog thread stop the run on a wall-clock deadline.
    ///
    /// # Errors
    ///
    /// [`EmuError::BudgetExhausted`] when `budget` trips; otherwise as
    /// [`run`](Self::run).
    pub fn run_budgeted(
        &mut self,
        sink: &mut impl TraceSink,
        budget: &mut StepBudget,
    ) -> Result<RunSummary, EmuError> {
        while self.state.exit.is_none() {
            if self.state.steps >= self.config.max_steps {
                return Err(EmuError::StepLimitExceeded {
                    limit: self.config.max_steps,
                });
            }
            if let Err(exhausted) = budget.charge(1) {
                return Err(EmuError::BudgetExhausted {
                    steps: self.state.steps,
                    cancelled: exhausted.cancelled,
                });
            }
            self.step(sink)?;
        }
        Ok(RunSummary {
            instructions: self.state.steps,
            // panic-ok: the loop above only exits once `exit` is set.
            exit_code: self.state.exit.expect("loop exits only when set"),
        })
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// Any [`EmuError`] fault raised by the instruction.
    pub fn step(&mut self, sink: &mut impl TraceSink) -> Result<(), EmuError> {
        let pc = self.state.pc;
        let inst = self.fetch(pc)?;
        sink.instruction(pc);
        self.state.steps += 1;
        self.state.pc = self.state.next_pc;
        self.state.next_pc = self.state.next_pc.wrapping_add(4);
        self.execute(inst, pc, sink)
    }

    fn fetch(&mut self, pc: u32) -> Result<Instruction, EmuError> {
        if !pc.is_multiple_of(4) || pc < self.text_base {
            return Err(EmuError::BadFetch { pc });
        }
        self.ensure_line_expanded(pc)?;
        let index = ((pc - self.text_base) / 4) as usize;
        match self.decoded.get(index) {
            Some(Some(inst)) => Ok(*inst),
            Some(None) => {
                let word = self.state.mem.read_u32(pc).unwrap_or(0);
                Err(EmuError::IllegalInstruction { pc, word })
            }
            None => Err(EmuError::BadFetch { pc }),
        }
    }

    /// Demand expansion of the compressed cache line holding `pc`, per
    /// the ROM's degradation policy. No-op without a ROM, for already
    /// expanded lines, and for addresses past the ROM (the subsequent
    /// decoded-table lookup reports those as [`EmuError::BadFetch`]).
    fn ensure_line_expanded(&mut self, pc: u32) -> Result<(), EmuError> {
        let Some(rom) = &mut self.rom else {
            return Ok(());
        };
        let line = ((pc - self.text_base) / 32) as usize;
        if rom.expanded.get(line).copied() != Some(false) {
            return Ok(());
        }
        let line_addr = self.text_base + line as u32 * 32;
        if let Some(log) = &mut self.probe_log {
            log.emit(self.state.steps, Event::CacheMiss { address: line_addr });
            log.emit(self.state.steps, Event::RefillStart { address: line_addr });
        }
        let budget = match rom.policy {
            DegradePolicy::Retry { attempts } => attempts,
            _ => 0,
        };
        let mut bytes = [0u8; 32];
        let mut result = rom.image.expand_line_into(line_addr, &mut bytes);
        let mut tries = 0;
        while result.is_err() && tries < budget {
            if let Some(log) = &mut self.probe_log {
                log.emit(
                    self.state.steps,
                    Event::IntegrityFailure { address: line_addr },
                );
                log.emit(
                    self.state.steps,
                    Event::RetryBackoff {
                        address: line_addr,
                        attempt: tries + 1,
                        backoff_cycles: 1 << tries.min(16),
                    },
                );
            }
            // Model a re-read of the stored block: recoverable only for
            // transient upsets, which an in-memory image cannot exhibit —
            // but the escalation path is exercised either way.
            result = rom.image.expand_line_into(line_addr, &mut bytes);
            tries += 1;
        }
        if result.is_err() {
            if let Some(log) = &mut self.probe_log {
                log.emit(
                    self.state.steps,
                    Event::IntegrityFailure { address: line_addr },
                );
            }
        }
        result.map_err(|_| EmuError::MachineCheck { pc: line_addr })?;
        if let Some(log) = &mut self.probe_log {
            // Bus traffic as the refill engine would count it: the whole
            // words the stored block spans.
            let (fetched, bypass) = rom
                .image
                .locate(line_addr)
                .map(|loc| {
                    let first = loc.physical;
                    let last = loc.physical + loc.stored_len - 1;
                    (((last / 4) - (first / 4) + 1) * 4, loc.bypass)
                })
                .unwrap_or((0, false));
            log.emit(
                self.state.steps,
                Event::RefillDone {
                    address: line_addr,
                    cycles: 0,
                    bytes: fetched,
                    clb_hit: false,
                    bypass,
                    retries: tries,
                },
            );
        }
        rom.expanded[line] = true;
        for (w, chunk) in bytes.chunks_exact(4).enumerate() {
            let word = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
            if let Some(slot) = self.decoded.get_mut(line * 8 + w) {
                *slot = decode(word).ok();
            }
        }
        Ok(())
    }

    fn load_addr(
        &mut self,
        base: Reg,
        offset: i16,
        align: u32,
        pc: u32,
        sink: &mut impl TraceSink,
        store: bool,
    ) -> Result<u32, EmuError> {
        let addr = self.reg(base).wrapping_add(offset as i32 as u32);
        if align > 1 && !addr.is_multiple_of(align) {
            return Err(EmuError::UnalignedAccess { addr, align, pc });
        }
        sink.data_access(addr, store);
        Ok(addr)
    }

    fn read_u32(&self, addr: u32, pc: u32) -> Result<u32, EmuError> {
        self.state
            .mem
            .read_u32(addr)
            .ok_or(EmuError::UnmappedRead { addr, pc })
    }

    fn branch(&mut self, taken: bool, offset: i16) {
        if taken {
            // `next_pc` currently points one past the delay slot; the
            // target is relative to the delay-slot address.
            self.state.next_pc = self.state.pc.wrapping_add((i32::from(offset) << 2) as u32);
        }
    }

    fn execute(
        &mut self,
        inst: Instruction,
        pc: u32,
        sink: &mut impl TraceSink,
    ) -> Result<(), EmuError> {
        match inst {
            Instruction::RAlu { op, rd, rs, rt } => {
                let a = self.reg(rs);
                let b = self.reg(rt);
                let value = match op {
                    AluOp::Add => match (a as i32).checked_add(b as i32) {
                        Some(v) => v as u32,
                        None => return Err(EmuError::ArithmeticOverflow { pc }),
                    },
                    AluOp::Addu => a.wrapping_add(b),
                    AluOp::Sub => match (a as i32).checked_sub(b as i32) {
                        Some(v) => v as u32,
                        None => return Err(EmuError::ArithmeticOverflow { pc }),
                    },
                    AluOp::Subu => a.wrapping_sub(b),
                    AluOp::And => a & b,
                    AluOp::Or => a | b,
                    AluOp::Xor => a ^ b,
                    AluOp::Nor => !(a | b),
                    AluOp::Slt => u32::from((a as i32) < (b as i32)),
                    AluOp::Sltu => u32::from(a < b),
                };
                self.set_reg(rd, value);
            }
            Instruction::Shift { op, rd, rt, shamt } => {
                let v = self.reg(rt);
                let s = u32::from(shamt);
                let value = match op {
                    ShiftOp::Sll => v << s,
                    ShiftOp::Srl => v >> s,
                    ShiftOp::Sra => ((v as i32) >> s) as u32,
                };
                self.set_reg(rd, value);
            }
            Instruction::ShiftV { op, rd, rt, rs } => {
                let v = self.reg(rt);
                let s = self.reg(rs) & 0x1F;
                let value = match op {
                    ShiftOp::Sll => v << s,
                    ShiftOp::Srl => v >> s,
                    ShiftOp::Sra => ((v as i32) >> s) as u32,
                };
                self.set_reg(rd, value);
            }
            Instruction::MultDiv { op, rs, rt } => {
                let a = self.reg(rs);
                let b = self.reg(rt);
                match op {
                    MultDivOp::Mult => {
                        let p = i64::from(a as i32) * i64::from(b as i32);
                        self.state.lo = p as u32;
                        self.state.hi = (p >> 32) as u32;
                    }
                    MultDivOp::Multu => {
                        let p = u64::from(a) * u64::from(b);
                        self.state.lo = p as u32;
                        self.state.hi = (p >> 32) as u32;
                    }
                    MultDivOp::Div => {
                        if b == 0 {
                            return Err(EmuError::DivideByZero { pc });
                        }
                        let (a, b) = (a as i32, b as i32);
                        self.state.lo = a.wrapping_div(b) as u32;
                        self.state.hi = a.wrapping_rem(b) as u32;
                    }
                    MultDivOp::Divu => {
                        if b == 0 {
                            return Err(EmuError::DivideByZero { pc });
                        }
                        self.state.lo = a / b;
                        self.state.hi = a % b;
                    }
                }
            }
            Instruction::HiLo { op, reg } => match op {
                HiLoOp::Mfhi => self.set_reg(reg, self.state.hi),
                HiLoOp::Mflo => self.set_reg(reg, self.state.lo),
                HiLoOp::Mthi => self.state.hi = self.reg(reg),
                HiLoOp::Mtlo => self.state.lo = self.reg(reg),
            },
            Instruction::Jr { rs } => self.state.next_pc = self.reg(rs),
            Instruction::Jalr { rd, rs } => {
                let target = self.reg(rs);
                self.set_reg(rd, self.state.next_pc);
                self.state.next_pc = target;
            }
            Instruction::Syscall { .. } => self.syscall(pc, sink)?,
            Instruction::Break { code } => return Err(EmuError::BreakTrap { pc, code }),
            Instruction::IAlu { op, rt, rs, imm } => {
                let a = self.reg(rs);
                let se = imm as i16 as i32 as u32;
                let ze = u32::from(imm);
                let value = match op {
                    IAluOp::Addi => match (a as i32).checked_add(se as i32) {
                        Some(v) => v as u32,
                        None => return Err(EmuError::ArithmeticOverflow { pc }),
                    },
                    IAluOp::Addiu => a.wrapping_add(se),
                    IAluOp::Slti => u32::from((a as i32) < (se as i32)),
                    IAluOp::Sltiu => u32::from(a < se),
                    IAluOp::Andi => a & ze,
                    IAluOp::Ori => a | ze,
                    IAluOp::Xori => a ^ ze,
                };
                self.set_reg(rt, value);
            }
            Instruction::Lui { rt, imm } => self.set_reg(rt, u32::from(imm) << 16),
            Instruction::Branch { op, rs, rt, offset } => {
                let taken = match op {
                    BranchOp::Beq => self.reg(rs) == self.reg(rt),
                    BranchOp::Bne => self.reg(rs) != self.reg(rt),
                };
                self.branch(taken, offset);
            }
            Instruction::BranchZ { op, rs, offset } => {
                let v = self.reg(rs) as i32;
                let taken = match op {
                    BranchZOp::Blez => v <= 0,
                    BranchZOp::Bgtz => v > 0,
                    BranchZOp::Bltz | BranchZOp::Bltzal => v < 0,
                    BranchZOp::Bgez | BranchZOp::Bgezal => v >= 0,
                };
                if op.links() {
                    self.set_reg(Reg::RA, self.state.next_pc);
                }
                self.branch(taken, offset);
            }
            Instruction::Jump { link, target } => {
                if link {
                    self.set_reg(Reg::RA, self.state.next_pc);
                }
                self.state.next_pc = (self.state.next_pc & 0xF000_0000) | (target << 2);
            }
            Instruction::Mem {
                op,
                rt,
                base,
                offset,
            } => {
                self.data_op(op, rt, base, offset, pc, sink)?;
            }
            Instruction::FpMem {
                store,
                ft,
                base,
                offset,
            } => {
                let addr = self.load_addr(base, offset, 4, pc, sink, store)?;
                if store {
                    self.state.mem.write_u32(addr, self.fp_bits(ft));
                } else {
                    let v = self.read_u32(addr, pc)?;
                    self.state.fpr[ft.number() as usize] = v;
                }
            }
            Instruction::Cp1Move { op, rt, fs } => match op {
                Cp1MoveOp::Mfc1 => self.set_reg(rt, self.fp_bits(fs)),
                Cp1MoveOp::Mtc1 => self.state.fpr[fs.number() as usize] = self.reg(rt),
                // Control register moves: only the condition bit of FCR31
                // is modeled.
                Cp1MoveOp::Cfc1 => self.set_reg(rt, u32::from(self.state.fp_cond) << 23),
                Cp1MoveOp::Ctc1 => self.state.fp_cond = self.reg(rt) & (1 << 23) != 0,
            },
            Instruction::FpArith {
                op,
                fmt,
                fd,
                fs,
                ft,
            } => match fmt {
                FpFmt::Single => {
                    let a = self.fp_single(fs);
                    let b = self.fp_single(ft);
                    let v = match op {
                        FpOp::Add => a + b,
                        FpOp::Sub => a - b,
                        FpOp::Mul => a * b,
                        FpOp::Div => a / b,
                    };
                    self.state.fpr[fd.number() as usize] = v.to_bits();
                }
                FpFmt::Double => {
                    let a = self.fp_double(fs);
                    let b = self.fp_double(ft);
                    let v = match op {
                        FpOp::Add => a + b,
                        FpOp::Sub => a - b,
                        FpOp::Mul => a * b,
                        FpOp::Div => a / b,
                    };
                    self.set_fp_double(fd, v);
                }
                // panic-ok: the decoder never emits word-format FP arithmetic.
                FpFmt::Word => unreachable!("decoder rejects word-format arithmetic"),
            },
            Instruction::FpUnary { op, fmt, fd, fs } => match fmt {
                FpFmt::Single => {
                    let a = self.fp_single(fs);
                    let v = match op {
                        FpUnaryOp::Abs => a.abs(),
                        FpUnaryOp::Neg => -a,
                        FpUnaryOp::Mov => a,
                    };
                    self.state.fpr[fd.number() as usize] = v.to_bits();
                }
                FpFmt::Double => {
                    let a = self.fp_double(fs);
                    let v = match op {
                        FpUnaryOp::Abs => a.abs(),
                        FpUnaryOp::Neg => -a,
                        FpUnaryOp::Mov => a,
                    };
                    self.set_fp_double(fd, v);
                }
                // panic-ok: the decoder never emits word-format unary ops.
                FpFmt::Word => unreachable!("decoder rejects word-format unary ops"),
            },
            Instruction::FpCvt { to, from, fd, fs } => {
                // cvt.w truncates toward zero, matching C casts (compilers
                // programmed the FCSR rounding mode accordingly).
                match (to, from) {
                    (FpFmt::Single, FpFmt::Double) => {
                        let v = self.fp_double(fs) as f32;
                        self.state.fpr[fd.number() as usize] = v.to_bits();
                    }
                    (FpFmt::Single, FpFmt::Word) => {
                        let v = self.fp_bits(fs) as i32 as f32;
                        self.state.fpr[fd.number() as usize] = v.to_bits();
                    }
                    (FpFmt::Double, FpFmt::Single) => {
                        let v = f64::from(self.fp_single(fs));
                        self.set_fp_double(fd, v);
                    }
                    (FpFmt::Double, FpFmt::Word) => {
                        let v = f64::from(self.fp_bits(fs) as i32);
                        self.set_fp_double(fd, v);
                    }
                    (FpFmt::Word, FpFmt::Single) => {
                        let v = self.fp_single(fs).trunc() as i32;
                        self.state.fpr[fd.number() as usize] = v as u32;
                    }
                    (FpFmt::Word, FpFmt::Double) => {
                        let v = self.fp_double(fs).trunc() as i32;
                        self.state.fpr[fd.number() as usize] = v as u32;
                    }
                    // panic-ok: the decoder never emits same-format conversions.
                    _ => unreachable!("decoder rejects same-format conversions"),
                }
            }
            Instruction::FpCmp { cond, fmt, fs, ft } => {
                let result = match fmt {
                    FpFmt::Single => {
                        let (a, b) = (self.fp_single(fs), self.fp_single(ft));
                        match cond {
                            FpCond::Eq => a == b,
                            FpCond::Lt => a < b,
                            FpCond::Le => a <= b,
                        }
                    }
                    FpFmt::Double => {
                        let (a, b) = (self.fp_double(fs), self.fp_double(ft));
                        match cond {
                            FpCond::Eq => a == b,
                            FpCond::Lt => a < b,
                            FpCond::Le => a <= b,
                        }
                    }
                    // panic-ok: the decoder never emits word-format compares.
                    FpFmt::Word => unreachable!("decoder rejects word-format compares"),
                };
                self.state.fp_cond = result;
            }
            Instruction::Bc1 { on_true, offset } => {
                self.branch(self.state.fp_cond == on_true, offset);
            }
        }
        Ok(())
    }

    fn data_op(
        &mut self,
        op: MemOp,
        rt: Reg,
        base: Reg,
        offset: i16,
        pc: u32,
        sink: &mut impl TraceSink,
    ) -> Result<(), EmuError> {
        let align = match op {
            MemOp::Lw | MemOp::Sw => 4,
            MemOp::Lh | MemOp::Lhu | MemOp::Sh => 2,
            _ => 1,
        };
        let store = op.is_store();
        let addr = self.load_addr(base, offset, align, pc, sink, store)?;
        match op {
            MemOp::Lb => {
                let v = self
                    .state
                    .mem
                    .read_u8(addr)
                    .ok_or(EmuError::UnmappedRead { addr, pc })?;
                self.set_reg(rt, v as i8 as i32 as u32);
            }
            MemOp::Lbu => {
                let v = self
                    .state
                    .mem
                    .read_u8(addr)
                    .ok_or(EmuError::UnmappedRead { addr, pc })?;
                self.set_reg(rt, u32::from(v));
            }
            MemOp::Lh => {
                let v = self
                    .state
                    .mem
                    .read_u16(addr)
                    .ok_or(EmuError::UnmappedRead { addr, pc })?;
                self.set_reg(rt, v as i16 as i32 as u32);
            }
            MemOp::Lhu => {
                let v = self
                    .state
                    .mem
                    .read_u16(addr)
                    .ok_or(EmuError::UnmappedRead { addr, pc })?;
                self.set_reg(rt, u32::from(v));
            }
            MemOp::Lw => {
                let v = self.read_u32(addr, pc)?;
                self.set_reg(rt, v);
            }
            MemOp::Sb => self.state.mem.write_u8(addr, self.reg(rt) as u8),
            MemOp::Sh => self.state.mem.write_u16(addr, self.reg(rt) as u16),
            MemOp::Sw => self.state.mem.write_u32(addr, self.reg(rt)),
            // Little-endian LWL/LWR/SWL/SWR (unaligned access pairs).
            MemOp::Lwl => {
                let m = (addr & 3) + 1; // bytes loaded into the TOP of rt
                let mut v = self.reg(rt);
                for i in 0..m {
                    let b = self
                        .state
                        .mem
                        .read_u8(addr - m + 1 + i)
                        .ok_or(EmuError::UnmappedRead { addr, pc })?;
                    let byte_pos = 4 - m + i;
                    v = (v & !(0xFF << (8 * byte_pos))) | (u32::from(b) << (8 * byte_pos));
                }
                self.set_reg(rt, v);
            }
            MemOp::Lwr => {
                let k = 4 - (addr & 3); // bytes loaded into the BOTTOM of rt
                let mut v = self.reg(rt);
                for i in 0..k {
                    let b = self
                        .state
                        .mem
                        .read_u8(addr + i)
                        .ok_or(EmuError::UnmappedRead { addr, pc })?;
                    v = (v & !(0xFF << (8 * i))) | (u32::from(b) << (8 * i));
                }
                self.set_reg(rt, v);
            }
            MemOp::Swl => {
                let m = (addr & 3) + 1;
                let v = self.reg(rt);
                for i in 0..m {
                    let byte = (v >> (8 * (4 - m + i))) as u8;
                    self.state.mem.write_u8(addr - m + 1 + i, byte);
                }
            }
            MemOp::Swr => {
                let k = 4 - (addr & 3);
                let v = self.reg(rt);
                for i in 0..k {
                    self.state.mem.write_u8(addr + i, (v >> (8 * i)) as u8);
                }
            }
        }
        Ok(())
    }

    /// SPIM-compatible system services.
    fn syscall(&mut self, pc: u32, sink: &mut impl TraceSink) -> Result<(), EmuError> {
        use std::fmt::Write as _;
        let number = self.reg(Reg::V0);
        let a0 = self.reg(Reg::A0);
        match number {
            1 => {
                // panic-ok: fmt::Write to a String is infallible.
                write!(self.state.output, "{}", a0 as i32).expect("write to String cannot fail");
            }
            2 => {
                // panic-ok: 12 < 32, and fmt::Write to a String is infallible.
                let v = self.fp_single(FpReg::new(12).expect("f12 in range"));
                // panic-ok: fmt::Write to a String is infallible.
                write!(self.state.output, "{v}").expect("write to String cannot fail");
            }
            3 => {
                // panic-ok: 12 < 32, and fmt::Write to a String is infallible.
                let v = self.fp_double(FpReg::new(12).expect("f12 in range"));
                // panic-ok: fmt::Write to a String is infallible.
                write!(self.state.output, "{v}").expect("write to String cannot fail");
            }
            4 => {
                let mut addr = a0;
                loop {
                    let b = self
                        .state
                        .mem
                        .read_u8(addr)
                        .ok_or(EmuError::UnmappedRead { addr, pc })?;
                    sink.data_access(addr, false);
                    if b == 0 {
                        break;
                    }
                    self.state.output.push(b as char);
                    addr += 1;
                }
            }
            5 => {
                let v = self.state.input.pop_front().unwrap_or(0);
                self.set_reg(Reg::V0, v as u32);
            }
            9 => {
                let old = self.state.brk;
                self.state.brk = self.state.brk.wrapping_add(a0);
                // Touch the region so subsequent reads are mapped.
                let mut a = old & !0xFFF;
                while a < self.state.brk {
                    self.state.mem.write_u8(a, 0);
                    a = a.saturating_add(0x1000);
                }
                self.set_reg(Reg::V0, old);
            }
            10 => self.state.exit = Some(0),
            11 => self.state.output.push((a0 & 0xFF) as u8 as char),
            17 => self.state.exit = Some(a0 as i32),
            other => return Err(EmuError::UnknownSyscall { pc, number: other }),
        }
        Ok(())
    }
}
