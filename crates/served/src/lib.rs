//! `ccrp-served`: a fault-tolerant compression/simulation service.
//!
//! The paper's toolchain — compressor, verifier, emulator, cache
//! simulator — is a set of libraries. This crate fronts them with a
//! small std-only daemon (threads and channels, no async runtime)
//! speaking a length-prefixed framed protocol over TCP, built to stay
//! up under hostile input:
//!
//! - **Typed protocol** ([`proto`]): `compress`, `verify`, `inspect`,
//!   `expand-line`, `run` (bounded emulation), `sweep-cell` (one cache
//!   simulation cell), and `attest` (challenge-response integrity
//!   digests over v2 containers, after Vetter & Westhoff-style remote
//!   attestation). Failures are structured [`ErrorKind`]s, never
//!   free-form strings alone.
//! - **Bounded everything** ([`wire`], [`ServiceConfig`]): frame
//!   lengths are checked before allocation, per-endpoint input sizes
//!   are capped, execution runs under a [`ccrp::StepBudget`] fuel
//!   limit, and a watchdog thread cancels requests past their
//!   wall-clock deadline through the budget's cancel flag.
//! - **Per-request isolation** ([`Service`]): each request runs under
//!   `catch_unwind`; a panicking handler becomes a typed `Internal`
//!   error and any cached image it touched is quarantined.
//! - **Admission control** ([`ServerHandle`]): a bounded job queue
//!   sheds excess load with typed `Overload` errors that clients
//!   retry with exponential backoff ([`Client::call_with_retry`]).
//! - **Content-addressed caching** ([`ImageCache`]): decoded images
//!   are cached by content hash, so corruption can never alias a
//!   pristine entry.
//!
//! The hostile-input campaign that exercises all of this end-to-end
//! lives in `ccrp_bench::servesim`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attest;
pub mod cache;
pub mod proto;
pub mod server;
pub mod service;
pub mod wire;

pub use attest::{attest_digest, MAX_ATTEST_SAMPLES};
pub use cache::{content_hash, CacheCounters, ImageCache};
pub use proto::{ErrorKind, Request, Response, MAX_RUN_OUTPUT_BYTES};
pub use server::{Client, ClientError, ServerHandle};
pub use service::{Service, ServiceConfig, ServiceCounters};
pub use wire::{read_frame, write_frame, FrameError, FRAME_HEADER_BYTES};
