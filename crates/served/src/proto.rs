//! Typed request/response messages and their byte encoding.
//!
//! Messages travel one per [frame](crate::wire). The encoding reuses the
//! core crate's [`ByteWriter`]/[`ByteReader`] helpers: a leading tag
//! byte selects the variant, fixed-width fields follow little-endian,
//! and variable-length payloads carry a bounds-checked `u64` length
//! prefix (`read_len`), so a corrupt inner length is rejected before it
//! can drive an allocation — the same discipline the container parser
//! and snapshot reader follow.

use ccrp::{ByteReader, ByteWriter, SnapshotError};

/// Cap on the syscall output echoed back by [`Response::Ran`].
pub const MAX_RUN_OUTPUT_BYTES: usize = 4096;

/// How a request failed, as reported on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The request could not be understood: bad tag, bad field, bad
    /// container header, unassemblable source.
    Malformed,
    /// The server shed the request before running it (queue full).
    /// Retryable.
    Overload,
    /// The request exceeded its deadline or fuel budget.
    Timeout,
    /// The input parsed but its integrity checks failed: CRC mismatch,
    /// line miscompare, attestation over a corrupt image.
    IntegrityFailure,
    /// Execution faulted (emulator machine check, bad memory access).
    Fault,
    /// The handler itself failed; its state was quarantined.
    Internal,
}

impl ErrorKind {
    /// Every kind, in tag order.
    pub const ALL: [ErrorKind; 6] = [
        ErrorKind::Malformed,
        ErrorKind::Overload,
        ErrorKind::Timeout,
        ErrorKind::IntegrityFailure,
        ErrorKind::Fault,
        ErrorKind::Internal,
    ];

    /// Stable lowercase name (used in reports and traces).
    pub fn name(self) -> &'static str {
        match self {
            ErrorKind::Malformed => "malformed",
            ErrorKind::Overload => "overload",
            ErrorKind::Timeout => "timeout",
            ErrorKind::IntegrityFailure => "integrity_failure",
            ErrorKind::Fault => "fault",
            ErrorKind::Internal => "internal",
        }
    }

    fn tag(self) -> u8 {
        match self {
            ErrorKind::Malformed => 0,
            ErrorKind::Overload => 1,
            ErrorKind::Timeout => 2,
            ErrorKind::IntegrityFailure => 3,
            ErrorKind::Fault => 4,
            ErrorKind::Internal => 5,
        }
    }

    fn from_tag(tag: u8) -> Result<ErrorKind, SnapshotError> {
        ErrorKind::ALL
            .get(tag as usize)
            .copied()
            .ok_or(SnapshotError::Malformed {
                what: "unknown error kind",
            })
    }
}

/// A client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Compress raw text into a container.
    Compress {
        /// Address the text loads at.
        text_base: u32,
        /// Emit a v2 (CRC-carrying) container.
        v2: bool,
        /// The bytes to compress (padded to a 32-byte multiple by the
        /// server).
        text: Vec<u8>,
    },
    /// Parse a container and run its full integrity verification.
    Verify {
        /// The container bytes.
        container: Vec<u8>,
    },
    /// Parse a container and report its geometry without expanding.
    Inspect {
        /// The container bytes.
        container: Vec<u8>,
    },
    /// Expand one 32-byte line of a container.
    ExpandLine {
        /// The container bytes.
        container: Vec<u8>,
        /// Byte address of the line (relative to the text base).
        address: u32,
    },
    /// Assemble and run a program under a fuel budget.
    Run {
        /// Assembly source.
        source: String,
        /// Fuel budget in instructions; `0` means the server default.
        /// Values above the server default are clamped down to it.
        fuel: u64,
    },
    /// Run one cache-simulation cell: assemble, trace, and replay the
    /// trace through both the standard and CCRP system simulators.
    SweepCell {
        /// Assembly source.
        source: String,
        /// Instruction-cache capacity in bytes.
        cache_bytes: u32,
        /// Index into [`ccrp_sim::MemoryModel::ALL`].
        memory: u8,
        /// Fuel budget for the emulation *and* each replay; `0` means
        /// the server default.
        fuel: u64,
    },
    /// Challenge-response attestation: digest nonce-selected lines of a
    /// v2 container.
    Attest {
        /// The v2 container bytes.
        container: Vec<u8>,
        /// The challenge nonce.
        nonce: u64,
        /// Number of lines to sample.
        samples: u32,
    },
    /// Deliberately misbehave inside the handler (testing only; the
    /// server must have chaos enabled).
    Chaos {
        /// Which misbehaviour: `0` panics the handler.
        kind: u8,
    },
}

/// A server response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// The compressed container for a [`Request::Compress`].
    Compressed {
        /// The container bytes.
        container: Vec<u8>,
    },
    /// A container parsed and verified clean.
    Verified {
        /// Number of 32-byte lines.
        lines: u32,
        /// Container format version (1 or 2).
        version: u8,
        /// Total stored bytes (blocks + LAT + code table).
        stored_bytes: u32,
    },
    /// Container geometry for a [`Request::Inspect`].
    Inspected {
        /// Number of 32-byte lines.
        lines: u32,
        /// Container format version (1 or 2).
        version: u8,
        /// Address the text loads at.
        text_base: u32,
        /// Bytes of original text.
        original_bytes: u32,
        /// Total stored bytes (blocks + LAT + code table).
        stored_bytes: u32,
        /// Lines stored uncompressed because compression expanded them.
        bypass_lines: u32,
        /// Compression ratio in thousandths (stored/original × 1000).
        ratio_milli: u32,
    },
    /// One expanded line.
    Line {
        /// The 32 decompressed bytes.
        bytes: [u8; 32],
    },
    /// A program ran to completion.
    Ran {
        /// Dynamic instructions executed.
        steps: u64,
        /// The program's exit code.
        exit_code: i32,
        /// Syscall output, truncated to [`MAX_RUN_OUTPUT_BYTES`].
        output: Vec<u8>,
    },
    /// One simulation cell's result.
    SweptCell {
        /// Standard-processor cycles (rounded).
        standard_cycles: u64,
        /// CCRP-processor cycles (rounded).
        ccrp_cycles: u64,
        /// CCRP/standard cycle ratio in thousandths.
        relative_milli: u32,
    },
    /// An attestation digest.
    Attested {
        /// The challenge digest.
        digest: u64,
        /// Lines actually sampled.
        sampled: u32,
    },
    /// The request failed.
    Error {
        /// Failure class.
        kind: ErrorKind,
        /// Human-readable detail.
        detail: String,
    },
}

fn put_blob(w: &mut ByteWriter, bytes: &[u8]) {
    w.put_u64(bytes.len() as u64);
    w.put_bytes(bytes);
}

fn read_blob(r: &mut ByteReader<'_>, what: &'static str) -> Result<Vec<u8>, SnapshotError> {
    let len = r.read_len(what)?;
    Ok(r.take(len)?.to_vec())
}

fn read_string(r: &mut ByteReader<'_>, what: &'static str) -> Result<String, SnapshotError> {
    String::from_utf8(read_blob(r, what)?).map_err(|_| SnapshotError::Malformed { what })
}

fn read_bool(r: &mut ByteReader<'_>, what: &'static str) -> Result<bool, SnapshotError> {
    match r.read_u8()? {
        0 => Ok(false),
        1 => Ok(true),
        _ => Err(SnapshotError::Malformed { what }),
    }
}

fn finish<T>(r: &ByteReader<'_>, value: T) -> Result<T, SnapshotError> {
    if r.is_exhausted() {
        Ok(value)
    } else {
        Err(SnapshotError::TrailingBytes {
            extra: r.remaining(),
        })
    }
}

impl Request {
    /// Encodes the request into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        match self {
            Request::Compress {
                text_base,
                v2,
                text,
            } => {
                w.put_u8(1);
                w.put_u32(*text_base);
                w.put_u8(u8::from(*v2));
                put_blob(&mut w, text);
            }
            Request::Verify { container } => {
                w.put_u8(2);
                put_blob(&mut w, container);
            }
            Request::Inspect { container } => {
                w.put_u8(3);
                put_blob(&mut w, container);
            }
            Request::ExpandLine { container, address } => {
                w.put_u8(4);
                w.put_u32(*address);
                put_blob(&mut w, container);
            }
            Request::Run { source, fuel } => {
                w.put_u8(5);
                w.put_u64(*fuel);
                put_blob(&mut w, source.as_bytes());
            }
            Request::SweepCell {
                source,
                cache_bytes,
                memory,
                fuel,
            } => {
                w.put_u8(6);
                w.put_u32(*cache_bytes);
                w.put_u8(*memory);
                w.put_u64(*fuel);
                put_blob(&mut w, source.as_bytes());
            }
            Request::Attest {
                container,
                nonce,
                samples,
            } => {
                w.put_u8(7);
                w.put_u64(*nonce);
                w.put_u32(*samples);
                put_blob(&mut w, container);
            }
            Request::Chaos { kind } => {
                w.put_u8(8);
                w.put_u8(*kind);
            }
        }
        w.into_bytes()
    }

    /// Decodes a request from a frame payload.
    ///
    /// # Errors
    ///
    /// [`SnapshotError`] on truncation, an unknown tag, an inner length
    /// exceeding the payload, or trailing bytes.
    pub fn decode(bytes: &[u8]) -> Result<Request, SnapshotError> {
        let mut r = ByteReader::new(bytes);
        let request = match r.read_u8()? {
            1 => Request::Compress {
                text_base: r.read_u32()?,
                v2: read_bool(&mut r, "compress v2 flag")?,
                text: read_blob(&mut r, "compress text")?,
            },
            2 => Request::Verify {
                container: read_blob(&mut r, "verify container")?,
            },
            3 => Request::Inspect {
                container: read_blob(&mut r, "inspect container")?,
            },
            4 => Request::ExpandLine {
                address: r.read_u32()?,
                container: read_blob(&mut r, "expand-line container")?,
            },
            5 => Request::Run {
                fuel: r.read_u64()?,
                source: read_string(&mut r, "run source")?,
            },
            6 => {
                let cache_bytes = r.read_u32()?;
                let memory = r.read_u8()?;
                let fuel = r.read_u64()?;
                Request::SweepCell {
                    source: read_string(&mut r, "sweep source")?,
                    cache_bytes,
                    memory,
                    fuel,
                }
            }
            7 => {
                let nonce = r.read_u64()?;
                let samples = r.read_u32()?;
                Request::Attest {
                    container: read_blob(&mut r, "attest container")?,
                    nonce,
                    samples,
                }
            }
            8 => Request::Chaos { kind: r.read_u8()? },
            _ => {
                return Err(SnapshotError::Malformed {
                    what: "unknown request tag",
                })
            }
        };
        finish(&r, request)
    }

    /// Stable lowercase name of the endpoint (used in traces/reports).
    pub fn endpoint(&self) -> &'static str {
        match self {
            Request::Compress { .. } => "compress",
            Request::Verify { .. } => "verify",
            Request::Inspect { .. } => "inspect",
            Request::ExpandLine { .. } => "expand-line",
            Request::Run { .. } => "run",
            Request::SweepCell { .. } => "sweep-cell",
            Request::Attest { .. } => "attest",
            Request::Chaos { .. } => "chaos",
        }
    }
}

impl Response {
    /// Encodes the response into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        match self {
            Response::Compressed { container } => {
                w.put_u8(1);
                put_blob(&mut w, container);
            }
            Response::Verified {
                lines,
                version,
                stored_bytes,
            } => {
                w.put_u8(2);
                w.put_u32(*lines);
                w.put_u8(*version);
                w.put_u32(*stored_bytes);
            }
            Response::Inspected {
                lines,
                version,
                text_base,
                original_bytes,
                stored_bytes,
                bypass_lines,
                ratio_milli,
            } => {
                w.put_u8(3);
                w.put_u32(*lines);
                w.put_u8(*version);
                w.put_u32(*text_base);
                w.put_u32(*original_bytes);
                w.put_u32(*stored_bytes);
                w.put_u32(*bypass_lines);
                w.put_u32(*ratio_milli);
            }
            Response::Line { bytes } => {
                w.put_u8(4);
                w.put_bytes(bytes);
            }
            Response::Ran {
                steps,
                exit_code,
                output,
            } => {
                w.put_u8(5);
                w.put_u64(*steps);
                w.put_i32(*exit_code);
                put_blob(&mut w, output);
            }
            Response::SweptCell {
                standard_cycles,
                ccrp_cycles,
                relative_milli,
            } => {
                w.put_u8(6);
                w.put_u64(*standard_cycles);
                w.put_u64(*ccrp_cycles);
                w.put_u32(*relative_milli);
            }
            Response::Attested { digest, sampled } => {
                w.put_u8(7);
                w.put_u64(*digest);
                w.put_u32(*sampled);
            }
            Response::Error { kind, detail } => {
                w.put_u8(8);
                w.put_u8(kind.tag());
                put_blob(&mut w, detail.as_bytes());
            }
        }
        w.into_bytes()
    }

    /// Decodes a response from a frame payload.
    ///
    /// # Errors
    ///
    /// [`SnapshotError`] on truncation, an unknown tag, an inner length
    /// exceeding the payload, or trailing bytes.
    pub fn decode(bytes: &[u8]) -> Result<Response, SnapshotError> {
        let mut r = ByteReader::new(bytes);
        let response = match r.read_u8()? {
            1 => Response::Compressed {
                container: read_blob(&mut r, "compressed container")?,
            },
            2 => Response::Verified {
                lines: r.read_u32()?,
                version: r.read_u8()?,
                stored_bytes: r.read_u32()?,
            },
            3 => Response::Inspected {
                lines: r.read_u32()?,
                version: r.read_u8()?,
                text_base: r.read_u32()?,
                original_bytes: r.read_u32()?,
                stored_bytes: r.read_u32()?,
                bypass_lines: r.read_u32()?,
                ratio_milli: r.read_u32()?,
            },
            4 => {
                let mut bytes = [0u8; 32];
                bytes.copy_from_slice(r.take(32)?);
                Response::Line { bytes }
            }
            5 => Response::Ran {
                steps: r.read_u64()?,
                exit_code: r.read_i32()?,
                output: read_blob(&mut r, "run output")?,
            },
            6 => Response::SweptCell {
                standard_cycles: r.read_u64()?,
                ccrp_cycles: r.read_u64()?,
                relative_milli: r.read_u32()?,
            },
            7 => Response::Attested {
                digest: r.read_u64()?,
                sampled: r.read_u32()?,
            },
            8 => Response::Error {
                kind: ErrorKind::from_tag(r.read_u8()?)?,
                detail: read_string(&mut r, "error detail")?,
            },
            _ => {
                return Err(SnapshotError::Malformed {
                    what: "unknown response tag",
                })
            }
        };
        finish(&r, response)
    }

    /// The error kind, when this is an [`Response::Error`].
    pub fn error_kind(&self) -> Option<ErrorKind> {
        match self {
            Response::Error { kind, .. } => Some(*kind),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_requests() -> Vec<Request> {
        vec![
            Request::Compress {
                text_base: 0x1000,
                v2: true,
                text: vec![0x24; 64],
            },
            Request::Verify {
                container: vec![1, 2, 3],
            },
            Request::Inspect { container: vec![] },
            Request::ExpandLine {
                container: vec![9; 8],
                address: 32,
            },
            Request::Run {
                source: "main: li $v0, 10\n syscall\n".to_owned(),
                fuel: 1000,
            },
            Request::SweepCell {
                source: "main: b main".to_owned(),
                cache_bytes: 1024,
                memory: 1,
                fuel: 0,
            },
            Request::Attest {
                container: vec![7; 16],
                nonce: 0xDEAD_BEEF_CAFE_F00D,
                samples: 12,
            },
            Request::Chaos { kind: 0 },
        ]
    }

    fn all_responses() -> Vec<Response> {
        vec![
            Response::Compressed {
                container: vec![4; 40],
            },
            Response::Verified {
                lines: 128,
                version: 2,
                stored_bytes: 3200,
            },
            Response::Inspected {
                lines: 128,
                version: 1,
                text_base: 0,
                original_bytes: 4096,
                stored_bytes: 3000,
                bypass_lines: 32,
                ratio_milli: 732,
            },
            Response::Line { bytes: [0xAB; 32] },
            Response::Ran {
                steps: 12345,
                exit_code: -3,
                output: b"55".to_vec(),
            },
            Response::SweptCell {
                standard_cycles: 100_000,
                ccrp_cycles: 113_000,
                relative_milli: 1130,
            },
            Response::Attested {
                digest: 0x0123_4567_89AB_CDEF,
                sampled: 12,
            },
            Response::Error {
                kind: ErrorKind::IntegrityFailure,
                detail: "line 3 CRC mismatch".to_owned(),
            },
        ]
    }

    #[test]
    fn requests_round_trip() {
        for req in all_requests() {
            assert_eq!(Request::decode(&req.encode()).unwrap(), req, "{req:?}");
        }
    }

    #[test]
    fn responses_round_trip() {
        for resp in all_responses() {
            assert_eq!(Response::decode(&resp.encode()).unwrap(), resp, "{resp:?}");
        }
    }

    #[test]
    fn unknown_tags_rejected() {
        assert!(matches!(
            Request::decode(&[0xFF]),
            Err(SnapshotError::Malformed {
                what: "unknown request tag"
            })
        ));
        assert!(matches!(
            Response::decode(&[0xFF]),
            Err(SnapshotError::Malformed {
                what: "unknown response tag"
            })
        ));
    }

    #[test]
    fn corrupt_inner_length_rejected_before_allocation() {
        // A Verify request whose blob length claims far more than the
        // payload holds.
        let mut bytes = vec![2u8];
        bytes.extend_from_slice(&u64::MAX.to_le_bytes());
        bytes.extend_from_slice(&[0; 4]);
        assert!(matches!(
            Request::decode(&bytes),
            Err(SnapshotError::Malformed {
                what: "verify container"
            })
        ));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = Request::Chaos { kind: 0 }.encode();
        bytes.push(0);
        assert!(matches!(
            Request::decode(&bytes),
            Err(SnapshotError::TrailingBytes { extra: 1 })
        ));
    }

    #[test]
    fn truncated_payload_rejected() {
        let full = Request::Run {
            source: "main: syscall".to_owned(),
            fuel: 9,
        }
        .encode();
        for cut in 0..full.len() {
            assert!(
                Request::decode(&full[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }

    #[test]
    fn error_kind_names_are_stable() {
        let names: Vec<_> = ErrorKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(
            names,
            [
                "malformed",
                "overload",
                "timeout",
                "integrity_failure",
                "fault",
                "internal"
            ]
        );
        for kind in ErrorKind::ALL {
            assert_eq!(ErrorKind::from_tag(kind.tag()).unwrap(), kind);
        }
    }
}
