//! The request dispatcher: bounded inputs, fuel budgets, per-request
//! isolation, and the content-addressed image cache.
//!
//! [`Service`] is transport-agnostic — the TCP [server](crate::server)
//! drives it, but tests and the hostile-input campaign can call
//! [`Service::handle`] directly. Every request runs under
//! `catch_unwind`: a panicking handler is converted into a typed
//! [`ErrorKind::Internal`] response and any cached image the handler
//! touched is quarantined, so one poisoned request cannot corrupt the
//! next (the "per-request isolation" contract).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use ccrp::{CcrpError, CompressedImage, DegradePolicy, StepBudget};
use ccrp_asm::assemble;
use ccrp_compress::{BlockAlignment, ByteCode, ByteHistogram};
use ccrp_emu::{EmuError, Machine, MachineConfig, NullSink, ProgramTrace};
use ccrp_probe::{Event, EventLog, Probe, TimedEvent};
use ccrp_sim::{MemoryModel, SimError, Simulation, SystemConfig};

use crate::attest::attest_digest;
use crate::cache::{content_hash, CacheCounters, ImageCache};
use crate::proto::{ErrorKind, Request, Response, MAX_RUN_OUTPUT_BYTES};

/// Limits and budgets the service enforces on every request.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Largest frame the transport will read (enforced pre-allocation).
    pub max_frame_bytes: u32,
    /// Largest text a `compress` request may submit.
    pub max_text_bytes: usize,
    /// Largest container an upload endpoint may submit.
    pub max_container_bytes: usize,
    /// Largest assembly source `run`/`sweep-cell` may submit.
    pub max_source_bytes: usize,
    /// Default (and maximum) fuel budget for emulation and replay.
    pub default_fuel: u64,
    /// Wall-clock deadline per request; the watchdog sets the cancel
    /// flag when it passes.
    pub deadline: Duration,
    /// Socket read timeout — the slow-loris guard.
    pub read_timeout: Duration,
    /// Bounded request queue depth; requests beyond it are shed.
    pub queue_depth: usize,
    /// Worker threads draining the queue.
    pub workers: usize,
    /// Capacity of the decoded-image cache.
    pub cache_entries: usize,
    /// Allow [`Request::Chaos`] to actually misbehave (testing only).
    pub enable_chaos: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            max_frame_bytes: 1 << 20,
            max_text_bytes: 256 << 10,
            max_container_bytes: 1 << 20,
            max_source_bytes: 64 << 10,
            default_fuel: 2_000_000,
            deadline: Duration::from_secs(2),
            read_timeout: Duration::from_millis(250),
            queue_depth: 32,
            workers: 2,
            cache_entries: 8,
            enable_chaos: false,
        }
    }
}

/// Monotonic counters the service maintains, for reports and the
/// campaign's invariants.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceCounters {
    /// Requests dispatched (including ones that failed).
    pub requests: u64,
    /// Requests answered with an error response.
    pub failures: u64,
    /// Handler panics converted into `Internal` errors.
    pub panics_caught: u64,
    /// Requests shed before dispatch (queue full or expired while
    /// queued) — counted by [`Service::note_rejected`].
    pub rejected: u64,
}

/// Event sink plus a logical clock; `None` log means probes are off and
/// the service does no event work at all.
struct Telemetry {
    log: Option<Mutex<EventLog>>,
    clock: AtomicU64,
}

impl Telemetry {
    fn emit(&self, event: Event) {
        if let Some(log) = &self.log {
            let cycle = self.clock.fetch_add(1, Ordering::Relaxed);
            // An EventLog append cannot leave the log torn; recover a
            // poison left by an unrelated panicking thread.
            log.lock()
                .unwrap_or_else(|p| p.into_inner())
                .emit(cycle, event);
        }
    }
}

/// The transport-agnostic request handler.
pub struct Service {
    config: ServiceConfig,
    cache: ImageCache,
    telemetry: Telemetry,
    next_id: AtomicU64,
    requests: AtomicU64,
    failures: AtomicU64,
    panics_caught: AtomicU64,
    rejected: AtomicU64,
}

impl Service {
    /// Creates a service with probes off (zero telemetry overhead).
    pub fn new(config: ServiceConfig) -> Service {
        Service::build(config, None)
    }

    /// Creates a service that records request-lifecycle events into an
    /// in-memory [`EventLog`] (drained by [`Service::take_events`]).
    pub fn with_event_log(config: ServiceConfig) -> Service {
        Service::build(config, Some(Mutex::new(EventLog::new())))
    }

    fn build(config: ServiceConfig, log: Option<Mutex<EventLog>>) -> Service {
        let cache = ImageCache::new(config.cache_entries);
        Service {
            config,
            cache,
            telemetry: Telemetry {
                log,
                clock: AtomicU64::new(0),
            },
            next_id: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            panics_caught: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Snapshot of the monotonic counters.
    pub fn counters(&self) -> ServiceCounters {
        ServiceCounters {
            requests: self.requests.load(Ordering::Relaxed),
            failures: self.failures.load(Ordering::Relaxed),
            panics_caught: self.panics_caught.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
        }
    }

    /// Snapshot of the image-cache counters.
    pub fn cache_counters(&self) -> CacheCounters {
        self.cache.counters()
    }

    /// Drains the recorded request-lifecycle events (empty when the
    /// service was built without an event log).
    pub fn take_events(&self) -> Vec<TimedEvent> {
        match &self.telemetry.log {
            Some(log) => {
                std::mem::take(&mut *log.lock().unwrap_or_else(|p| p.into_inner())).into_events()
            }
            None => Vec::new(),
        }
    }

    /// Records a request shed before dispatch (queue full, or expired
    /// while queued) so rejected work still appears in the trace.
    pub fn note_rejected(&self, reason: &'static str) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.telemetry.emit(Event::RequestRejected { id, reason });
    }

    /// Handles one request with no external cancellation (the fuel
    /// budget still bounds execution).
    pub fn handle(&self, request: &Request) -> Response {
        self.handle_cancellable(request, &Arc::new(AtomicBool::new(false)))
    }

    /// Handles one request; `cancel` is the watchdog's deadline flag,
    /// polled by the fuel budget during emulation and replay.
    ///
    /// Never panics: handler panics are caught, counted, converted to
    /// [`ErrorKind::Internal`], and any cached image the handler was
    /// using is quarantined.
    pub fn handle_cancellable(&self, request: &Request, cancel: &Arc<AtomicBool>) -> Response {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.telemetry.emit(Event::RequestStart { id });
        let started = Instant::now();
        let touched = Mutex::new(None::<u64>);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            self.dispatch(request, cancel, &touched)
        }));
        let response = match outcome {
            Ok(response) => response,
            Err(_) => {
                self.panics_caught.fetch_add(1, Ordering::Relaxed);
                let key = *touched.lock().unwrap_or_else(|p| p.into_inner());
                if let Some(key) = key {
                    self.cache.quarantine(key);
                }
                Response::Error {
                    kind: ErrorKind::Internal,
                    detail: "request handler panicked; cached state quarantined".to_owned(),
                }
            }
        };
        let ok = response.error_kind().is_none();
        if !ok {
            self.failures.fetch_add(1, Ordering::Relaxed);
        }
        let ticks = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        self.telemetry.emit(Event::RequestDone { id, ticks, ok });
        response
    }

    fn dispatch(
        &self,
        request: &Request,
        cancel: &Arc<AtomicBool>,
        touched: &Mutex<Option<u64>>,
    ) -> Response {
        match request {
            Request::Compress {
                text_base,
                v2,
                text,
            } => self.compress(*text_base, *v2, text),
            Request::Verify { container } => match self.load_image(container, touched) {
                Ok(image) => self.verify(&image),
                Err(response) => response,
            },
            Request::Inspect { container } => match self.load_image(container, touched) {
                Ok(image) => inspect(&image),
                Err(response) => response,
            },
            Request::ExpandLine { container, address } => {
                match self.load_image(container, touched) {
                    Ok(image) => expand_line(&image, *address),
                    Err(response) => response,
                }
            }
            Request::Run { source, fuel } => self.run(source, *fuel, cancel),
            Request::SweepCell {
                source,
                cache_bytes,
                memory,
                fuel,
            } => self.sweep_cell(source, *cache_bytes, *memory, *fuel, cancel),
            Request::Attest {
                container,
                nonce,
                samples,
            } => match self.load_image(container, touched) {
                Ok(image) => match attest_digest(&image, *nonce, *samples) {
                    Ok((digest, sampled)) => Response::Attested { digest, sampled },
                    Err(e) => error(classify_ccrp(&e), &e),
                },
                Err(response) => response,
            },
            Request::Chaos { kind } => self.chaos(*kind),
        }
    }

    /// Parses (or cache-loads) a container, recording the touched cache
    /// key for quarantine-on-panic.
    fn load_image(
        &self,
        container: &[u8],
        touched: &Mutex<Option<u64>>,
    ) -> Result<Arc<CompressedImage>, Response> {
        if container.len() > self.config.max_container_bytes {
            return Err(Response::Error {
                kind: ErrorKind::Malformed,
                detail: format!(
                    "container of {} bytes exceeds the {}-byte limit",
                    container.len(),
                    self.config.max_container_bytes
                ),
            });
        }
        let key = content_hash(container);
        *touched.lock().unwrap_or_else(|p| p.into_inner()) = Some(key);
        if let Some(image) = self.cache.get(key) {
            self.telemetry.emit(Event::CacheHit { key });
            return Ok(image);
        }
        let image = CompressedImage::from_bytes(container)
            .map(Arc::new)
            .map_err(|e| error(classify_ccrp(&e), &e))?;
        self.cache.insert(key, Arc::clone(&image));
        Ok(image)
    }

    fn compress(&self, text_base: u32, v2: bool, text: &[u8]) -> Response {
        if text.is_empty() {
            return malformed("compress text is empty");
        }
        if text.len() > self.config.max_text_bytes {
            return Response::Error {
                kind: ErrorKind::Malformed,
                detail: format!(
                    "text of {} bytes exceeds the {}-byte limit",
                    text.len(),
                    self.config.max_text_bytes
                ),
            };
        }
        let mut padded = text.to_vec();
        while !padded.len().is_multiple_of(32) {
            padded.push(0);
        }
        let code = match ByteCode::preselected(&ByteHistogram::of(&padded)) {
            Ok(code) => code,
            Err(e) => return error(ErrorKind::Malformed, &e),
        };
        match CompressedImage::build(text_base, &padded, code, BlockAlignment::Word) {
            Ok(image) => Response::Compressed {
                container: if v2 {
                    image.to_bytes_v2()
                } else {
                    image.to_bytes()
                },
            },
            Err(e) => error(ErrorKind::Malformed, &e),
        }
    }

    fn verify(&self, image: &CompressedImage) -> Response {
        match image.verify() {
            Ok(()) => Response::Verified {
                lines: image.line_count() as u32,
                version: if image.block_crcs().is_some() { 2 } else { 1 },
                stored_bytes: image.total_stored_bytes(true),
            },
            Err(e) => error(ErrorKind::IntegrityFailure, &e),
        }
    }

    fn run(&self, source: &str, fuel: u64, cancel: &Arc<AtomicBool>) -> Response {
        let image = match self.assemble_bounded(source) {
            Ok(image) => image,
            Err(response) => return response,
        };
        let mut machine = Machine::with_config(&image, MachineConfig::default());
        let mut budget = self.budget(fuel, cancel);
        match machine.run_budgeted(&mut NullSink, &mut budget) {
            Ok(summary) => Response::Ran {
                steps: summary.instructions,
                exit_code: summary.exit_code,
                output: truncated_output(machine.output()),
            },
            Err(e) => error(classify_emu(&e), &e),
        }
    }

    fn sweep_cell(
        &self,
        source: &str,
        cache_bytes: u32,
        memory: u8,
        fuel: u64,
        cancel: &Arc<AtomicBool>,
    ) -> Response {
        let Some(model) = MemoryModel::ALL.get(usize::from(memory)).copied() else {
            return malformed("memory model index out of range");
        };
        let image = match self.assemble_bounded(source) {
            Ok(image) => image,
            Err(response) => return response,
        };
        let mut machine = Machine::with_config(&image, MachineConfig::default());
        let mut trace = ProgramTrace::new();
        let mut budget = self.budget(fuel, cancel);
        if let Err(e) = machine.run_budgeted(&mut trace, &mut budget) {
            return error(classify_emu(&e), &e);
        }
        let code = match ByteCode::preselected(&ByteHistogram::of(image.text_bytes())) {
            Ok(code) => code,
            Err(e) => return error(ErrorKind::Malformed, &e),
        };
        let rom = match CompressedImage::build(
            image.text_base(),
            image.text_bytes(),
            code,
            BlockAlignment::Word,
        ) {
            Ok(rom) => rom,
            Err(e) => return error(classify_ccrp(&e), &e),
        };
        let config = SystemConfig::new()
            .with_cache_bytes(cache_bytes)
            .with_memory(model);
        let mut standard_budget = self.budget(fuel, cancel);
        let standard = match Simulation::new(config)
            .budgeted(&mut standard_budget)
            .standard(trace.iter())
        {
            Ok(stats) => stats,
            Err(e) => return error(classify_sim(&e), &e),
        };
        let mut ccrp_budget = self.budget(fuel, cancel);
        let ccrp = match Simulation::new(config)
            .budgeted(&mut ccrp_budget)
            .ccrp(&rom, trace.iter())
        {
            Ok(stats) => stats,
            Err(e) => return error(classify_sim(&e), &e),
        };
        let standard_cycles = standard.total_cycles().round() as u64;
        let ccrp_cycles = ccrp.total_cycles().round() as u64;
        let relative_milli = if standard_cycles == 0 {
            0
        } else {
            ((ccrp.total_cycles() / standard.total_cycles()) * 1000.0).round() as u32
        };
        Response::SweptCell {
            standard_cycles,
            ccrp_cycles,
            relative_milli,
        }
    }

    fn chaos(&self, kind: u8) -> Response {
        if !self.config.enable_chaos {
            return malformed("chaos endpoint is disabled");
        }
        match kind {
            // The isolation test fixture: prove catch_unwind + quarantine
            // turn a handler panic into a typed Internal error.
            0 => panic!("chaos: deliberate handler panic"), // panic-ok: the isolation fixture itself
            _ => malformed("unknown chaos kind"),
        }
    }

    fn assemble_bounded(&self, source: &str) -> Result<ccrp_asm::ProgramImage, Response> {
        if source.len() > self.config.max_source_bytes {
            return Err(Response::Error {
                kind: ErrorKind::Malformed,
                detail: format!(
                    "source of {} bytes exceeds the {}-byte limit",
                    source.len(),
                    self.config.max_source_bytes
                ),
            });
        }
        assemble(source).map_err(|e| error(ErrorKind::Malformed, &e))
    }

    /// A fuel budget from the request's ask, clamped to the server
    /// default, wired to the watchdog's cancel flag.
    fn budget(&self, requested: u64, cancel: &Arc<AtomicBool>) -> StepBudget {
        let fuel = if requested == 0 {
            self.config.default_fuel
        } else {
            requested.min(self.config.default_fuel)
        };
        StepBudget::limited(fuel).with_cancel(Arc::clone(cancel))
    }
}

/// Expands one line, honoring a `Retry`-style policy for transient
/// faults: persistent corruption still fails after the attempts are
/// spent, matching [`DegradePolicy::Retry`] semantics in the refill
/// engine.
fn expand_line(image: &CompressedImage, address: u32) -> Response {
    let policy = DegradePolicy::Retry { attempts: 3 };
    let attempts = match policy {
        DegradePolicy::Retry { attempts } => attempts.max(1),
        _ => 1,
    };
    let mut last = None;
    for _ in 0..attempts {
        match image.expand_line(address) {
            Ok(bytes) => return Response::Line { bytes },
            Err(e) => last = Some(e),
        }
    }
    match last {
        Some(e) => error(classify_ccrp(&e), &e),
        None => malformed("line expansion made no attempts"),
    }
}

fn inspect(image: &CompressedImage) -> Response {
    Response::Inspected {
        lines: image.line_count() as u32,
        version: if image.block_crcs().is_some() { 2 } else { 1 },
        text_base: image.text_base(),
        original_bytes: image.original_bytes(),
        stored_bytes: image.total_stored_bytes(true),
        bypass_lines: image.bypass_count() as u32,
        ratio_milli: (image.compression_ratio() * 1000.0).round() as u32,
    }
}

fn truncated_output(output: &str) -> Vec<u8> {
    let bytes = output.as_bytes();
    bytes[..bytes.len().min(MAX_RUN_OUTPUT_BYTES)].to_vec()
}

fn malformed(detail: &str) -> Response {
    Response::Error {
        kind: ErrorKind::Malformed,
        detail: detail.to_owned(),
    }
}

fn error(kind: ErrorKind, source: &dyn std::fmt::Display) -> Response {
    Response::Error {
        kind,
        detail: source.to_string(),
    }
}

/// Structural container errors are the client's fault; everything else
/// that surfaces from a *parsed* image is an integrity failure.
fn classify_ccrp(e: &CcrpError) -> ErrorKind {
    match e {
        CcrpError::BadContainer { .. }
        | CcrpError::AddressOutOfRange { .. }
        | CcrpError::MisalignedTextBase { .. }
        | CcrpError::Compress(_) => ErrorKind::Malformed,
        _ => ErrorKind::IntegrityFailure,
    }
}

fn classify_emu(e: &EmuError) -> ErrorKind {
    match e {
        EmuError::BudgetExhausted { .. } | EmuError::StepLimitExceeded { .. } => ErrorKind::Timeout,
        _ => ErrorKind::Fault,
    }
}

fn classify_sim(e: &SimError) -> ErrorKind {
    match e {
        SimError::Budget(_) => ErrorKind::Timeout,
        SimError::Cache(_) => ErrorKind::Malformed,
        _ => ErrorKind::IntegrityFailure,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SUM_SRC: &str = "
        main:
            li   $t0, 10
            li   $t1, 0
        loop:
            addu $t1, $t1, $t0
            addiu $t0, $t0, -1
            bnez $t0, loop
            li   $v0, 1
            move $a0, $t1
            syscall
            li   $v0, 10
            syscall
        ";

    fn chaos_config() -> ServiceConfig {
        ServiceConfig {
            enable_chaos: true,
            ..ServiceConfig::default()
        }
    }

    fn sample_text() -> Vec<u8> {
        (0..2048u32).map(|i| (i % 53) as u8).collect()
    }

    fn v2_container(service: &Service) -> Vec<u8> {
        match service.handle(&Request::Compress {
            text_base: 0,
            v2: true,
            text: sample_text(),
        }) {
            Response::Compressed { container } => container,
            other => panic!("compress failed: {other:?}"),
        }
    }

    #[test]
    fn compress_verify_inspect_expand_roundtrip() {
        let service = Service::new(ServiceConfig::default());
        let container = v2_container(&service);
        match service.handle(&Request::Verify {
            container: container.clone(),
        }) {
            Response::Verified { lines, version, .. } => {
                assert_eq!(lines, 64);
                assert_eq!(version, 2);
            }
            other => panic!("verify failed: {other:?}"),
        }
        match service.handle(&Request::Inspect {
            container: container.clone(),
        }) {
            Response::Inspected {
                lines,
                version,
                original_bytes,
                ..
            } => {
                assert_eq!((lines, version, original_bytes), (64, 2, 2048));
            }
            other => panic!("inspect failed: {other:?}"),
        }
        match service.handle(&Request::ExpandLine {
            container,
            address: 32,
        }) {
            Response::Line { bytes } => {
                let expected: Vec<u8> = (32..64u32).map(|i| (i % 53) as u8).collect();
                assert_eq!(bytes.to_vec(), expected);
            }
            other => panic!("expand failed: {other:?}"),
        }
    }

    #[test]
    fn corrupt_container_gets_typed_error_not_panic() {
        let service = Service::new(ServiceConfig::default());
        let mut container = v2_container(&service);
        // Flip a bit inside the packed blocks.
        let mid = container.len() / 2;
        container[mid] ^= 0x10;
        let response = service.handle(&Request::Verify { container });
        match response {
            Response::Error { kind, .. } => assert!(
                matches!(kind, ErrorKind::IntegrityFailure | ErrorKind::Malformed),
                "unexpected kind {kind:?}"
            ),
            other => panic!("corruption accepted: {other:?}"),
        }
    }

    #[test]
    fn run_executes_and_timeout_is_typed() {
        let service = Service::new(ServiceConfig::default());
        match service.handle(&Request::Run {
            source: SUM_SRC.to_owned(),
            fuel: 0,
        }) {
            Response::Ran {
                output, exit_code, ..
            } => {
                assert_eq!(output, b"55");
                assert_eq!(exit_code, 0);
            }
            other => panic!("run failed: {other:?}"),
        }
        match service.handle(&Request::Run {
            source: "main: b main".to_owned(),
            fuel: 1000,
        }) {
            Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::Timeout),
            other => panic!("runaway not bounded: {other:?}"),
        }
    }

    #[test]
    fn fuel_is_clamped_to_server_default() {
        let config = ServiceConfig {
            default_fuel: 500,
            ..ServiceConfig::default()
        };
        let service = Service::new(config);
        // Asking for far more fuel than the server allows still times out.
        match service.handle(&Request::Run {
            source: "main: b main".to_owned(),
            fuel: u64::MAX,
        }) {
            Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::Timeout),
            other => panic!("clamp failed: {other:?}"),
        }
    }

    #[test]
    fn sweep_cell_reports_both_processors() {
        let service = Service::new(ServiceConfig::default());
        match service.handle(&Request::SweepCell {
            source: SUM_SRC.to_owned(),
            cache_bytes: 1024,
            memory: 1,
            fuel: 0,
        }) {
            Response::SweptCell {
                standard_cycles,
                ccrp_cycles,
                relative_milli,
            } => {
                assert!(standard_cycles > 0);
                assert!(ccrp_cycles > 0);
                assert!(relative_milli > 0);
            }
            other => panic!("sweep failed: {other:?}"),
        }
        // Bad memory-model index is malformed, not a panic.
        assert_eq!(
            service
                .handle(&Request::SweepCell {
                    source: SUM_SRC.to_owned(),
                    cache_bytes: 1024,
                    memory: 9,
                    fuel: 0,
                })
                .error_kind(),
            Some(ErrorKind::Malformed)
        );
    }

    #[test]
    fn attest_round_trips_against_local_digest() {
        let service = Service::new(ServiceConfig::default());
        let container = v2_container(&service);
        let image = CompressedImage::from_bytes(&container).unwrap();
        let (expected, expected_sampled) = attest_digest(&image, 99, 16).unwrap();
        match service.handle(&Request::Attest {
            container,
            nonce: 99,
            samples: 16,
        }) {
            Response::Attested { digest, sampled } => {
                assert_eq!(digest, expected);
                assert_eq!(sampled, expected_sampled);
            }
            other => panic!("attest failed: {other:?}"),
        }
    }

    #[test]
    fn chaos_panic_is_isolated_and_service_stays_usable() {
        let service = Service::new(chaos_config());
        let response = service.handle(&Request::Chaos { kind: 0 });
        assert_eq!(response.error_kind(), Some(ErrorKind::Internal));
        assert_eq!(service.counters().panics_caught, 1);
        // The service still answers the next request correctly.
        let container = v2_container(&service);
        assert!(matches!(
            service.handle(&Request::Verify { container }),
            Response::Verified { .. }
        ));
    }

    #[test]
    fn chaos_is_rejected_when_disabled() {
        let service = Service::new(ServiceConfig::default());
        assert_eq!(
            service.handle(&Request::Chaos { kind: 0 }).error_kind(),
            Some(ErrorKind::Malformed)
        );
        assert_eq!(service.counters().panics_caught, 0);
    }

    #[test]
    fn cache_serves_repeat_uploads_and_quarantines_after_panic() {
        let service = Service::with_event_log(chaos_config());
        let container = v2_container(&service);
        let request = Request::Verify {
            container: container.clone(),
        };
        service.handle(&request);
        service.handle(&request);
        let counters = service.cache_counters();
        assert_eq!(counters.hits, 1, "second upload should hit the cache");
        let events = service.take_events();
        assert!(events.iter().any(|t| t.event.kind() == "cache_hit"));
    }

    #[test]
    fn oversized_inputs_rejected_with_typed_errors() {
        let config = ServiceConfig {
            max_text_bytes: 64,
            max_container_bytes: 64,
            max_source_bytes: 16,
            ..ServiceConfig::default()
        };
        let service = Service::new(config);
        assert_eq!(
            service
                .handle(&Request::Compress {
                    text_base: 0,
                    v2: false,
                    text: vec![0; 65],
                })
                .error_kind(),
            Some(ErrorKind::Malformed)
        );
        assert_eq!(
            service
                .handle(&Request::Verify {
                    container: vec![0; 65],
                })
                .error_kind(),
            Some(ErrorKind::Malformed)
        );
        assert_eq!(
            service
                .handle(&Request::Run {
                    source: "x".repeat(17),
                    fuel: 0,
                })
                .error_kind(),
            Some(ErrorKind::Malformed)
        );
    }

    #[test]
    fn probe_off_responses_are_byte_identical() {
        let plain = Service::new(ServiceConfig::default());
        let probed = Service::with_event_log(ServiceConfig::default());
        let requests = [
            Request::Compress {
                text_base: 0,
                v2: true,
                text: sample_text(),
            },
            Request::Verify {
                container: v2_container(&plain),
            },
            Request::Run {
                source: SUM_SRC.to_owned(),
                fuel: 0,
            },
            Request::Run {
                source: "garbage !!".to_owned(),
                fuel: 0,
            },
        ];
        for request in &requests {
            let a = plain.handle(request).encode();
            let b = probed.handle(request).encode();
            assert_eq!(a, b, "probed response diverged for {request:?}");
        }
        assert!(plain.take_events().is_empty());
        assert!(!probed.take_events().is_empty());
    }

    #[test]
    fn request_lifecycle_events_pair_up() {
        let service = Service::with_event_log(ServiceConfig::default());
        service.handle(&Request::Inspect { container: vec![] });
        service.note_rejected("overload");
        let events = service.take_events();
        let kinds: Vec<_> = events.iter().map(|t| t.event.kind()).collect();
        assert_eq!(kinds, ["request_start", "request_done", "request_rejected"]);
        // The logical clock strictly increases.
        for pair in events.windows(2) {
            assert!(pair[0].cycle < pair[1].cycle);
        }
    }
}
