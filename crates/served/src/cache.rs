//! Content-addressed LRU cache of decoded container images.
//!
//! Upload-style endpoints (`verify`, `inspect`, `expand-line`, `attest`)
//! all start by parsing container bytes. The cache keys the *content*
//! (FNV-1a 64 over the raw bytes), so a byte-identical re-upload skips
//! the parse while any corruption — even a single flipped bit — misses
//! and re-parses. Quarantine handles the failure path: when a handler
//! panics while a cached image is in play, the key is evicted *and*
//! blacklisted so the possibly-poisoned entry can never be served again
//! for the remainder of the process.

use std::sync::{Arc, Mutex};

use ccrp::CompressedImage;

/// FNV-1a 64-bit hash of a byte string — the cache key for container
/// content.
pub fn content_hash(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

struct Entry {
    key: u64,
    image: Arc<CompressedImage>,
    last_used: u64,
}

struct Inner {
    entries: Vec<Entry>,
    quarantined: Vec<u64>,
    tick: u64,
    hits: u64,
    misses: u64,
}

/// A bounded LRU cache of parsed images keyed by content hash, with a
/// quarantine list for keys touched by a panicking handler.
pub struct ImageCache {
    capacity: usize,
    inner: Mutex<Inner>,
}

/// Hit/miss/quarantine counters, for telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that missed (including quarantined keys).
    pub misses: u64,
    /// Keys currently quarantined.
    pub quarantined: u64,
}

impl ImageCache {
    /// Creates a cache holding at most `capacity` images.
    pub fn new(capacity: usize) -> ImageCache {
        ImageCache {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner {
                entries: Vec::new(),
                quarantined: Vec::new(),
                tick: 0,
                hits: 0,
                misses: 0,
            }),
        }
    }

    // A panicking handler can poison this mutex; the guarded state is a
    // plain LRU list that is valid at every step, so recovering the
    // inner value is safe — quarantine handles semantic poisoning.
    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Looks up the image for `key`, returning `None` on a miss or a
    /// quarantined key.
    pub fn get(&self, key: u64) -> Option<Arc<CompressedImage>> {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if inner.quarantined.contains(&key) {
            inner.misses += 1;
            return None;
        }
        if let Some(entry) = inner.entries.iter_mut().find(|e| e.key == key) {
            entry.last_used = tick;
            let image = Arc::clone(&entry.image);
            inner.hits += 1;
            Some(image)
        } else {
            inner.misses += 1;
            None
        }
    }

    /// Inserts `image` under `key`, evicting the least-recently-used
    /// entry when full. Quarantined keys are never (re-)admitted.
    pub fn insert(&self, key: u64, image: Arc<CompressedImage>) {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if inner.quarantined.contains(&key) {
            return;
        }
        if let Some(entry) = inner.entries.iter_mut().find(|e| e.key == key) {
            entry.image = image;
            entry.last_used = tick;
            return;
        }
        if inner.entries.len() >= self.capacity {
            if let Some(lru) = inner
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
            {
                inner.entries.swap_remove(lru);
            }
        }
        inner.entries.push(Entry {
            key,
            image,
            last_used: tick,
        });
    }

    /// Evicts `key` and blacklists it for the rest of the process —
    /// called when a handler panicked while this entry was in play.
    pub fn quarantine(&self, key: u64) {
        let mut inner = self.lock();
        inner.entries.retain(|e| e.key != key);
        if !inner.quarantined.contains(&key) {
            inner.quarantined.push(key);
        }
    }

    /// Current counters.
    pub fn counters(&self) -> CacheCounters {
        let inner = self.lock();
        CacheCounters {
            hits: inner.hits,
            misses: inner.misses,
            quarantined: inner.quarantined.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccrp_compress::{BlockAlignment, ByteCode, ByteHistogram};

    fn image(fill: u8) -> Arc<CompressedImage> {
        let text = vec![fill; 64];
        let code = ByteCode::preselected(&ByteHistogram::of(&text)).unwrap();
        Arc::new(CompressedImage::build(0, &text, code, BlockAlignment::Word).unwrap())
    }

    #[test]
    fn content_hash_is_fnv1a() {
        // Reference vectors for FNV-1a 64.
        assert_eq!(content_hash(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(content_hash(b"a"), 0xAF63_DC4C_8601_EC8C);
        // Single-bit corruption changes the key.
        assert_ne!(content_hash(&[0u8; 64]), content_hash(&[1u8; 64]));
    }

    #[test]
    fn hit_after_insert_miss_after_corruption() {
        let cache = ImageCache::new(4);
        let bytes = vec![0x24u8; 128];
        let key = content_hash(&bytes);
        assert!(cache.get(key).is_none());
        cache.insert(key, image(0x24));
        assert!(cache.get(key).is_some());
        // Corrupt one byte: different key, guaranteed miss.
        let mut corrupt = bytes.clone();
        corrupt[100] ^= 0x40;
        assert!(cache.get(content_hash(&corrupt)).is_none());
        let c = cache.counters();
        assert_eq!((c.hits, c.misses), (1, 2));
    }

    #[test]
    fn lru_evicts_the_coldest() {
        let cache = ImageCache::new(2);
        cache.insert(1, image(1));
        cache.insert(2, image(2));
        assert!(cache.get(1).is_some()); // 1 is now warmer than 2
        cache.insert(3, image(3)); // evicts 2
        assert!(cache.get(2).is_none());
        assert!(cache.get(1).is_some());
        assert!(cache.get(3).is_some());
    }

    #[test]
    fn quarantine_evicts_and_blocks_readmission() {
        let cache = ImageCache::new(4);
        cache.insert(7, image(7));
        cache.quarantine(7);
        assert!(cache.get(7).is_none());
        cache.insert(7, image(7));
        assert!(cache.get(7).is_none(), "quarantined key was re-admitted");
        assert_eq!(cache.counters().quarantined, 1);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let cache = Arc::new(ImageCache::new(2));
        let inner = Arc::clone(&cache);
        // Poison the mutex by panicking while holding it.
        let _ = std::thread::spawn(move || {
            let _guard = inner.inner.lock().unwrap();
            panic!("poison");
        })
        .join();
        cache.insert(1, image(1));
        assert!(cache.get(1).is_some());
    }
}
