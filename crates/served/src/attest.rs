//! Challenge-response attestation over v2 containers.
//!
//! A verifier that shipped a compressed ROM wants evidence the deployed
//! image still holds the bytes it shipped — without downloading it
//! back. The protocol: the verifier picks a random nonce; the device
//! walks a nonce-selected sample of its lines, decompressing each
//! through the real Huffman path, and folds the decompressed bytes'
//! CRC-32, the *stored* per-block CRC record, and the line index into
//! one 64-bit digest. The verifier recomputes the digest from its
//! pristine copy and compares. Because the walk decodes the stored
//! blocks (rather than trusting the CRC records alone), a corrupted
//! block surfaces either as a decode-time CRC mismatch or as a digest
//! that cannot match the pristine image.

use ccrp::{crc32, CcrpError, CompressedImage};

/// Hard cap on lines sampled per challenge, keeping attestation cost
/// bounded no matter what the request asks for.
pub const MAX_ATTEST_SAMPLES: u32 = 256;

/// SplitMix64: the nonce-expansion PRNG for line selection.
fn splitmix64(state: &mut u64) {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
}

fn splitmix64_next(state: &mut u64) -> u64 {
    splitmix64(state);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Computes the challenge digest for `nonce` over up to `samples`
/// nonce-selected lines of a v2 image.
///
/// Both sides of the protocol call this: the device on its deployed
/// image, the verifier on its pristine copy.
///
/// # Errors
///
/// - [`CcrpError::BadContainer`] when the image carries no block CRC
///   records (a v1 image) or has no lines.
/// - Any expansion error (e.g. [`CcrpError::CrcMismatch`]) from walking
///   a corrupted block.
pub fn attest_digest(
    image: &CompressedImage,
    nonce: u64,
    samples: u32,
) -> Result<(u64, u32), CcrpError> {
    let crcs = image.block_crcs().ok_or(CcrpError::BadContainer {
        what: "attestation requires a version-2 container",
    })?;
    let lines = image.line_count();
    if lines == 0 {
        return Err(CcrpError::BadContainer {
            what: "attestation requires a non-empty container",
        });
    }
    let sampled = samples.clamp(1, MAX_ATTEST_SAMPLES);
    let mut state = nonce;
    let mut digest = nonce ^ 0xA076_1D64_78BD_642F;
    let mut buf = [0u8; 32];
    for _ in 0..sampled {
        let line = (splitmix64_next(&mut state) % lines as u64) as u32;
        image.expand_line_into(line * 32 + image.text_base(), &mut buf)?;
        let expanded_crc = crc32(&buf);
        let stored_crc = crcs.get(line as usize).copied().unwrap_or(0);
        digest ^= (u64::from(expanded_crc) << 32) | u64::from(stored_crc);
        digest = digest
            .rotate_left(17)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(u64::from(line));
    }
    Ok((digest, sampled))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccrp_compress::{BlockAlignment, ByteCode, ByteHistogram};

    fn v2_image() -> CompressedImage {
        let text: Vec<u8> = (0..4096u32).map(|i| (i % 61) as u8).collect();
        let code = ByteCode::preselected(&ByteHistogram::of(&text)).unwrap();
        let mut image = CompressedImage::build(0, &text, code, BlockAlignment::Word).unwrap();
        image.attach_block_crcs();
        image
    }

    #[test]
    fn digest_is_deterministic_and_nonce_sensitive() {
        let image = v2_image();
        let (a, sampled) = attest_digest(&image, 42, 16).unwrap();
        let (b, _) = attest_digest(&image, 42, 16).unwrap();
        let (c, _) = attest_digest(&image, 43, 16).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(sampled, 16);
    }

    #[test]
    fn v1_image_is_rejected() {
        let text = vec![0x24u8; 128];
        let code = ByteCode::preselected(&ByteHistogram::of(&text)).unwrap();
        let v1 = CompressedImage::build(0, &text, code, BlockAlignment::Word).unwrap();
        assert!(matches!(
            attest_digest(&v1, 1, 4),
            Err(CcrpError::BadContainer { .. })
        ));
    }

    #[test]
    fn corruption_changes_or_fails_the_digest() {
        let pristine = v2_image();
        let (expected, _) = attest_digest(&pristine, 7, MAX_ATTEST_SAMPLES).unwrap();
        let mut corrupt = v2_image();
        corrupt.corrupt_block_byte(0, 0, 0xFF).unwrap();
        // With 256 samples over a 128-line image, line 0 is sampled with
        // overwhelming probability; either the decode trips its CRC or
        // the digest diverges.
        match attest_digest(&corrupt, 7, MAX_ATTEST_SAMPLES) {
            Ok((digest, _)) => assert_ne!(digest, expected),
            Err(CcrpError::CrcMismatch { .. }) => {}
            Err(other) => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn sample_count_is_clamped() {
        let image = v2_image();
        let (_, sampled) = attest_digest(&image, 1, 0).unwrap();
        assert_eq!(sampled, 1);
        let (_, sampled) = attest_digest(&image, 1, u32::MAX).unwrap();
        assert_eq!(sampled, MAX_ATTEST_SAMPLES);
    }
}
