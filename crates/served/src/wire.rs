//! Length-prefixed framing over a byte stream.
//!
//! Every message — request or response — travels as one frame: a 4-byte
//! little-endian payload length followed by the payload. The reader
//! enforces a maximum frame size *before* allocating, so a hostile
//! length field costs four bytes of parsing, not an allocation; frames
//! arriving truncated (a closed socket mid-payload) and reads that
//! exceed the stream's timeout (a slow-loris writer) surface as typed
//! [`FrameError`]s the connection loop can act on.

use std::fmt;
use std::io::{self, Read, Write};

/// Bytes of the frame length prefix.
pub const FRAME_HEADER_BYTES: usize = 4;

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// The stream closed cleanly on a frame boundary (no bytes of a new
    /// frame had arrived).
    Closed,
    /// The stream closed mid-frame — a truncated header or payload.
    Truncated,
    /// The header declared a payload larger than the reader's limit.
    /// Nothing beyond the header was read or allocated.
    Oversized {
        /// The declared payload length.
        declared: u32,
        /// The enforced maximum.
        max: u32,
    },
    /// An I/O error, including read timeouts (`WouldBlock` /
    /// `TimedOut`) from a stream deadline — the slow-loris guard.
    Io(io::Error),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Closed => write!(f, "stream closed on a frame boundary"),
            FrameError::Truncated => write!(f, "stream closed mid-frame"),
            FrameError::Oversized { declared, max } => {
                write!(
                    f,
                    "declared frame length {declared} exceeds the {max}-byte limit"
                )
            }
            FrameError::Io(e) => write!(f, "frame read failed: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl FrameError {
    /// Whether this error is a stream read timeout (the peer stopped
    /// writing mid-frame for longer than the configured deadline).
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            FrameError::Io(e) if matches!(
                e.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            )
        )
    }
}

/// Reads exactly `buf.len()` bytes, distinguishing a clean close before
/// the first byte (`Ok(false)`) from one after it ([`FrameError::Truncated`]).
fn read_full(reader: &mut impl Read, buf: &mut [u8]) -> Result<bool, FrameError> {
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Ok(false)
                } else {
                    Err(FrameError::Truncated)
                };
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(true)
}

/// Reads one frame, rejecting declared lengths above `max_bytes` before
/// any payload allocation.
///
/// # Errors
///
/// [`FrameError`] as documented on each variant.
pub fn read_frame(reader: &mut impl Read, max_bytes: u32) -> Result<Vec<u8>, FrameError> {
    let mut header = [0u8; FRAME_HEADER_BYTES];
    if !read_full(reader, &mut header)? {
        return Err(FrameError::Closed);
    }
    let declared = u32::from_le_bytes(header);
    if declared > max_bytes {
        return Err(FrameError::Oversized {
            declared,
            max: max_bytes,
        });
    }
    let mut payload = vec![0u8; declared as usize];
    match read_full(reader, &mut payload)? {
        true => Ok(payload),
        false if declared == 0 => Ok(payload),
        false => Err(FrameError::Truncated),
    }
}

/// Writes one frame.
///
/// # Errors
///
/// Propagates the underlying write error; payloads longer than
/// `u32::MAX` are reported as [`io::ErrorKind::InvalidInput`].
pub fn write_frame(writer: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame payload too long"))?;
    writer.write_all(&len.to_le_bytes())?;
    writer.write_all(payload)?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn frame(payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        write_frame(&mut out, payload).unwrap();
        out
    }

    #[test]
    fn roundtrip() {
        let bytes = frame(b"hello");
        let mut cursor = Cursor::new(bytes);
        assert_eq!(read_frame(&mut cursor, 1024).unwrap(), b"hello");
        // Clean close on the boundary after the frame.
        assert!(matches!(
            read_frame(&mut cursor, 1024),
            Err(FrameError::Closed)
        ));
    }

    #[test]
    fn empty_payload_roundtrips() {
        let mut cursor = Cursor::new(frame(b""));
        assert_eq!(read_frame(&mut cursor, 16).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn oversized_length_rejected_before_allocation() {
        let mut bytes = u32::MAX.to_le_bytes().to_vec();
        bytes.extend_from_slice(b"xx");
        let mut cursor = Cursor::new(bytes);
        assert!(matches!(
            read_frame(&mut cursor, 1 << 20),
            Err(FrameError::Oversized {
                declared: u32::MAX,
                max
            }) if max == 1 << 20
        ));
    }

    #[test]
    fn truncation_detected_in_header_and_payload() {
        // Two bytes of a header.
        let mut cursor = Cursor::new(vec![9u8, 0]);
        assert!(matches!(
            read_frame(&mut cursor, 64),
            Err(FrameError::Truncated)
        ));
        // Full header, half a payload.
        let mut bytes = 8u32.to_le_bytes().to_vec();
        bytes.extend_from_slice(b"1234");
        let mut cursor = Cursor::new(bytes);
        assert!(matches!(
            read_frame(&mut cursor, 64),
            Err(FrameError::Truncated)
        ));
    }

    #[test]
    fn timeout_classification() {
        let timeout = FrameError::Io(io::Error::new(io::ErrorKind::WouldBlock, "t"));
        assert!(timeout.is_timeout());
        assert!(!FrameError::Closed.is_timeout());
        assert!(!FrameError::Io(io::Error::other("x")).is_timeout());
    }
}
