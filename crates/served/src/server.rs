//! The TCP transport: accept loop, bounded admission queue, worker
//! pool, and the deadline watchdog.
//!
//! Threading model (std only — no async runtime):
//!
//! - One **accept thread** polls a non-blocking listener and spawns a
//!   thread per connection.
//! - **Connection threads** read frames under the socket read timeout
//!   (the slow-loris guard), decode requests, and push jobs onto the
//!   bounded queue. A full queue sheds the request immediately with a
//!   typed `Overload` error — admission control, not backpressure.
//! - **Worker threads** drain the queue and run each job through
//!   [`Service::handle_cancellable`]; jobs whose deadline passed while
//!   queued are answered `Timeout` without dispatch.
//! - The **watchdog thread** scans in-flight requests every few
//!   milliseconds and sets the cancel flag of any past its deadline;
//!   the fuel budget inside emulation/replay observes the flag and
//!   aborts with a typed `Timeout`.

use std::collections::VecDeque;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError, SyncSender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use crate::proto::{ErrorKind, Request, Response};
use crate::service::Service;
use crate::wire::{read_frame, write_frame, FrameError};

/// How often the watchdog scans for expired deadlines.
const WATCHDOG_PERIOD: Duration = Duration::from_millis(10);

/// How long the accept loop sleeps when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// One admitted request travelling from a connection thread to a
/// worker.
struct Job {
    request: Request,
    reply: SyncSender<Response>,
    cancel: Arc<AtomicBool>,
    deadline: Instant,
}

/// Bounded MPMC queue: `try_push` sheds instead of blocking (admission
/// control); `pop` blocks workers until a job or shutdown.
struct JobQueue {
    jobs: Mutex<VecDeque<Job>>,
    ready: Condvar,
    depth: usize,
}

impl JobQueue {
    fn new(depth: usize) -> JobQueue {
        JobQueue {
            jobs: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            depth: depth.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<Job>> {
        self.jobs.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Admits `job`, or returns it when the queue is full.
    fn try_push(&self, job: Job) -> Result<(), Job> {
        let mut jobs = self.lock();
        if jobs.len() >= self.depth {
            return Err(job);
        }
        jobs.push_back(job);
        drop(jobs);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until a job arrives or `shutdown` is set.
    fn pop(&self, shutdown: &AtomicBool) -> Option<Job> {
        let mut jobs = self.lock();
        loop {
            if let Some(job) = jobs.pop_front() {
                return Some(job);
            }
            if shutdown.load(Ordering::Relaxed) {
                return None;
            }
            let (guard, _) = self
                .ready
                .wait_timeout(jobs, Duration::from_millis(50))
                .unwrap_or_else(|p| p.into_inner());
            jobs = guard;
        }
    }

    fn wake_all(&self) {
        self.ready.notify_all();
    }
}

/// In-flight request registry the watchdog scans: `(deadline, cancel)`
/// per dispatched job.
type Inflight = Mutex<Vec<(Instant, Arc<AtomicBool>)>>;

fn lock_inflight(
    inflight: &Inflight,
) -> std::sync::MutexGuard<'_, Vec<(Instant, Arc<AtomicBool>)>> {
    inflight.lock().unwrap_or_else(|p| p.into_inner())
}

/// A running server; dropping it (or calling [`shutdown`]) stops the
/// accept loop, workers, and watchdog.
///
/// [`shutdown`]: ServerHandle::shutdown
pub struct ServerHandle {
    addr: SocketAddr,
    service: Arc<Service>,
    shutdown: Arc<AtomicBool>,
    queue: Arc<JobQueue>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    watchdog: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// Binds `addr` (use `127.0.0.1:0` for an ephemeral port) and
    /// starts the accept loop, worker pool, and watchdog.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn start(service: Arc<Service>, addr: &str) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let queue = Arc::new(JobQueue::new(service.config().queue_depth));
        let inflight: Arc<Inflight> = Arc::new(Mutex::new(Vec::new()));

        let workers = (0..service.config().workers.max(1))
            .map(|_| {
                let service = Arc::clone(&service);
                let queue = Arc::clone(&queue);
                let shutdown = Arc::clone(&shutdown);
                let inflight = Arc::clone(&inflight);
                thread::spawn(move || worker_loop(&service, &queue, &shutdown, &inflight))
            })
            .collect();

        let watchdog = {
            let shutdown = Arc::clone(&shutdown);
            let inflight = Arc::clone(&inflight);
            thread::spawn(move || {
                while !shutdown.load(Ordering::Relaxed) {
                    thread::sleep(WATCHDOG_PERIOD);
                    let now = Instant::now();
                    for (deadline, cancel) in lock_inflight(&inflight).iter() {
                        if now >= *deadline {
                            cancel.store(true, Ordering::Relaxed);
                        }
                    }
                }
            })
        };

        let accept = {
            let service = Arc::clone(&service);
            let queue = Arc::clone(&queue);
            let shutdown = Arc::clone(&shutdown);
            thread::spawn(move || loop {
                if shutdown.load(Ordering::Relaxed) {
                    return;
                }
                match listener.accept() {
                    Ok((stream, _)) => {
                        let service = Arc::clone(&service);
                        let queue = Arc::clone(&queue);
                        // Connection threads detach; they exit when the
                        // client closes or the read timeout fires.
                        thread::spawn(move || serve_connection(stream, &service, &queue));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        thread::sleep(ACCEPT_POLL);
                    }
                    Err(_) => thread::sleep(ACCEPT_POLL),
                }
            })
        };

        Ok(ServerHandle {
            addr,
            service,
            shutdown,
            queue,
            accept: Some(accept),
            workers,
            watchdog: Some(watchdog),
        })
    }

    /// The bound address (the ephemeral port after a `:0` bind).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The service this server fronts.
    pub fn service(&self) -> &Arc<Service> {
        &self.service
    }

    /// Stops accepting, drains the workers, and joins the maintenance
    /// threads. Idempotent.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        self.queue.wake_all();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(watchdog) = self.watchdog.take() {
            let _ = watchdog.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(service: &Service, queue: &JobQueue, shutdown: &AtomicBool, inflight: &Inflight) {
    while let Some(job) = queue.pop(shutdown) {
        if Instant::now() >= job.deadline {
            service.note_rejected("queue_deadline");
            let _ = job.reply.send(Response::Error {
                kind: ErrorKind::Timeout,
                detail: "deadline exceeded while queued".to_owned(),
            });
            continue;
        }
        lock_inflight(inflight).push((job.deadline, Arc::clone(&job.cancel)));
        let response = service.handle_cancellable(&job.request, &job.cancel);
        lock_inflight(inflight).retain(|(_, cancel)| !Arc::ptr_eq(cancel, &job.cancel));
        // The connection thread may have given up waiting; a dead
        // channel is fine.
        let _ = job.reply.send(response);
    }
}

fn send_response(stream: &mut TcpStream, response: &Response) -> io::Result<()> {
    write_frame(stream, &response.encode())
}

fn serve_connection(mut stream: TcpStream, service: &Service, queue: &JobQueue) {
    let config = service.config().clone();
    if stream.set_read_timeout(Some(config.read_timeout)).is_err() {
        return;
    }
    loop {
        let payload = match read_frame(&mut stream, config.max_frame_bytes) {
            Ok(payload) => payload,
            Err(FrameError::Oversized { declared, max }) => {
                // The stream cannot be resynced past an unread payload:
                // answer, then close.
                let _ = send_response(
                    &mut stream,
                    &Response::Error {
                        kind: ErrorKind::Malformed,
                        detail: format!(
                            "declared frame length {declared} exceeds the {max}-byte limit"
                        ),
                    },
                );
                return;
            }
            // Clean close, truncation, slow-loris timeout, or transport
            // failure: nothing useful to answer.
            Err(_) => return,
        };
        let request = match Request::decode(&payload) {
            Ok(request) => request,
            Err(e) => {
                // A complete but undecodable frame: the stream is still
                // in sync, so answer and keep the connection.
                let _ = send_response(
                    &mut stream,
                    &Response::Error {
                        kind: ErrorKind::Malformed,
                        detail: format!("undecodable request: {e}"),
                    },
                );
                continue;
            }
        };
        let (tx, rx) = mpsc::sync_channel(1);
        let job = Job {
            request,
            reply: tx,
            cancel: Arc::new(AtomicBool::new(false)),
            deadline: Instant::now() + config.deadline,
        };
        let response = match queue.try_push(job) {
            Ok(()) => {
                // Generous upper bound: the worker answers by the
                // deadline (watchdog + fuel) or shortly after.
                match rx.recv_timeout(config.deadline * 2 + Duration::from_secs(3)) {
                    Ok(response) => response,
                    Err(RecvTimeoutError::Timeout | RecvTimeoutError::Disconnected) => {
                        Response::Error {
                            kind: ErrorKind::Timeout,
                            detail: "no response before the transport deadline".to_owned(),
                        }
                    }
                }
            }
            Err(_shed) => {
                service.note_rejected("overload");
                Response::Error {
                    kind: ErrorKind::Overload,
                    detail: "request queue is full; retry with backoff".to_owned(),
                }
            }
        };
        if send_response(&mut stream, &response).is_err() {
            return;
        }
    }
}

/// Errors a [`Client`] call can produce.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed mid-call.
    Frame(FrameError),
    /// Connecting or writing failed.
    Io(io::Error),
    /// The server's reply did not decode.
    Decode(ccrp::SnapshotError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Frame(e) => write!(f, "{e}"),
            ClientError::Io(e) => write!(f, "{e}"),
            ClientError::Decode(e) => write!(f, "bad response: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// A minimal blocking client over one connection.
pub struct Client {
    stream: TcpStream,
    max_frame_bytes: u32,
}

impl Client {
    /// Connects to `addr` with `read_timeout` on responses.
    ///
    /// # Errors
    ///
    /// Propagates connect/configure failures.
    pub fn connect(addr: SocketAddr, read_timeout: Duration) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(read_timeout))?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            max_frame_bytes: 64 << 20,
        })
    }

    /// Sends one request and waits for its response.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport or decode failure.
    pub fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, &request.encode()).map_err(ClientError::Io)?;
        let payload =
            read_frame(&mut self.stream, self.max_frame_bytes).map_err(ClientError::Frame)?;
        Response::decode(&payload).map_err(ClientError::Decode)
    }

    /// Like [`call`](Self::call), but retries `Overload` responses with
    /// exponential backoff, taking its attempt budget from the same
    /// [`DegradePolicy::Retry`](ccrp::DegradePolicy::Retry) shape the
    /// refill engine uses. Any other response is definitive and returns
    /// immediately.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport or decode failure.
    pub fn call_with_retry(
        &mut self,
        request: &Request,
        policy: ccrp::DegradePolicy,
    ) -> Result<(Response, u32), ClientError> {
        let attempts = match policy {
            ccrp::DegradePolicy::Retry { attempts } => attempts.max(1),
            _ => 1,
        };
        let mut response = self.call(request)?;
        let mut retries = 0;
        for attempt in 1..attempts {
            if response.error_kind() != Some(ErrorKind::Overload) {
                break;
            }
            thread::sleep(Duration::from_micros(500u64 << attempt.min(8)));
            response = self.call(request)?;
            retries += 1;
        }
        Ok((response, retries))
    }

    /// Writes raw bytes on the connection (for hostile-input tests).
    ///
    /// # Errors
    ///
    /// Propagates the write failure.
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.stream.write_all(bytes)?;
        self.stream.flush()
    }

    /// Reads one raw response frame (for hostile-input tests).
    ///
    /// # Errors
    ///
    /// [`FrameError`] as on any frame read.
    pub fn read_raw(&mut self) -> Result<Vec<u8>, FrameError> {
        read_frame(&mut self.stream, self.max_frame_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;
    use ccrp::DegradePolicy;

    fn start(config: ServiceConfig) -> ServerHandle {
        ServerHandle::start(Arc::new(Service::new(config)), "127.0.0.1:0")
            .expect("ephemeral bind succeeds")
    }

    fn client(server: &ServerHandle) -> Client {
        Client::connect(server.addr(), Duration::from_secs(10)).expect("connect succeeds")
    }

    #[test]
    fn round_trip_over_tcp() {
        let mut server = start(ServiceConfig::default());
        let mut c = client(&server);
        let response = c
            .call(&Request::Run {
                source: "main: li $a0, 7\n li $v0, 1\n syscall\n li $v0, 10\n syscall".to_owned(),
                fuel: 0,
            })
            .unwrap();
        match response {
            Response::Ran { output, .. } => assert_eq!(output, b"7"),
            other => panic!("unexpected: {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn connection_reuse_and_malformed_frames_keep_the_stream() {
        let mut server = start(ServiceConfig::default());
        let mut c = client(&server);
        // An undecodable (but complete) frame gets Malformed...
        c.send_raw(&{
            let mut b = 3u32.to_le_bytes().to_vec();
            b.extend_from_slice(&[0xFF, 0xFF, 0xFF]);
            b
        })
        .unwrap();
        let reply = Response::decode(&c.read_raw().unwrap()).unwrap();
        assert_eq!(reply.error_kind(), Some(ErrorKind::Malformed));
        // ...and the same connection still serves real requests.
        let response = c.call(&Request::Inspect { container: vec![] }).unwrap();
        assert_eq!(response.error_kind(), Some(ErrorKind::Malformed));
        server.shutdown();
    }

    #[test]
    fn oversized_declared_length_is_rejected_then_closed() {
        let config = ServiceConfig {
            max_frame_bytes: 1024,
            ..ServiceConfig::default()
        };
        let mut server = start(config);
        let mut c = client(&server);
        c.send_raw(&u32::MAX.to_le_bytes()).unwrap();
        let reply = Response::decode(&c.read_raw().unwrap()).unwrap();
        assert_eq!(reply.error_kind(), Some(ErrorKind::Malformed));
        // The server closes after an unresyncable stream.
        assert!(matches!(c.read_raw(), Err(FrameError::Closed)));
        server.shutdown();
    }

    #[test]
    fn slow_loris_connection_is_reaped() {
        let config = ServiceConfig {
            read_timeout: Duration::from_millis(50),
            ..ServiceConfig::default()
        };
        let mut server = start(config);
        let mut c = client(&server);
        // Send a header promising 100 bytes, then stall.
        c.send_raw(&100u32.to_le_bytes()).unwrap();
        thread::sleep(Duration::from_millis(200));
        c.send_raw(&[0u8; 100]).ok();
        // The server closed without answering.
        assert!(matches!(
            c.read_raw(),
            Err(FrameError::Closed) | Err(FrameError::Io(_))
        ));
        server.shutdown();
    }

    #[test]
    fn watchdog_cancels_past_deadline_run() {
        let config = ServiceConfig {
            deadline: Duration::from_millis(100),
            // Enormous fuel: only the watchdog can stop this run.
            default_fuel: u64::MAX,
            ..ServiceConfig::default()
        };
        let mut server = start(config);
        let mut c = client(&server);
        let started = Instant::now();
        let response = c
            .call(&Request::Run {
                source: "main: b main".to_owned(),
                fuel: 0,
            })
            .unwrap();
        assert_eq!(response.error_kind(), Some(ErrorKind::Timeout));
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "cancellation took {:?}",
            started.elapsed()
        );
        server.shutdown();
    }

    #[test]
    fn full_queue_sheds_with_overload() {
        let config = ServiceConfig {
            queue_depth: 1,
            workers: 1,
            ..ServiceConfig::default()
        };
        let mut server = start(config);
        let addr = server.addr();
        // Occupy the single worker with a fuel-bounded long run.
        let busy = thread::spawn(move || {
            let mut c = Client::connect(addr, Duration::from_secs(60)).unwrap();
            c.call(&Request::Run {
                source: "main: b main".to_owned(),
                fuel: 0,
            })
            .unwrap()
        });
        // Wait until that run is actually dispatched, so the worker is
        // provably busy before the burst.
        while server.service().counters().requests == 0 {
            thread::sleep(Duration::from_millis(1));
        }
        // Burst: one request wins the single queue slot, the rest shed.
        let burst: Vec<_> = (0..3)
            .map(|_| {
                thread::spawn(move || {
                    let mut c = Client::connect(addr, Duration::from_secs(60)).unwrap();
                    c.call(&Request::Inspect { container: vec![] }).unwrap()
                })
            })
            .collect();
        let responses: Vec<_> = burst.into_iter().map(|h| h.join().unwrap()).collect();
        let sheds = responses
            .iter()
            .filter(|r| r.error_kind() == Some(ErrorKind::Overload))
            .count();
        assert!(sheds >= 2, "expected at least 2 sheds, got {responses:?}");
        // Every burst request still got a typed response (Malformed for
        // the slot winner's empty container, Timeout if it expired in
        // the queue, Overload for the shed ones).
        for response in &responses {
            assert!(matches!(
                response.error_kind(),
                Some(ErrorKind::Overload | ErrorKind::Timeout | ErrorKind::Malformed)
            ));
        }
        assert!(server.service().counters().rejected >= 2);
        // The saturating run itself ends with a typed Timeout (fuel).
        assert_eq!(busy.join().unwrap().error_kind(), Some(ErrorKind::Timeout));
        // Once drained, retry-with-backoff reaches a definitive answer.
        let mut c = client(&server);
        let (response, _) = c
            .call_with_retry(
                &Request::Inspect { container: vec![] },
                DegradePolicy::Retry { attempts: 8 },
            )
            .unwrap();
        assert_ne!(response.error_kind(), Some(ErrorKind::Overload));
        server.shutdown();
    }
}
