//! Deterministic synthesis of realistic MIPS R2000 object code.
//!
//! The paper compresses DECstation 3100 binaries; we do not have those
//! binaries, so static program bodies are synthesized with the
//! instruction and operand mix of 1992 MIPS compiler output: function
//! prologues/epilogues, stack-relative loads and stores, small
//! register pools, word/double-aligned offsets, `lui`/`addiu` address
//! pairs, delay-slot `nop`s after branches, and literal pools. What
//! matters for the compression experiments is the resulting *byte
//! distribution* — heavily skewed toward 0x00 and a few opcode and
//! register-field bytes — which is also the dialect of the hand-written
//! kernels this crate traces, so one preselected code serves both.
//!
//! Everything is seeded: a given profile + size always produces the same
//! bytes.

use ccrp_isa::{
    AluOp, BranchOp, BranchZOp, FpFmt, FpOp, FpReg, HiLoOp, IAluOp, Instruction, MemOp, MultDivOp,
    Reg, ShiftOp,
};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Tunable character of the synthesized code.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodeProfile {
    /// Fraction of body instructions that are floating point.
    pub fp_fraction: f64,
    /// Fraction of emitted words that are literal-pool data (addresses,
    /// FP constants, jump tables) rather than instructions.
    pub constant_pool: f64,
    /// Probability that an immediate field is high entropy rather than a
    /// small aligned offset.
    pub wide_immediates: f64,
}

impl CodeProfile {
    /// Typical integer C code (lex, yacc, who, espresso, ...).
    pub fn integer() -> Self {
        Self {
            fp_fraction: 0.0,
            constant_pool: 0.01,
            wide_immediates: 0.05,
        }
    }

    /// FORTRAN-style floating-point code (matrix kernels, tomcatv, ...).
    pub fn floating() -> Self {
        Self {
            fp_fraction: 0.16,
            constant_pool: 0.02,
            wide_immediates: 0.07,
        }
    }

    /// Code with "a huge number of addressing constants" — the paper
    /// singles out `fpppp` as compressing poorly under the preselected
    /// code for exactly this reason.
    pub fn constant_heavy() -> Self {
        Self {
            fp_fraction: 0.30,
            constant_pool: 0.15,
            wide_immediates: 0.55,
        }
    }
}

/// Registers the way compiler output skews: a small pool of temporaries
/// and arguments does nearly all the work.
fn reg(rng: &mut StdRng) -> Reg {
    const POOL: [Reg; 12] = [
        Reg::T0,
        Reg::T1,
        Reg::T2,
        Reg::T3,
        Reg::T4,
        Reg::T5,
        Reg::S0,
        Reg::S1,
        Reg::V0,
        Reg::A0,
        Reg::A1,
        Reg::T6,
    ];
    if rng.gen_bool(0.9) {
        POOL[rng.gen_range(0..POOL.len())]
    } else {
        Reg::new(rng.gen_range(1..26)).expect("in range")
    }
}

/// Small word-aligned offset, the dominant immediate in compiled code.
fn small_offset(rng: &mut StdRng) -> i16 {
    if rng.gen_bool(0.7) {
        4 * rng.gen_range(0..12)
    } else {
        8 * rng.gen_range(0..12)
    }
}

fn immediate(rng: &mut StdRng, profile: &CodeProfile) -> u16 {
    if rng.gen_bool(profile.wide_immediates) {
        rng.gen()
    } else if rng.gen_bool(0.5) {
        // Tiny counters and strides: 1, 2, 4, 8, ...
        [1u16, 2, 4, 8, 1, 2, 16, 24][rng.gen_range(0..8)]
    } else {
        4 * rng.gen_range(0u16..32)
    }
}

/// Emits one function: prologue, body, epilogue. Returns encoded words.
fn function(rng: &mut StdRng, profile: &CodeProfile, body_len: usize) -> Vec<u32> {
    let mut words = Vec::with_capacity(body_len + 10);
    let frame = 8 * rng.gen_range(2i16..6);

    // Prologue.
    words.push(
        Instruction::IAlu {
            op: IAluOp::Addiu,
            rt: Reg::SP,
            rs: Reg::SP,
            imm: (-frame) as u16,
        }
        .encode(),
    );
    words.push(
        Instruction::Mem {
            op: MemOp::Sw,
            rt: Reg::RA,
            base: Reg::SP,
            offset: frame - 4,
        }
        .encode(),
    );
    if rng.gen_bool(0.5) {
        words.push(
            Instruction::Mem {
                op: MemOp::Sw,
                rt: Reg::S0,
                base: Reg::SP,
                offset: frame - 8,
            }
            .encode(),
        );
    }

    while words.len() < body_len {
        if rng.gen_bool(profile.constant_pool) {
            // Literal pool word: an aligned address constant or FP bits.
            let word = if rng.gen_bool(0.6) {
                0x0040_0000u32 | (rng.gen::<u32>() & 0x000F_FFF8)
            } else {
                f32::to_bits(rng.gen_range(-100.0f32..100.0))
            };
            words.push(word);
            continue;
        }
        if rng.gen_bool(profile.fp_fraction) {
            emit_fp(rng, &mut words);
            continue;
        }
        emit_integer(rng, profile, &mut words);
    }

    // Epilogue.
    words.push(
        Instruction::Mem {
            op: MemOp::Lw,
            rt: Reg::RA,
            base: Reg::SP,
            offset: frame - 4,
        }
        .encode(),
    );
    words.push(
        Instruction::IAlu {
            op: IAluOp::Addiu,
            rt: Reg::SP,
            rs: Reg::SP,
            imm: frame as u16,
        }
        .encode(),
    );
    words.push(Instruction::Jr { rs: Reg::RA }.encode());
    words.push(Instruction::NOP.encode());
    words
}

/// Emits one integer idiom (possibly several words, e.g. branch + its
/// delay-slot `nop`, or a `lui`/`addiu` address pair).
fn emit_integer(rng: &mut StdRng, profile: &CodeProfile, words: &mut Vec<u32>) {
    // Support-library register soup (register-allocated scratch chains on
    // $t8/$t9), the same dialect `programs::library` emits — real
    // binaries carry kilobytes of such helper code, and the preselected
    // code must know its byte signature.
    if rng.gen_bool(0.08) {
        for _ in 0..rng.gen_range(2..6) {
            words.push(library_style_word(rng));
        }
        return;
    }
    match rng.gen_range(0..100) {
        // Loads dominate MIPS compiler output.
        0..=21 => {
            let op = match rng.gen_range(0..10) {
                0..=6 => MemOp::Lw,
                7 => MemOp::Lbu,
                8 => MemOp::Lb,
                _ => MemOp::Lhu,
            };
            let base = if rng.gen_bool(0.5) { Reg::SP } else { reg(rng) };
            words.push(
                Instruction::Mem {
                    op,
                    rt: reg(rng),
                    base,
                    offset: small_offset(rng),
                }
                .encode(),
            );
        }
        22..=31 => {
            let op = if rng.gen_bool(0.85) {
                MemOp::Sw
            } else {
                MemOp::Sb
            };
            let base = if rng.gen_bool(0.5) { Reg::SP } else { reg(rng) };
            words.push(
                Instruction::Mem {
                    op,
                    rt: reg(rng),
                    base,
                    offset: small_offset(rng),
                }
                .encode(),
            );
        }
        32..=53 => {
            // addiu pointer/counter updates dwarf the other I-ALU ops.
            let op = match rng.gen_range(0..10) {
                0..=6 => IAluOp::Addiu,
                7 => IAluOp::Andi,
                8 => IAluOp::Ori,
                _ => IAluOp::Slti,
            };
            let rt = reg(rng);
            // Counters usually update in place.
            let rs = if rng.gen_bool(0.6) { rt } else { reg(rng) };
            words.push(
                Instruction::IAlu {
                    op,
                    rt,
                    rs,
                    imm: immediate(rng, profile),
                }
                .encode(),
            );
        }
        54..=67 => {
            let op = match rng.gen_range(0..10) {
                0..=4 => AluOp::Addu,
                5 => AluOp::Subu,
                6 => AluOp::And,
                7 => AluOp::Or,
                8 => AluOp::Slt,
                _ => AluOp::Sltu,
            };
            words.push(
                Instruction::RAlu {
                    op,
                    rd: reg(rng),
                    rs: reg(rng),
                    rt: reg(rng),
                }
                .encode(),
            );
        }
        68..=71 => {
            let op = if rng.gen_bool(0.7) {
                ShiftOp::Sll
            } else {
                ShiftOp::Srl
            };
            words.push(
                Instruction::Shift {
                    op,
                    rd: reg(rng),
                    rt: reg(rng),
                    shamt: [2u8, 3, 1, 2][rng.gen_range(0..4)],
                }
                .encode(),
            );
        }
        72..=77 => {
            // `li` / `la` idioms.
            if rng.gen_bool(0.6) {
                words.push(
                    Instruction::IAlu {
                        op: IAluOp::Ori,
                        rt: reg(rng),
                        rs: Reg::ZERO,
                        imm: immediate(rng, profile),
                    }
                    .encode(),
                );
            } else {
                let rt = reg(rng);
                words.push(Instruction::Lui { rt, imm: 0x0040 }.encode());
                words.push(
                    Instruction::IAlu {
                        op: IAluOp::Addiu,
                        rt,
                        rs: rt,
                        imm: immediate(rng, profile),
                    }
                    .encode(),
                );
            }
        }
        78..=89 => {
            // Short local branches, mostly backward (loops), each with
            // its reorder-mode delay-slot nop.
            let offset = if rng.gen_bool(0.65) {
                -(rng.gen_range(2i16..20))
            } else {
                rng.gen_range(2i16..10)
            };
            let inst = if rng.gen_bool(0.6) {
                let op = if rng.gen_bool(0.5) {
                    BranchOp::Beq
                } else {
                    BranchOp::Bne
                };
                let rs = reg(rng);
                let rt = if rng.gen_bool(0.5) {
                    Reg::ZERO
                } else {
                    reg(rng)
                };
                Instruction::Branch { op, rs, rt, offset }
            } else {
                let op = [
                    BranchZOp::Blez,
                    BranchZOp::Bgtz,
                    BranchZOp::Bltz,
                    BranchZOp::Bgez,
                ][rng.gen_range(0..4)];
                Instruction::BranchZ {
                    op,
                    rs: reg(rng),
                    offset,
                }
            };
            words.push(inst.encode());
            words.push(Instruction::NOP.encode());
        }
        90..=93 => {
            words.push(
                Instruction::Jump {
                    link: true,
                    target: (rng.gen_range(0..0x1000u32)) * 8,
                }
                .encode(),
            );
            words.push(Instruction::NOP.encode());
        }
        94..=96 => {
            words.push(
                Instruction::MultDiv {
                    op: if rng.gen_bool(0.8) {
                        MultDivOp::Mult
                    } else {
                        MultDivOp::Divu
                    },
                    rs: reg(rng),
                    rt: reg(rng),
                }
                .encode(),
            );
            words.push(
                Instruction::HiLo {
                    op: HiLoOp::Mflo,
                    reg: reg(rng),
                }
                .encode(),
            );
        }
        _ => words.push(Instruction::NOP.encode()),
    }
}

/// One instruction of `$t8`/`$t9` scratch-chain code, byte-compatible
/// with the `programs::library` routine ring.
fn library_style_word(rng: &mut StdRng) -> u32 {
    let t8 = Reg::T8;
    let t9 = Reg::T9;
    match rng.gen_range(0..8) {
        0 => Instruction::RAlu {
            op: AluOp::Addu,
            rd: t8,
            rs: t8,
            rt: t9,
        },
        1 => Instruction::RAlu {
            op: AluOp::Xor,
            rd: t9,
            rs: t9,
            rt: t8,
        },
        2 => Instruction::Shift {
            op: ShiftOp::Sll,
            rd: t8,
            rt: t8,
            shamt: rng.gen_range(1..8),
        },
        3 => Instruction::Shift {
            op: ShiftOp::Srl,
            rd: t9,
            rt: t9,
            shamt: rng.gen_range(1..8),
        },
        4 => Instruction::RAlu {
            op: AluOp::Or,
            rd: t8,
            rs: t8,
            rt: t9,
        },
        5 => Instruction::RAlu {
            op: AluOp::Nor,
            rd: t9,
            rs: t8,
            rt: t9,
        },
        6 => Instruction::IAlu {
            op: IAluOp::Addiu,
            rt: t8,
            rs: t8,
            imm: rng.gen_range(-1024i32..1024) as i16 as u16,
        },
        _ => Instruction::RAlu {
            op: AluOp::Sltu,
            rd: t9,
            rs: t8,
            rt: t9,
        },
    }
    .encode()
}

/// Emits a whole FP idiom the way compiled (and our hand-written) loop
/// bodies look: `l.d`/`l.d`/`op.d`/`op.d`/`s.d` groups over a small
/// register pool, plus the occasional `mtc1`/`cvt.d.w` int-to-double
/// conversion.
fn emit_fp(rng: &mut StdRng, words: &mut Vec<u32>) {
    let load_pair = |rng: &mut StdRng, ft: u8, words: &mut Vec<u32>, store: bool| {
        let base = [Reg::T1, Reg::T2, Reg::T3, Reg::T4, Reg::T5, Reg::A0][rng.gen_range(0..6)];
        let offset = 8 * rng.gen_range(0i16..40);
        let ft_lo = FpReg::new(ft).expect("even reg");
        let ft_hi = FpReg::new(ft + 1).expect("odd pair");
        words.push(
            Instruction::FpMem {
                store,
                ft: ft_lo,
                base,
                offset,
            }
            .encode(),
        );
        words.push(
            Instruction::FpMem {
                store,
                ft: ft_hi,
                base,
                offset: offset + 4,
            }
            .encode(),
        );
    };
    match rng.gen_range(0..10) {
        0..=6 => {
            // The dominant group: load two doubles, combine (often
            // against a constant register), store one.
            load_pair(rng, 2, words, false);
            load_pair(rng, 4, words, false);
            let op = [FpOp::Mul, FpOp::Add, FpOp::Mul, FpOp::Sub][rng.gen_range(0..4)];
            let f2 = FpReg::new(2).expect("f2");
            let f4 = FpReg::new(4).expect("f4");
            words.push(
                Instruction::FpArith {
                    op,
                    fmt: FpFmt::Double,
                    fd: f2,
                    fs: f2,
                    ft: f4,
                }
                .encode(),
            );
            if rng.gen_bool(0.5) {
                let konst = FpReg::new([20u8, 22, 0][rng.gen_range(0..3)]).expect("const reg");
                words.push(
                    Instruction::FpArith {
                        op: if rng.gen_bool(0.6) {
                            FpOp::Mul
                        } else {
                            FpOp::Add
                        },
                        fmt: FpFmt::Double,
                        fd: if rng.gen_bool(0.5) {
                            FpReg::new(0).expect("f0")
                        } else {
                            f2
                        },
                        fs: konst,
                        ft: f2,
                    }
                    .encode(),
                );
            }
            load_pair(rng, 2, words, true);
        }
        7..=8 => {
            // Int-to-double conversion, as in every kernel init loop.
            let f0 = FpReg::new(0).expect("f0");
            let f2 = FpReg::new(2).expect("f2");
            words.push(
                Instruction::Cp1Move {
                    op: ccrp_isa::Cp1MoveOp::Mtc1,
                    rt: reg(rng),
                    fs: f0,
                }
                .encode(),
            );
            words.push(
                Instruction::FpCvt {
                    to: FpFmt::Double,
                    from: FpFmt::Word,
                    fd: f2,
                    fs: f0,
                }
                .encode(),
            );
        }
        _ => {
            // Reduction tail: cvt.w.d + mfc1.
            let f0 = FpReg::new(0).expect("f0");
            let f4 = FpReg::new(4).expect("f4");
            words.push(
                Instruction::FpCvt {
                    to: FpFmt::Word,
                    from: FpFmt::Double,
                    fd: f4,
                    fs: f0,
                }
                .encode(),
            );
            words.push(
                Instruction::Cp1Move {
                    op: ccrp_isa::Cp1MoveOp::Mfc1,
                    rt: reg(rng),
                    fs: f4,
                }
                .encode(),
            );
        }
    }
}

/// Synthesizes exactly `target_bytes` of little-endian text with the
/// given profile. Deterministic in `(profile, target_bytes, seed)`.
///
/// # Panics
///
/// Panics if `target_bytes` is not a multiple of 4.
pub fn generate_text(profile: &CodeProfile, target_bytes: usize, seed: u64) -> Vec<u8> {
    assert_eq!(target_bytes % 4, 0, "text is made of 4-byte words");
    let target_words = target_bytes / 4;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut words: Vec<u32> = Vec::with_capacity(target_words);
    while words.len() < target_words {
        let body = rng.gen_range(12..120);
        words.extend(function(&mut rng, profile, body));
    }
    words.truncate(target_words);
    let mut bytes = Vec::with_capacity(target_bytes);
    for w in words {
        bytes.extend_from_slice(&w.to_le_bytes());
    }
    bytes
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccrp_compress::ByteHistogram;

    #[test]
    fn exact_size_and_deterministic() {
        let p = CodeProfile::integer();
        let a = generate_text(&p, 4096, 7);
        let b = generate_text(&p, 4096, 7);
        assert_eq!(a.len(), 4096);
        assert_eq!(a, b);
        let c = generate_text(&p, 4096, 8);
        assert_ne!(a, c, "different seeds differ");
    }

    #[test]
    fn byte_distribution_is_code_like() {
        let text = generate_text(&CodeProfile::integer(), 65536, 42);
        let h = ByteHistogram::of(&text);
        // Real R2000 code is strongly skewed: zero is by far the most
        // common byte and entropy is well under 8 bits/byte.
        let zero_fraction = h.count(0) as f64 / h.total() as f64;
        assert!(zero_fraction > 0.15, "zero fraction {zero_fraction}");
        let entropy = h.entropy_bits();
        assert!(entropy < 5.8, "entropy {entropy} too high for code");
        assert!(entropy > 3.0, "entropy {entropy} suspiciously low");
    }

    #[test]
    fn most_words_decode_as_instructions() {
        let text = generate_text(&CodeProfile::floating(), 32768, 3);
        let decodable = text
            .chunks_exact(4)
            .filter(|c| ccrp_isa::decode(u32::from_le_bytes([c[0], c[1], c[2], c[3]])).is_ok())
            .count();
        let total = text.len() / 4;
        assert!(
            decodable as f64 / total as f64 > 0.9,
            "{decodable}/{total} decodable"
        );
    }

    #[test]
    fn constant_heavy_profile_has_higher_entropy() {
        let plain = ByteHistogram::of(&generate_text(&CodeProfile::integer(), 65536, 1));
        let heavy = ByteHistogram::of(&generate_text(&CodeProfile::constant_heavy(), 65536, 1));
        assert!(heavy.entropy_bits() > plain.entropy_bits() + 0.25);
    }

    #[test]
    #[should_panic(expected = "4-byte words")]
    fn odd_size_panics() {
        generate_text(&CodeProfile::integer(), 10, 0);
    }
}
