//! The `tomcatv` benchmark: a 32×32 double-precision mesh relaxation in
//! the style of the SPEC `tomcatv` vectorized mesh generator — two
//! stencil loops per sweep over separate residual and update arrays.
//!
//! All operands are small integers, kept exact in doubles, so the final
//! checksum is deterministic and verified against a Rust replication.

use std::fmt::Write as _;

use super::library;

/// Mesh dimension (N×N doubles per array).
pub const N: usize = 32;
/// Relaxation sweeps.
pub const SWEEPS: usize = 6;

/// Computes the expected output by replicating the kernel exactly.
pub fn expected_output() -> String {
    let idx = |i: usize, j: usize| i * N + j;
    let mut x = vec![0.0f64; N * N];
    let mut rx = vec![0.0f64; N * N];
    for i in 0..N {
        for j in 0..N {
            x[idx(i, j)] = ((i + j) % 5) as f64;
        }
    }
    for _ in 0..SWEEPS {
        for i in 1..N - 1 {
            for j in 1..N - 1 {
                rx[idx(i, j)] =
                    x[idx(i, j + 1)] + x[idx(i, j - 1)] + x[idx(i + 1, j)] + x[idx(i - 1, j)]
                        - 4.0 * x[idx(i, j)];
            }
        }
        for i in 1..N - 1 {
            for j in 1..N - 1 {
                x[idx(i, j)] += 0.25 * rx[idx(i, j)];
            }
        }
    }
    // Scale by 4^SWEEPS? Not needed: 0.25 increments are exact binary
    // fractions; sum them and truncate after scaling by 4 to keep the
    // printed checksum integral.
    let sum: f64 = x.iter().sum();
    format!("{}", (sum * 4.0) as i64)
}

const UNROLL: usize = 5;

/// MIPS source of the kernel.
pub fn source() -> String {
    let mut res = String::new();
    let mut upd = String::new();
    for u in 0..UNROLL {
        let off = u * 8;
        writeln!(
            res,
            "        l.d   $f2, {east}($t5)\n        l.d   $f4, {west}($t5)\n        add.d $f2, $f2, $f4\n        l.d   $f4, {south}($t5)\n        add.d $f2, $f2, $f4\n        l.d   $f4, {north}($t5)\n        add.d $f2, $f2, $f4\n        l.d   $f6, {off}($t5)\n        mul.d $f6, $f22, $f6\n        sub.d $f2, $f2, $f6\n        s.d   $f2, {off}($t6)",
            east = off + 8,
            west = off as i64 - 8,
            south = off + N * 8,
            north = off as i64 - (N * 8) as i64,
        )
        .expect("write to String cannot fail");
        writeln!(
            upd,
            "        l.d   $f2, {off}($t6)\n        mul.d $f2, $f20, $f2\n        l.d   $f4, {off}($t5)\n        add.d $f4, $f4, $f2\n        s.d   $f4, {off}($t5)"
        )
        .expect("write to String cannot fail");
    }
    format!(
        r"
        .equ N, {N}
        .equ SWEEPS, {SWEEPS}
        .equ UNROLL, {UNROLL}

        .data
        .align 3
x:      .space N*N*8
rx:     .space N*N*8
        .align 3
quarter: .double 0.25
four:    .double 4.0

        .text
main:
        addiu $sp, $sp, -8
        sw    $ra, 4($sp)

        # init x[i][j] = (i+j) % 5
        li    $t0, 0                 # i
xinit_i:
        li    $t1, 0                 # j
xinit_j:
        addu  $t2, $t0, $t1
        li    $t3, 5
        rem   $t2, $t2, $t3
        mtc1  $t2, $f0
        cvt.d.w $f2, $f0
        li    $t3, N
        mult  $t0, $t3
        mflo  $t4
        addu  $t4, $t4, $t1
        sll   $t4, $t4, 3
        la    $t5, x
        addu  $t5, $t5, $t4
        s.d   $f2, 0($t5)
        addiu $t1, $t1, 1
        li    $t3, N
        blt   $t1, $t3, xinit_j
        addiu $t0, $t0, 1
        li    $t3, N
        blt   $t0, $t3, xinit_i

        la    $t0, quarter
        l.d   $f20, 0($t0)
        la    $t0, four
        l.d   $f22, 0($t0)

        li    $s3, 0                 # sweep
sweep:
        # residual: rx = x[e]+x[w]+x[s]+x[n] - 4x
        li    $s0, 1                 # i
res_i:
        jal   lib_tick
        li    $s1, 1                 # j
        li    $t3, N*8
        mult  $s0, $t3
        mflo  $t4
        la    $t5, x
        addu  $t5, $t5, $t4
        addiu $t5, $t5, 8            # &x[i][1]
        la    $t6, rx
        addu  $t6, $t6, $t4
        addiu $t6, $t6, 8            # &rx[i][1]
res_j:
{res}        addiu $t5, $t5, UNROLL*8
        addiu $t6, $t6, UNROLL*8
        addiu $s1, $s1, UNROLL
        li    $t3, N-1
        blt   $s1, $t3, res_j
        addiu $s0, $s0, 1
        li    $t3, N-1
        blt   $s0, $t3, res_i

        # update: x += 0.25 * rx
        li    $s0, 1
upd_i:
        li    $s1, 1
        li    $t3, N*8
        mult  $s0, $t3
        mflo  $t4
        la    $t5, x
        addu  $t5, $t5, $t4
        addiu $t5, $t5, 8
        la    $t6, rx
        addu  $t6, $t6, $t4
        addiu $t6, $t6, 8
upd_j:
{upd}        addiu $t5, $t5, UNROLL*8
        addiu $t6, $t6, UNROLL*8
        addiu $s1, $s1, UNROLL
        li    $t3, N-1
        blt   $s1, $t3, upd_j
        addiu $s0, $s0, 1
        li    $t3, N-1
        blt   $s0, $t3, upd_i

        addiu $s3, $s3, 1
        li    $t3, SWEEPS
        blt   $s3, $t3, sweep

        # checksum: 4 * sum(x), exact, printed as integer
        mtc1  $zero, $f0
        mtc1  $zero, $f1
        la    $t1, x
        li    $t0, 0
ck:     l.d   $f2, 0($t1)
        add.d $f0, $f0, $f2
        addiu $t1, $t1, 8
        addiu $t0, $t0, 1
        li    $t3, N*N
        blt   $t0, $t3, ck
        mul.d $f0, $f22, $f0
        cvt.w.d $f4, $f0
        mfc1  $a0, $f4
        li    $v0, 1
        syscall

        lw    $ra, 4($sp)
        addiu $sp, $sp, 8
        li    $v0, 10
        syscall

{library}
",
        library = library::library_source(0x7C7C)
    )
}
