//! The traced benchmark kernels, one module per program.

pub mod eightq;
pub mod espresso;
pub mod fpppp;
pub mod library;
pub mod lloop;
pub mod matrix;
pub mod nasa1;
pub mod nasa7;
pub mod tomcatv;
