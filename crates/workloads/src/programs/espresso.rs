//! The `espresso` benchmark: a branchy, irregular integer workload in
//! the style of the espresso logic minimizer — a large population of
//! small cube-operation routines dispatched data-dependently through a
//! jump table, hammering a bitset array.
//!
//! The code footprint (~7 KB across 32 routines) with data-dependent
//! dispatch reproduces espresso's signature in the paper: high miss
//! rates that decline only slowly with cache size (12.5% at 256 B is
//! still 4% at 4 KB).
//!
//! The routine bodies are generated from an op-step spec; the same spec
//! drives both the emitted assembly and the Rust replica that computes
//! the expected output, so they cannot drift apart.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of cube-operation routines (power of two for masking).
pub const NUM_OPS: usize = 32;
/// ALU steps per routine body.
pub const STEPS_PER_OP: usize = 40;
/// Bitset words the routines operate on (power of two).
pub const WORDS: usize = 256;
/// Dispatch-loop iterations.
pub const DISPATCHES: usize = 6000;

const LCG_MUL: u32 = 1_103_515_245;
const LCG_ADD: u32 = 12_345;
const SEED: u64 = 0x00E5_93E5_50C0_DE01;

/// One ALU transformation step inside a routine.
#[derive(Debug, Clone, Copy)]
enum Step {
    /// `w = w + sign_extend(imm)`.
    AddImm(i16),
    /// `w = w ^ imm` (zero-extended).
    XorImm(u16),
    /// `w = w | imm` (zero-extended).
    OrImm(u16),
    /// `w = w ^ (w << s)`.
    ShlXor(u8),
    /// `w = w + (w >> s)`.
    ShrAdd(u8),
    /// `w = w ^ bitset[widx + off]` (off in words, forward only).
    LoadXor(u8),
}

fn op_steps() -> Vec<Vec<Step>> {
    let mut rng = StdRng::seed_from_u64(SEED);
    (0..NUM_OPS)
        .map(|_| {
            (0..STEPS_PER_OP)
                .map(|_| match rng.gen_range(0..6) {
                    0 => Step::AddImm(4 * rng.gen_range(-64i16..64)),
                    // Cube masks, as espresso's set operations use.
                    1 => Step::XorImm(
                        [
                            0x00FF, 0xFF00, 0x0F0F, 0xF0F0, 0x5555, 0xAAAA, 0x3333, 0xCCCC,
                        ][rng.gen_range(0..8)],
                    ),
                    2 => Step::OrImm([0x0001u16, 0x0010, 0x0100, 0x1000][rng.gen_range(0..4)]),
                    3 => Step::ShlXor(rng.gen_range(1..13)),
                    4 => Step::ShrAdd(rng.gen_range(1..13)),
                    _ => Step::LoadXor(rng.gen_range(1..16)),
                })
                .collect()
        })
        .collect()
}

/// Rust replica of the whole program, producing the printed checksum.
pub fn expected_output() -> String {
    let ops = op_steps();
    let mut bitset: Vec<u32> = (0..WORDS + 16)
        .map(|i| (i as u32).wrapping_mul(2654435761))
        .collect();
    let mut state: u32 = 12345;
    let mut acc: u32 = 0;
    for _ in 0..DISPATCHES {
        state = state.wrapping_mul(LCG_MUL).wrapping_add(LCG_ADD);
        let op = ((state >> 20) as usize) & (NUM_OPS - 1);
        let widx = ((state >> 8) as usize) & (WORDS - 1);
        let mut w = bitset[widx];
        for step in &ops[op] {
            w = match *step {
                Step::AddImm(imm) => w.wrapping_add(imm as i32 as u32),
                Step::XorImm(imm) => w ^ u32::from(imm),
                Step::OrImm(imm) => w | u32::from(imm),
                Step::ShlXor(s) => w ^ (w << s),
                Step::ShrAdd(s) => w.wrapping_add(w >> s),
                Step::LoadXor(off) => w ^ bitset[widx + off as usize],
            };
        }
        bitset[widx] = w;
        acc ^= w;
    }
    format!("{}", acc as i32)
}

/// MIPS source of the program: jump-table driver plus the generated
/// routine bodies.
pub fn source() -> String {
    use std::fmt::Write as _;
    let ops = op_steps();
    let mut src = String::with_capacity(64 * 1024);
    write!(
        src,
        r"
        .equ WORDS, {WORDS}
        .equ DISPATCHES, {DISPATCHES}

        .data
        .align 2
bitset: .space (WORDS+16)*4

        .text
main:
        addiu $sp, $sp, -8
        sw    $ra, 4($sp)

        # init bitset[i] = i * 2654435761 (Knuth hash), incl. margin
        la    $t0, bitset
        li    $t1, 0
        li    $t2, WORDS+16
binit:
        li    $t3, 0x9E3779B1
        mult  $t1, $t3
        mflo  $t4
        sw    $t4, 0($t0)
        addiu $t0, $t0, 4
        addiu $t1, $t1, 1
        blt   $t1, $t2, binit

        li    $s0, 12345             # LCG state
        li    $s1, 0                 # dispatch counter
        la    $s2, bitset
        li    $s3, 0                 # checksum accumulator
dloop:
        li    $t0, {LCG_MUL}
        mult  $s0, $t0
        mflo  $s0
        addiu $s0, $s0, {LCG_ADD}
        srl   $t1, $s0, 20
        andi  $t1, $t1, {op_mask}
        sll   $t1, $t1, 2
        la    $t2, optable
        addu  $t2, $t2, $t1
        lw    $t3, 0($t2)
        srl   $t4, $s0, 8
        andi  $t4, $t4, WORDS-1
        sll   $t4, $t4, 2
        addu  $a0, $s2, $t4          # &bitset[widx]
        lw    $t0, 0($a0)            # w
        jalr  $t3
        sw    $t0, 0($a0)
        xor   $s3, $s3, $t0
        addiu $s1, $s1, 1
        li    $t5, DISPATCHES
        blt   $s1, $t5, dloop

        move  $a0, $s3
        li    $v0, 1
        syscall
        lw    $ra, 4($sp)
        addiu $sp, $sp, 8
        li    $v0, 10
        syscall
",
        op_mask = NUM_OPS - 1,
    )
    .expect("write to String cannot fail");

    for (k, steps) in ops.iter().enumerate() {
        writeln!(src, "op{k}:").expect("write to String cannot fail");
        for step in steps {
            let line = match *step {
                Step::AddImm(imm) => format!("        addiu $t0, $t0, {imm}"),
                Step::XorImm(imm) => format!("        xori  $t0, $t0, {imm:#x}"),
                Step::OrImm(imm) => format!("        ori   $t0, $t0, {imm:#x}"),
                Step::ShlXor(s) => {
                    format!("        sll   $t1, $t0, {s}\n        xor   $t0, $t0, $t1")
                }
                Step::ShrAdd(s) => {
                    format!("        srl   $t1, $t0, {s}\n        addu  $t0, $t0, $t1")
                }
                Step::LoadXor(off) => {
                    format!(
                        "        lw    $t1, {}($a0)\n        xor   $t0, $t0, $t1",
                        u32::from(off) * 4
                    )
                }
            };
            writeln!(src, "{line}").expect("write to String cannot fail");
        }
        writeln!(src, "        jr    $ra").expect("write to String cannot fail");
    }

    // The dispatch table.
    src.push_str("\n        .align 2\noptable:\n");
    for k in 0..NUM_OPS {
        writeln!(src, "        .word op{k}").expect("write to String cannot fail");
    }
    src
}
