//! The `eightq` benchmark: counts the 92 solutions of the eight-queens
//! problem with the classic recursive backtracking solver — one of the
//! small C programs in the paper's test set (4020 bytes of DECstation
//! object code).
//!
//! The column loop is unrolled by two, giving the solver the ~450-byte
//! hot footprint that produces the paper's signature eightq behaviour:
//! double-digit miss rates in a 256-byte cache that all but vanish at
//! 512 bytes.

use std::fmt::Write as _;

/// The expected program output (solution count).
pub const EXPECTED_OUTPUT: &str = "92";

/// MIPS source of the kernel.
pub fn source() -> String {
    // Two unrolled copies of the "try column c" body. Copy `u` probes
    // column $s1 + u using constant displacements, so the recursion can
    // recompute every address after the call clobbers the temporaries.
    let mut body = String::new();
    for u in 0..2 {
        writeln!(
            body,
            r"
# ---- column $s1 + {u} ----
        la    $t0, col
        addu  $t1, $t0, $s1
        lbu   $t2, {u}($t1)
        bnez  $t2, next{u}
        addu  $t3, $s0, $s1          # row + col - {u}
        la    $t4, d1
        addu  $t4, $t4, $t3
        lbu   $t5, {u}($t4)
        bnez  $t5, next{u}
        subu  $t6, $s0, $s1          # row - col + 7 + {u}
        addiu $t6, $t6, 7
        la    $t7, d2
        addu  $t7, $t7, $t6
        lbu   $t8, -{u}($t7)
        bnez  $t8, next{u}

        li    $t9, 1                 # place the queen
        sb    $t9, {u}($t1)
        sb    $t9, {u}($t4)
        sb    $t9, -{u}($t7)
        addiu $a0, $s0, 1
        jal   solve

        la    $t0, col               # remove the queen
        addu  $t1, $t0, $s1
        sb    $zero, {u}($t1)
        addu  $t3, $s0, $s1
        la    $t4, d1
        addu  $t4, $t4, $t3
        sb    $zero, {u}($t4)
        subu  $t6, $s0, $s1
        addiu $t6, $t6, 7
        la    $t7, d2
        addu  $t7, $t7, $t6
        sb    $zero, -{u}($t7)
next{u}:"
        )
        .expect("write to String cannot fail");
    }

    format!(
        r"
        .data
col:    .space 8
d1:     .space 16
d2:     .space 16
        .align 2
count:  .word 0

        .text
main:
        addiu $sp, $sp, -8
        sw    $ra, 4($sp)
        li    $a0, 0
        jal   solve
        la    $t0, count
        lw    $a0, 0($t0)
        li    $v0, 1
        syscall
        lw    $ra, 4($sp)
        addiu $sp, $sp, 8
        li    $v0, 10
        syscall

# solve(row in $a0): try every column in the current row, two at a time.
solve:
        addiu $sp, $sp, -16
        sw    $ra, 12($sp)
        sw    $s0, 8($sp)
        sw    $s1, 4($sp)
        move  $s0, $a0
        li    $t0, 8
        bne   $s0, $t0, search
        la    $t1, count
        lw    $t2, 0($t1)
        addiu $t2, $t2, 1
        sw    $t2, 0($t1)
        b     done

search:
        li    $s1, 0
colloop:
{body}
        addiu $s1, $s1, 2
        li    $t0, 8
        blt   $s1, $t0, colloop
done:
        lw    $ra, 12($sp)
        lw    $s0, 8($sp)
        lw    $s1, 4($sp)
        addiu $sp, $sp, 16
        jr    $ra
"
    )
}
