//! The `NASA1` benchmark: a small FORTRAN-kernel-style program — a DAXPY
//! pass, a dot product, and a scale pass over 200-element double
//! vectors, driven for many iterations. Stands in for the paper's NASA1
//! trace (moderate code working set, low miss rates).
//!
//! All three vector loops are unrolled by four (the compiler idiom of
//! the era), putting the combined hot footprint between the paper's
//! 256-byte and 1024-byte cache sizes; the driver ticks the synthetic
//! library ring for the large-cache floor.

use std::fmt::Write as _;

use super::library;

/// Vector length (divisible by the unroll factor).
pub const N: usize = 200;
/// Driver iterations.
pub const ITERS: usize = 60;

const UNROLL: usize = 4;

/// Replicates the kernel in Rust (identical IEEE operation order) for
/// the expected printed checksum: the per-iteration integer accumulation
/// of `trunc(dot / 1024)`.
pub fn expected_output() -> String {
    let mut a: Vec<f64> = (0..N).map(|k| ((k % 11) + 1) as f64).collect();
    let b: Vec<f64> = (0..N).map(|k| ((k % 7) + 1) as f64).collect();
    let mut total: i64 = 0;
    #[allow(clippy::needless_range_loop)] // mirrors the assembly's indexing
    for _ in 0..ITERS {
        for k in 0..N {
            a[k] += 2.0 * b[k];
        }
        let mut dot = 0.0f64;
        for k in 0..N {
            dot += a[k] * b[k];
        }
        for k in 0..N {
            a[k] *= 0.5;
        }
        total += (dot * (1.0 / 1024.0)).trunc() as i32 as i64;
    }
    format!("{total}")
}

/// MIPS source of the kernel.
pub fn source() -> String {
    let mut daxpy = String::new();
    let mut dot = String::new();
    let mut scale = String::new();
    for u in 0..UNROLL {
        let off = u * 8;
        writeln!(
            daxpy,
            "        l.d   $f2, {off}($t2)\n        mul.d $f2, $f20, $f2\n        l.d   $f4, {off}($t1)\n        add.d $f4, $f4, $f2\n        s.d   $f4, {off}($t1)"
        )
        .expect("write to String cannot fail");
        writeln!(
            dot,
            "        l.d   $f2, {off}($t1)\n        l.d   $f4, {off}($t2)\n        mul.d $f2, $f2, $f4\n        add.d $f0, $f0, $f2"
        )
        .expect("write to String cannot fail");
        writeln!(
            scale,
            "        l.d   $f2, {off}($t1)\n        mul.d $f2, $f22, $f2\n        s.d   $f2, {off}($t1)"
        )
        .expect("write to String cannot fail");
    }
    format!(
        r"
        .equ N, {N}
        .equ ITERS, {ITERS}
        .equ UNROLL, {UNROLL}

        .data
        .align 3
va:     .space N*8
vb:     .space N*8
        .align 3
ktwo:   .double 2.0
khalf:  .double 0.5
kinv:   .double 0.0009765625        # 1/1024

        .text
main:
        addiu $sp, $sp, -8
        sw    $ra, 4($sp)

        # init a[k] = k%11 + 1, b[k] = k%7 + 1
        li    $t0, 0
vinit:
        li    $t1, 11
        rem   $t2, $t0, $t1
        addiu $t2, $t2, 1
        mtc1  $t2, $f0
        cvt.d.w $f2, $f0
        sll   $t3, $t0, 3
        la    $t4, va
        addu  $t4, $t4, $t3
        s.d   $f2, 0($t4)
        li    $t1, 7
        rem   $t2, $t0, $t1
        addiu $t2, $t2, 1
        mtc1  $t2, $f0
        cvt.d.w $f2, $f0
        la    $t4, vb
        addu  $t4, $t4, $t3
        s.d   $f2, 0($t4)
        addiu $t0, $t0, 1
        li    $t1, N
        blt   $t0, $t1, vinit

        la    $t0, ktwo
        l.d   $f20, 0($t0)
        la    $t0, khalf
        l.d   $f22, 0($t0)
        la    $t0, kinv
        l.d   $f24, 0($t0)

        li    $s4, 0                 # integer checksum accumulator
        li    $s3, 0                 # iteration
iter:
        jal   lib_tick

        # daxpy: a += 2*b, unrolled by UNROLL
        la    $t1, va
        la    $t2, vb
        li    $t0, 0
daxpy:
{daxpy}        addiu $t1, $t1, UNROLL*8
        addiu $t2, $t2, UNROLL*8
        addiu $t0, $t0, UNROLL
        li    $t3, N
        blt   $t0, $t3, daxpy

        # dot = sum a[k]*b[k], unrolled
        mtc1  $zero, $f0
        mtc1  $zero, $f1
        la    $t1, va
        la    $t2, vb
        li    $t0, 0
dot:
{dot}        addiu $t1, $t1, UNROLL*8
        addiu $t2, $t2, UNROLL*8
        addiu $t0, $t0, UNROLL
        li    $t3, N
        blt   $t0, $t3, dot

        # scale: a *= 0.5, unrolled
        la    $t1, va
        li    $t0, 0
scale:
{scale}        addiu $t1, $t1, UNROLL*8
        addiu $t0, $t0, UNROLL
        li    $t3, N
        blt   $t0, $t3, scale

        # checksum += trunc(dot / 1024)
        mul.d $f0, $f0, $f24
        cvt.w.d $f2, $f0
        mfc1  $t0, $f2
        addu  $s4, $s4, $t0

        addiu $s3, $s3, 1
        li    $t3, ITERS
        blt   $s3, $t3, iter

        move  $a0, $s4
        li    $v0, 1
        syscall
        lw    $ra, 4($sp)
        addiu $sp, $sp, 8
        li    $v0, 10
        syscall

{library}
",
        library = library::library_source(0x7171)
    )
}
