//! The `lloopO1` benchmark: Livermore loop 1 (the hydro fragment)
//! `x[k] = q + y[k]·(r·z[k+10] + t·z[k+11])`, repeated over many passes
//! — a small tight-loop program like the paper's 4020-byte `lloopO1`.

/// Loop trip count per pass.
pub const N: usize = 100;
/// Number of passes over the arrays.
pub const PASSES: usize = 150;

use super::library;

/// The expected output: the integer sum of `x` after the final pass.
/// All operands are small integers, so the doubles are exact.
pub fn expected_output() -> String {
    let q = 1.0f64;
    let r = 2.0f64;
    let t = 3.0f64;
    let z: Vec<f64> = (0..N + 11).map(|k| (k % 9) as f64).collect();
    let y: Vec<f64> = (0..N).map(|k| (k % 7) as f64).collect();
    let sum: f64 = (0..N)
        .map(|k| q + y[k] * (r * z[k + 10] + t * z[k + 11]))
        .sum();
    format!("{}", sum as i64)
}

/// MIPS source of the kernel.
pub fn source() -> String {
    format!(
        r"
        .equ N, {N}
        .equ PASSES, {PASSES}

        .data
        .align 3
x:      .space N*8
y:      .space N*8
z:      .space (N+11)*8
        .align 3
consts: .double 1.0, 2.0, 3.0       # q, r, t

        .text
main:
        addiu $sp, $sp, -8
        sw    $ra, 4($sp)

        # init z[k] = k % 9, y[k] = k % 7
        li    $t0, 0
zi:     li    $t1, 9
        rem   $t2, $t0, $t1
        mtc1  $t2, $f0
        cvt.d.w $f2, $f0
        sll   $t3, $t0, 3
        la    $t4, z
        addu  $t4, $t4, $t3
        s.d   $f2, 0($t4)
        addiu $t0, $t0, 1
        li    $t1, N+11
        blt   $t0, $t1, zi

        li    $t0, 0
yi:     li    $t1, 7
        rem   $t2, $t0, $t1
        mtc1  $t2, $f0
        cvt.d.w $f2, $f0
        sll   $t3, $t0, 3
        la    $t4, y
        addu  $t4, $t4, $t3
        s.d   $f2, 0($t4)
        addiu $t0, $t0, 1
        li    $t1, N
        blt   $t0, $t1, yi

        # q, r, t stay resident in $f20, $f22, $f24
        la    $t0, consts
        l.d   $f20, 0($t0)
        l.d   $f22, 8($t0)
        l.d   $f24, 16($t0)

        li    $s0, 0                 # pass counter
pass:
        jal   lib_tick
        la    $t1, x
        la    $t2, y
        la    $t3, z
        addiu $t4, $t3, 80           # &z[10]
        li    $t0, 0
kern:
        l.d   $f2, 0($t4)            # z[k+10]
        l.d   $f4, 8($t4)            # z[k+11]
        mul.d $f2, $f22, $f2         # r * z[k+10]
        mul.d $f4, $f24, $f4         # t * z[k+11]
        add.d $f2, $f2, $f4
        l.d   $f6, 0($t2)            # y[k]
        mul.d $f2, $f6, $f2
        add.d $f2, $f20, $f2         # q + ...
        s.d   $f2, 0($t1)
        addiu $t1, $t1, 8
        addiu $t2, $t2, 8
        addiu $t4, $t4, 8
        addiu $t0, $t0, 1
        li    $t5, N
        blt   $t0, $t5, kern
        addiu $s0, $s0, 1
        li    $t5, PASSES
        blt   $s0, $t5, pass

        # checksum: integer sum of x
        mtc1  $zero, $f0
        mtc1  $zero, $f1
        la    $t1, x
        li    $t0, 0
ck:     l.d   $f2, 0($t1)
        add.d $f0, $f0, $f2
        addiu $t1, $t1, 8
        addiu $t0, $t0, 1
        li    $t5, N
        blt   $t0, $t5, ck
        cvt.w.d $f4, $f0
        mfc1  $a0, $f4
        li    $v0, 1
        syscall

        lw    $ra, 4($sp)
        addiu $sp, $sp, 8
        li    $v0, 10
        syscall

{library}
",
        library = library::library_source_sized(0x1313, 8, 44)
    )
}
