//! Synthetic "library code" shared by the numeric kernels.
//!
//! Real 1992 binaries spend instruction fetches in `libc`/`libm` and
//! FORTRAN support routines spread over many KB of text, which is what
//! keeps their instruction-cache miss rates from reaching zero in the
//! paper's tables even at 4 KB. The hand-written kernels here are far
//! denser than compiler output, so they model that effect explicitly:
//! `lib_tick` rotates through a ring of generated straight-line
//! routines, touching fresh cache lines at a rate the calling kernel
//! chooses.
//!
//! The routines are architecturally inert: they use only `$k0`/`$k1`,
//! `$t8`/`$t9` and non-trapping ALU instructions, never touch memory
//! except the rotation counter, and their results are dead — so they
//! perturb nothing in the kernels' verified arithmetic while exercising
//! the instruction stream like any other code.

use std::fmt::Write as _;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of routines in the rotation ring (power of two).
pub const NUM_FUNCS: usize = 32;
/// Approximate machine words per routine.
pub const WORDS_PER_FUNC: usize = 56;

/// Emits the default-size library: `lib_tick`, the routine ring, its
/// jump table, and the rotation counter. Append to a kernel's `.text`;
/// the data lives in a trailing `.data` block.
pub fn library_source(seed: u64) -> String {
    library_source_sized(seed, NUM_FUNCS, WORDS_PER_FUNC)
}

/// [`library_source`] with an explicit ring geometry, for programs whose
/// paper object size cannot accommodate the full ring.
///
/// # Panics
///
/// Panics unless `num_funcs` is a power of two (the rotation masks).
pub fn library_source_sized(seed: u64, num_funcs: usize, words_per_func: usize) -> String {
    assert!(
        num_funcs.is_power_of_two(),
        "ring size must be a power of two"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut src = String::with_capacity(32 * 1024);
    src.push_str(&format!(
        r"
# ---- synthetic library (see programs/library.rs) ----------------------
lib_tick:
        la    $k0, lib_ctr
        lw    $k1, 0($k0)
        addiu $k1, $k1, 1
        sw    $k1, 0($k0)
        andi  $k1, $k1, {mask}
        sll   $k1, $k1, 2
        la    $k0, lib_table
        addu  $k0, $k0, $k1
        lw    $k0, 0($k0)
        jr    $k0
",
        mask = num_funcs - 1
    ));

    for f in 0..num_funcs {
        writeln!(src, "lib_fn{f}:").expect("write to String cannot fail");
        for _ in 0..words_per_func {
            let line = match rng.gen_range(0..8) {
                0 => "        addu  $t8, $t8, $t9".to_string(),
                1 => "        xor   $t9, $t9, $t8".to_string(),
                2 => format!("        sll   $t8, $t8, {}", rng.gen_range(1..8)),
                3 => format!("        srl   $t9, $t9, {}", rng.gen_range(1..8)),
                4 => "        or    $t8, $t8, $t9".to_string(),
                5 => "        nor   $t9, $t8, $t9".to_string(),
                6 => format!("        addiu $t8, $t8, {}", rng.gen_range(-1024i32..1024)),
                _ => "        sltu  $t9, $t8, $t9".to_string(),
            };
            writeln!(src, "{line}").expect("write to String cannot fail");
        }
        writeln!(src, "        jr    $ra").expect("write to String cannot fail");
    }

    src.push_str("\n        .align 2\nlib_table:\n");
    for f in 0..num_funcs {
        writeln!(src, "        .word lib_fn{f}").expect("write to String cannot fail");
    }
    src.push_str("\n        .data\n        .align 2\nlib_ctr: .word 0\n        .text\n");
    src
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_assembles_alone() {
        let src = format!(
            "main: jal lib_tick\n jal lib_tick\n jr $ra\n{}",
            library_source(1)
        );
        let image = ccrp_asm::assemble(&src).expect("library assembles");
        // Ring footprint: NUM_FUNCS routines of ~WORDS_PER_FUNC words.
        let expected = (NUM_FUNCS * WORDS_PER_FUNC * 4) as u32;
        assert!(
            image.text_size() > expected,
            "{} vs {expected}",
            image.text_size()
        );
    }

    #[test]
    fn tick_rotates_without_corrupting_state() {
        // Run a program that ticks 64 times and then prints a live value
        // held in $s0 across the calls.
        let src = format!(
            r"
main:
        addiu $sp, $sp, -8
        sw    $ra, 4($sp)
        li    $s0, 7
        li    $s1, 0
loop:
        jal   lib_tick
        addiu $s1, $s1, 1
        li    $t0, 64
        blt   $s1, $t0, loop
        move  $a0, $s0
        li    $v0, 1
        syscall
        lw    $ra, 4($sp)
        addiu $sp, $sp, 8
        li    $v0, 10
        syscall
{}
",
            library_source(2)
        );
        let image = ccrp_asm::assemble(&src).expect("assembles");
        let mut machine = ccrp_emu::Machine::new(&image);
        machine.run(&mut ccrp_emu::NullSink).expect("runs");
        assert_eq!(machine.output(), "7");
    }
}
