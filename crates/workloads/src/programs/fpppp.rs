//! The `fpppp` benchmark: one enormous straight-line basic block of
//! double-precision arithmetic executed repeatedly — the signature of
//! SPEC's `fpppp` (two-electron integral derivatives), whose huge basic
//! blocks and addressing constants the paper calls out.
//!
//! The block is ~1.7 KB of contiguous code, so it streams through caches
//! of 1 KB and below (high, size-insensitive miss rate) but locks into a
//! 2 KB cache — the knee the paper's fpppp tables show between 1024 and
//! 2048 bytes.
//!
//! Generated from a group spec shared by the assembly emitter and the
//! Rust replica that computes the expected output.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Doubles in the work array.
pub const SLOTS: usize = 64;
/// Straight-line groups per pass (8 machine words each, so the block is
/// ~1.4 KB — between the paper's 1 KB and 2 KB cache sizes).
pub const GROUPS: usize = 42;
/// Number of passes over the block.
pub const PASSES: usize = 1500;

const SEED: u64 = 0x0F99_9900_B10C_4A11;

/// One straight-line group; all keep magnitudes bounded (convex
/// combinations, or a product scaled by 1/64 that contracts while values
/// stay below 64).
#[derive(Debug, Clone, Copy)]
enum Group {
    /// `arr[c] = 0.5 * (arr[a] + arr[b])`.
    AvgAdd(u8, u8, u8),
    /// `arr[c] = 0.5 * (arr[a] - arr[b])`.
    AvgSub(u8, u8, u8),
    /// `arr[c] = (arr[a] * arr[b]) / 64`.
    MulScale(u8, u8, u8),
}

fn groups() -> Vec<Group> {
    let mut rng = StdRng::seed_from_u64(SEED);
    (0..GROUPS)
        .map(|_| {
            let a = rng.gen_range(0..SLOTS) as u8;
            let b = rng.gen_range(0..SLOTS) as u8;
            let c = rng.gen_range(0..SLOTS) as u8;
            match rng.gen_range(0..3) {
                0 => Group::AvgAdd(a, b, c),
                1 => Group::AvgSub(a, b, c),
                _ => Group::MulScale(a, b, c),
            }
        })
        .collect()
}

/// Rust replica with identical IEEE operation order.
pub fn expected_output() -> String {
    let plan = groups();
    // The work array is initialized once; every group is a contraction
    // (averages, or a product scaled by 1/64), so values stay bounded
    // across all passes without re-initialization.
    let mut arr: Vec<f64> = (0..SLOTS).map(|i| ((i % 10) + 1) as f64).collect();
    let mut acc = 0.0f64;
    for _ in 0..PASSES {
        for g in &plan {
            match *g {
                Group::AvgAdd(a, b, c) => {
                    arr[c as usize] = 0.5 * (arr[a as usize] + arr[b as usize]);
                }
                Group::AvgSub(a, b, c) => {
                    arr[c as usize] = 0.5 * (arr[a as usize] - arr[b as usize]);
                }
                Group::MulScale(a, b, c) => {
                    arr[c as usize] = (arr[a as usize] * arr[b as usize]) * 0.015625;
                }
            }
        }
        acc += arr[17] + arr[42];
    }
    format!("{}", (acc * 1024.0).trunc() as i32)
}

/// MIPS source: init loop + the generated straight-line block.
pub fn source() -> String {
    use std::fmt::Write as _;
    let plan = groups();
    let mut src = String::with_capacity(64 * 1024);
    write!(
        src,
        r"
        .equ SLOTS, {SLOTS}
        .equ PASSES, {PASSES}

        .data
        .align 3
farr:   .space SLOTS*8
        .align 3
khalf:  .double 0.5
kscale: .double 0.015625
kprint: .double 1024.0

        .text
main:
        addiu $sp, $sp, -8
        sw    $ra, 4($sp)
        la    $t0, khalf
        l.d   $f20, 0($t0)
        la    $t0, kscale
        l.d   $f22, 0($t0)
        mtc1  $zero, $f28            # running checksum = 0.0
        mtc1  $zero, $f29

        # one-time init: farr[i] = i%10 + 1 (every block group is a
        # contraction, so values stay bounded across all passes)
        la    $t1, farr
        li    $t0, 0
finit:
        li    $t2, 10
        rem   $t3, $t0, $t2
        addiu $t3, $t3, 1
        mtc1  $t3, $f0
        cvt.d.w $f2, $f0
        s.d   $f2, 0($t1)
        addiu $t1, $t1, 8
        addiu $t0, $t0, 1
        li    $t2, SLOTS
        blt   $t0, $t2, finit

        li    $s0, 0                 # pass counter
pass:
        la    $a0, farr
"
    )
    .expect("write to String cannot fail");

    for g in &plan {
        let (a, b, c, op, scale_reg) = match *g {
            Group::AvgAdd(a, b, c) => (a, b, c, "add.d", "$f20"),
            Group::AvgSub(a, b, c) => (a, b, c, "sub.d", "$f20"),
            Group::MulScale(a, b, c) => (a, b, c, "mul.d", "$f22"),
        };
        writeln!(
            src,
            "        l.d   $f2, {}($a0)\n        l.d   $f4, {}($a0)\n        {op} $f2, $f2, $f4\n        mul.d $f2, $f2, {scale_reg}\n        s.d   $f2, {}($a0)",
            u32::from(a) * 8,
            u32::from(b) * 8,
            u32::from(c) * 8,
        )
        .expect("write to String cannot fail");
    }

    write!(
        src,
        r"
        # acc += farr[17] + farr[42]
        l.d   $f2, 136($a0)
        l.d   $f4, 336($a0)
        add.d $f2, $f2, $f4
        add.d $f28, $f28, $f2

        addiu $s0, $s0, 1
        li    $t2, PASSES
        blt   $s0, $t2, pass

        la    $t0, kprint
        l.d   $f2, 0($t0)
        mul.d $f2, $f28, $f2
        cvt.w.d $f4, $f2
        mfc1  $a0, $f4
        li    $v0, 1
        syscall
        lw    $ra, 4($sp)
        addiu $sp, $sp, 8
        li    $v0, 10
        syscall
"
    )
    .expect("write to String cannot fail");
    src
}
