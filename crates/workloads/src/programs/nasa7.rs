//! The `NASA7` benchmark: seven small FORTRAN-style kernels run in
//! sequence each iteration, mirroring the NAS kernel suite the paper
//! traces (matrix multiply, FFT-like butterflies, Cholesky-like
//! triangular update, block-tridiagonal-like recurrence, geometry dot
//! products, an emission copy, and a pentadiagonal-like stencil).
//!
//! The kernels are unrolled to different depths — fully unrolled inner
//! products, per-stride butterfly loops — the way 1992 FORTRAN compilers
//! flattened them, so their hot footprints ladder from ~300 B to ~1.5 KB.
//! That ladder is what produces NASA7's gradually declining miss-rate
//! curve in the paper's tables; the library ring adds the large-cache
//! floor.

use std::fmt::Write as _;

use super::library;

/// Matrix dimension for the `mxm` kernel.
pub const M: usize = 12;
/// Vector length for the 1-D kernels.
pub const V: usize = 64;
/// Driver iterations.
pub const ITERS: usize = 8;

/// Rust replication of the kernels, in identical IEEE operation order,
/// for the expected printed checksum.
pub fn expected_output() -> String {
    let idx = |i: usize, j: usize| i * M + j;
    let mut wa: Vec<f64> = (0..M * M).map(|k| ((k % 9) + 1) as f64).collect();
    let wb: Vec<f64> = (0..M * M).map(|k| ((k % 5) + 1) as f64).collect();
    let mut wc = vec![0.0f64; M * M];
    let mut v1: Vec<f64> = (0..V).map(|k| ((k % 13) + 1) as f64).collect();
    let mut v2: Vec<f64> = (0..V).map(|k| ((k % 3) + 1) as f64).collect();
    let mut v3 = vec![0.0f64; V];

    for _ in 0..ITERS {
        // K1 mxm: wc = wa * wb
        for i in 0..M {
            for j in 0..M {
                let mut acc = 0.0;
                for k in 0..M {
                    acc += wa[idx(i, k)] * wb[idx(k, j)];
                }
                wc[idx(i, j)] = acc;
            }
        }
        // K2 fft-like butterflies with damping
        let mut s = 1;
        while s < V {
            for i in 0..V - s {
                v1[i] += v1[i + s];
            }
            s *= 2;
        }
        for value in v1.iter_mut() {
            *value *= 0.0625;
        }
        // K3 cholesky-like triangular update
        for i in 1..M {
            for j in 0..i {
                wa[idx(i, j)] += 0.5 * wa[idx(i - 1, j)];
            }
        }
        // K4 btrix-like first-order recurrence
        for i in 1..V {
            v2[i] -= 0.25 * v2[i - 1];
        }
        // K5 gmtry-like row/column dot products
        for i in 0..M {
            let mut acc = 0.0;
            for j in 0..M {
                acc += wa[idx(i, j)] * wb[idx(j, i)];
            }
            v3[i] = acc * 0.001953125; // 1/512 keeps magnitudes tame
        }
        // K6 emit-like blend
        for i in 0..32 {
            v3[16 + i] = 0.5 * (v1[i] + v2[i]);
        }
        // K7 vpenta-like stencil
        for i in 2..V - 2 {
            v1[i] += 0.25 * (v2[i - 2] + v3[i]);
        }
    }
    let mut sum = 0.0f64;
    for i in 0..M {
        sum += wc[idx(i, i)];
    }
    sum += v1[7] + v2[13] + v3[21];
    format!("{}", sum.trunc() as i32)
}

/// Fully unrolled inner product: `$f0 += wa_row[u] * wb_col[u·stride]`.
fn unrolled_dot(row_reg: &str, col_reg: &str) -> String {
    let mut s = String::new();
    for u in 0..M {
        writeln!(
            s,
            "        l.d   $f2, {}({row_reg})\n        l.d   $f4, {}({col_reg})\n        mul.d $f6, $f2, $f4\n        add.d $f0, $f0, $f6",
            u * 8,
            u * M * 8,
        )
        .expect("write to String cannot fail");
    }
    s
}

/// The per-stride, 8-way-unrolled butterfly loops of K2.
fn unrolled_fft() -> String {
    let mut s = String::new();
    let mut stride = 1usize;
    let mut section = 0usize;
    while stride < V {
        let limit = V - stride;
        let main = limit - limit % 8;
        writeln!(
            s,
            "# stride {stride}\n        la    $t1, v1\n        li    $t0, 0"
        )
        .expect("write to String cannot fail");
        if main > 0 {
            writeln!(s, "ff_i{section}:").expect("write to String cannot fail");
            for u in 0..8 {
                writeln!(
                    s,
                    "        l.d   $f2, {}($t1)\n        l.d   $f4, {}($t1)\n        add.d $f2, $f2, $f4\n        s.d   $f2, {}($t1)",
                    u * 8,
                    (u + stride) * 8,
                    u * 8,
                )
                .expect("write to String cannot fail");
            }
            writeln!(
                s,
                "        addiu $t1, $t1, 64\n        addiu $t0, $t0, 8\n        li    $t4, {main}\n        blt   $t0, $t4, ff_i{section}"
            )
            .expect("write to String cannot fail");
        }
        for u in 0..limit % 8 {
            writeln!(
                s,
                "        l.d   $f2, {}($t1)\n        l.d   $f4, {}($t1)\n        add.d $f2, $f2, $f4\n        s.d   $f2, {}($t1)",
                u * 8,
                (u + stride) * 8,
                u * 8,
            )
            .expect("write to String cannot fail");
        }
        stride *= 2;
        section += 1;
    }
    s
}

/// MIPS source of the kernel suite.
pub fn source() -> String {
    let mxm_dot = unrolled_dot("$t2", "$t3");
    let gmtry_dot = unrolled_dot("$t2", "$t3");
    let fft = unrolled_fft();

    // K2 damp loop unrolled by 8.
    let mut damp = String::new();
    for u in 0..8 {
        writeln!(
            damp,
            "        l.d   $f2, {0}($t1)\n        mul.d $f2, $f2, $f20\n        s.d   $f2, {0}($t1)",
            u * 8
        )
        .expect("write to String cannot fail");
    }

    // K4 recurrence unrolled by 3 (63 = 21 × 3); order-preserving.
    let mut btrix = String::new();
    for u in 0..3 {
        writeln!(
            btrix,
            "        l.d   $f2, {}($t1)\n        mul.d $f2, $f2, $f20\n        l.d   $f4, {next}($t1)\n        sub.d $f4, $f4, $f2\n        s.d   $f4, {next}($t1)",
            u * 8,
            next = (u + 1) * 8,
        )
        .expect("write to String cannot fail");
    }

    // K6 blend unrolled by 8.
    let mut emit = String::new();
    for u in 0..8 {
        writeln!(
            emit,
            "        l.d   $f2, {0}($t1)\n        l.d   $f4, {0}($t2)\n        add.d $f2, $f2, $f4\n        mul.d $f2, $f2, $f20\n        s.d   $f2, {0}($t3)",
            u * 8
        )
        .expect("write to String cannot fail");
    }

    // K7 stencil unrolled by 6 (60 = 10 × 6).
    let mut vpenta = String::new();
    for u in 0..6 {
        writeln!(
            vpenta,
            "        l.d   $f2, {0}($t2)\n        l.d   $f4, {0}($t3)\n        add.d $f2, $f2, $f4\n        mul.d $f2, $f2, $f20\n        l.d   $f6, {0}($t1)\n        add.d $f6, $f6, $f2\n        s.d   $f6, {0}($t1)",
            u * 8
        )
        .expect("write to String cannot fail");
    }

    format!(
        r"
        .equ M, {M}
        .equ V, {V}
        .equ ITERS, {ITERS}

        .data
        .align 3
wa:     .space M*M*8
wb:     .space M*M*8
wc:     .space M*M*8
v1:     .space V*8
v2:     .space V*8
v3:     .space V*8
        .align 3
khalf:  .double 0.5
kq:     .double 0.25
ksix:   .double 0.0625
kinv:   .double 0.001953125

        .text
main:
        addiu $sp, $sp, -8
        sw    $ra, 4($sp)
        jal   setup
        li    $s7, 0
drive:
        jal   mxm
        jal   fftish
        jal   cholish
        jal   btrix
        jal   gmtry
        jal   emit
        jal   vpenta
        addiu $s7, $s7, 1
        li    $t0, ITERS
        blt   $s7, $t0, drive
        jal   report
        lw    $ra, 4($sp)
        addiu $sp, $sp, 8
        li    $v0, 10
        syscall

# ---- initialization -------------------------------------------------
setup:
        li    $t0, 0
su_mat:
        li    $t1, 9
        rem   $t2, $t0, $t1
        addiu $t2, $t2, 1
        mtc1  $t2, $f0
        cvt.d.w $f2, $f0
        sll   $t3, $t0, 3
        la    $t4, wa
        addu  $t4, $t4, $t3
        s.d   $f2, 0($t4)
        li    $t1, 5
        rem   $t2, $t0, $t1
        addiu $t2, $t2, 1
        mtc1  $t2, $f0
        cvt.d.w $f2, $f0
        la    $t4, wb
        addu  $t4, $t4, $t3
        s.d   $f2, 0($t4)
        addiu $t0, $t0, 1
        li    $t1, M*M
        blt   $t0, $t1, su_mat
        li    $t0, 0
su_vec:
        li    $t1, 13
        rem   $t2, $t0, $t1
        addiu $t2, $t2, 1
        mtc1  $t2, $f0
        cvt.d.w $f2, $f0
        sll   $t3, $t0, 3
        la    $t4, v1
        addu  $t4, $t4, $t3
        s.d   $f2, 0($t4)
        li    $t1, 3
        rem   $t2, $t0, $t1
        addiu $t2, $t2, 1
        mtc1  $t2, $f0
        cvt.d.w $f2, $f0
        la    $t4, v2
        addu  $t4, $t4, $t3
        s.d   $f2, 0($t4)
        la    $t4, v3
        addu  $t4, $t4, $t3
        s.d   $f30, 0($t4)           # $f30/$f31 hold 0.0 at reset
        addiu $t0, $t0, 1
        li    $t1, V
        blt   $t0, $t1, su_vec
        jr    $ra

# ---- K1: wc = wa * wb, inner product fully unrolled -------------------
mxm:
        addiu $sp, $sp, -8
        sw    $ra, 4($sp)
        li    $s0, 0
mx_i:
        jal   lib_tick
        li    $s1, 0
mx_j:   mtc1  $zero, $f0
        mtc1  $zero, $f1
        li    $t0, M*8
        mult  $s0, $t0
        mflo  $t1
        la    $t2, wa
        addu  $t2, $t2, $t1
        la    $t3, wb
        sll   $t4, $s1, 3
        addu  $t3, $t3, $t4
{mxm_dot}        li    $t0, M*8
        mult  $s0, $t0
        mflo  $t1
        sll   $t4, $s1, 3
        addu  $t1, $t1, $t4
        la    $t6, wc
        addu  $t6, $t6, $t1
        s.d   $f0, 0($t6)
        addiu $s1, $s1, 1
        li    $t5, M
        blt   $s1, $t5, mx_j
        addiu $s0, $s0, 1
        li    $t5, M
        blt   $s0, $t5, mx_i
        lw    $ra, 4($sp)
        addiu $sp, $sp, 8
        jr    $ra

# ---- K2: butterfly passes (per-stride unrolled) then damp -------------
fftish:
        la    $t0, ksix
        l.d   $f20, 0($t0)
{fft}
        la    $t1, v1
        li    $t0, 0
ff_d:
{damp}        addiu $t1, $t1, 64
        addiu $t0, $t0, 8
        li    $t4, V
        blt   $t0, $t4, ff_d
        jr    $ra

# ---- K3: triangular update ------------------------------------------
cholish:
        la    $t0, khalf
        l.d   $f20, 0($t0)
        li    $s0, 1
ch_i:
        li    $s1, 0
        li    $t0, M*8
        mult  $s0, $t0
        mflo  $t1
        la    $t2, wa
        addu  $t3, $t2, $t1          # &wa[i][0]
        subu  $t4, $t3, $t0          # &wa[i-1][0]
ch_j:
        l.d   $f2, 0($t4)
        mul.d $f2, $f2, $f20
        l.d   $f4, 0($t3)
        add.d $f4, $f4, $f2
        s.d   $f4, 0($t3)
        addiu $t3, $t3, 8
        addiu $t4, $t4, 8
        addiu $s1, $s1, 1
        blt   $s1, $s0, ch_j
        addiu $s0, $s0, 1
        li    $t5, M
        blt   $s0, $t5, ch_i
        jr    $ra

# ---- K4: first-order recurrence (unrolled by 3) -----------------------
btrix:
        la    $t0, kq
        l.d   $f20, 0($t0)
        la    $t1, v2
        li    $t0, 0
bt_i:
{btrix}        addiu $t1, $t1, 24
        addiu $t0, $t0, 3
        li    $t4, 63
        blt   $t0, $t4, bt_i
        jr    $ra

# ---- K5: row-by-column dot products (fully unrolled) ------------------
gmtry:
        addiu $sp, $sp, -8
        sw    $ra, 4($sp)
        la    $t0, kinv
        l.d   $f22, 0($t0)
        li    $s0, 0
gm_i:
        jal   lib_tick
        mtc1  $zero, $f0
        mtc1  $zero, $f1
        li    $t0, M*8
        mult  $s0, $t0
        mflo  $t1
        la    $t2, wa
        addu  $t2, $t2, $t1          # &wa[i][0]
        la    $t3, wb
        sll   $t4, $s0, 3
        addu  $t3, $t3, $t4          # &wb[0][i]
{gmtry_dot}        mul.d $f0, $f0, $f22
        la    $t6, v3
        sll   $t4, $s0, 3
        addu  $t6, $t6, $t4
        s.d   $f0, 0($t6)
        addiu $s0, $s0, 1
        li    $t5, M
        blt   $s0, $t5, gm_i
        lw    $ra, 4($sp)
        addiu $sp, $sp, 8
        jr    $ra

# ---- K6: blend into v3[16..48] (unrolled by 8) -------------------------
emit:
        la    $t0, khalf
        l.d   $f20, 0($t0)
        la    $t1, v1
        la    $t2, v2
        la    $t3, v3
        addiu $t3, $t3, 128          # &v3[16]
        li    $t0, 0
em_i:
{emit}        addiu $t1, $t1, 64
        addiu $t2, $t2, 64
        addiu $t3, $t3, 64
        addiu $t0, $t0, 8
        li    $t4, 32
        blt   $t0, $t4, em_i
        jr    $ra

# ---- K7: pentadiagonal-like stencil (unrolled by 6) ---------------------
vpenta:
        la    $t0, kq
        l.d   $f20, 0($t0)
        la    $t1, v1
        addiu $t1, $t1, 16           # &v1[2]
        la    $t2, v2                # &v2[0] = v2[i-2]
        la    $t3, v3
        addiu $t3, $t3, 16           # &v3[2] = v3[i]
        li    $t0, 2
vp_i:
{vpenta}        addiu $t1, $t1, 48
        addiu $t2, $t2, 48
        addiu $t3, $t3, 48
        addiu $t0, $t0, 6
        li    $t4, V-2
        blt   $t0, $t4, vp_i
        jr    $ra

# ---- checksum ----------------------------------------------------------
report:
        mtc1  $zero, $f0
        mtc1  $zero, $f1
        li    $t0, 0
rp_i:
        li    $t1, M+1
        mult  $t0, $t1
        mflo  $t2
        sll   $t2, $t2, 3
        la    $t3, wc
        addu  $t3, $t3, $t2
        l.d   $f2, 0($t3)
        add.d $f0, $f0, $f2
        addiu $t0, $t0, 1
        li    $t1, M
        blt   $t0, $t1, rp_i
        la    $t3, v1
        l.d   $f2, 56($t3)           # v1[7]
        add.d $f0, $f0, $f2
        la    $t3, v2
        l.d   $f2, 104($t3)          # v2[13]
        add.d $f0, $f0, $f2
        la    $t3, v3
        l.d   $f2, 168($t3)          # v3[21]
        add.d $f0, $f0, $f2
        cvt.w.d $f4, $f0
        mfc1  $a0, $f4
        li    $v0, 1
        syscall
        jr    $ra

{library}
",
        library = library::library_source(0x7777)
    )
}
