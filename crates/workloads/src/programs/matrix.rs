//! The `matrix25A` benchmark: a 25×25 double-precision matrix multiply
//! with deterministic operands and a diagonal checksum, standing in for
//! the paper's matrix program (36766 bytes of object code).
//!
//! `A[i][j] = i + j`, `B[i][j] = i − j + 1`; the trace of `C = A·B` is
//! `Σᵢ Σₖ (i+k)(k−i+1) = 15000`, which the program prints.
//!
//! The inner product is unrolled by 5, as 1992 FORTRAN compilers did,
//! which puts the hot loop's footprint just above a 256-byte cache —
//! reproducing the paper's small-but-nonzero matrix25A miss rates — and
//! the outer loop calls into the synthetic library ring for the
//! large-cache miss floor.

use super::library;

/// The expected program output (the diagonal checksum).
pub const EXPECTED_OUTPUT: &str = "15000";

/// Unroll factor of the inner product (divides N).
const UNROLL: usize = 5;

/// MIPS source of the kernel.
pub fn source() -> String {
    use std::fmt::Write as _;
    let mut unrolled = String::new();
    for u in 0..UNROLL {
        writeln!(
            unrolled,
            "        l.d   $f2, {}($t2)\n        l.d   $f4, {}($t3)\n        mul.d $f6, $f2, $f4\n        add.d $f0, $f0, $f6",
            u * 8,
            u * 25 * 8,
        )
        .expect("write to String cannot fail");
    }
    format!(
        r"
        .equ N, 25
        .equ UNROLL, {UNROLL}

        .data
        .align 3
A:      .space 5000                  # 25*25 doubles
B:      .space 5000
C:      .space 5000

        .text
main:
        addiu $sp, $sp, -8
        sw    $ra, 4($sp)
        jal   init
        jal   matmul
        jal   checksum
        lw    $ra, 4($sp)
        addiu $sp, $sp, 8
        li    $v0, 10
        syscall

# A[i][j] = i+j ; B[i][j] = i-j+1 (exact small integers in doubles)
init:
        addiu $sp, $sp, -8
        sw    $ra, 4($sp)
        li    $s0, 0                 # i
init_i:
        jal   lib_tick
        li    $t1, 0                 # j
init_j:
        addu  $t2, $s0, $t1
        mtc1  $t2, $f0
        cvt.d.w $f2, $f0
        li    $t3, N
        mult  $s0, $t3
        mflo  $t4
        addu  $t4, $t4, $t1
        sll   $t4, $t4, 3
        la    $t5, A
        addu  $t5, $t5, $t4
        s.d   $f2, 0($t5)
        subu  $t6, $s0, $t1
        addiu $t6, $t6, 1
        mtc1  $t6, $f4
        cvt.d.w $f6, $f4
        la    $t7, B
        addu  $t7, $t7, $t4
        s.d   $f6, 0($t7)
        addiu $t1, $t1, 1
        li    $t3, N
        blt   $t1, $t3, init_j
        addiu $s0, $s0, 1
        li    $t3, N
        blt   $s0, $t3, init_i
        lw    $ra, 4($sp)
        addiu $sp, $sp, 8
        jr    $ra

# C = A * B with the k loop unrolled by UNROLL.
matmul:
        addiu $sp, $sp, -8
        sw    $ra, 4($sp)
        li    $s0, 0                 # i
mm_i:
        jal   lib_tick
        li    $s1, 0                 # j
mm_j:
        mtc1  $zero, $f0             # acc = 0.0
        mtc1  $zero, $f1
        li    $s2, 0                 # k
        li    $t0, N*8
        mult  $s0, $t0
        mflo  $t1
        la    $t2, A
        addu  $t2, $t2, $t1          # &A[i][0]
        la    $t3, B
        sll   $t4, $s1, 3
        addu  $t3, $t3, $t4          # &B[0][j]
mm_k:
{unrolled}        addiu $t2, $t2, UNROLL*8
        addiu $t3, $t3, UNROLL*N*8
        addiu $s2, $s2, UNROLL
        li    $t5, N
        blt   $s2, $t5, mm_k
        li    $t0, N*8
        mult  $s0, $t0
        mflo  $t1
        sll   $t4, $s1, 3
        addu  $t1, $t1, $t4
        la    $t6, C
        addu  $t6, $t6, $t1
        s.d   $f0, 0($t6)
        addiu $s1, $s1, 1
        li    $t5, N
        blt   $s1, $t5, mm_j
        addiu $s0, $s0, 1
        li    $t5, N
        blt   $s0, $t5, mm_i
        lw    $ra, 4($sp)
        addiu $sp, $sp, 8
        jr    $ra

# Print the integer sum of the diagonal of C.
checksum:
        mtc1  $zero, $f0
        mtc1  $zero, $f1
        li    $t0, 0
ck_loop:
        li    $t1, N+1
        mult  $t0, $t1
        mflo  $t2
        sll   $t2, $t2, 3
        la    $t3, C
        addu  $t3, $t3, $t2
        l.d   $f2, 0($t3)
        add.d $f0, $f0, $f2
        addiu $t0, $t0, 1
        li    $t1, N
        blt   $t0, $t1, ck_loop
        cvt.w.d $f4, $f0
        mfc1  $a0, $f4
        li    $v0, 1
        syscall
        jr    $ra

{library}
",
        library = library::library_source(0xA2A2)
    )
}
