//! The ten-program static corpus of Figure 5, at the paper's exact
//! object-code sizes, and the Preselected Bounded Huffman code trained
//! on it.

use std::sync::OnceLock;

use ccrp_compress::{ByteCode, ByteHistogram, PositionalCode, PositionalHistogram};

use crate::codegen::{generate_text, CodeProfile};
use crate::workload::TracedWorkload;

/// One Figure-5 program: name, the paper's byte size, and our text.
#[derive(Debug, Clone)]
pub struct CorpusProgram {
    /// Program name as printed under Figure 5.
    pub name: &'static str,
    /// The object-code size the paper reports.
    pub paper_bytes: u32,
    /// Synthesized (or kernel-derived) text of exactly that size,
    /// rounded up to a whole word.
    pub text: Vec<u8>,
}

/// Builds the ten Figure-5 programs: lex, pswarp, yacc, who, eightq,
/// matrix25A, lloopO1, xlisp, espresso, spim.
///
/// Three of them (eightq, matrix25A, lloopO1, espresso) reuse the traced
/// kernels' padded text so the compression and performance experiments
/// see the same bytes; the rest are synthesized with fitting profiles.
///
/// # Panics
///
/// Panics if a kernel fails to assemble — a bug in this crate, not a
/// data condition.
pub fn figure5_corpus() -> Vec<CorpusProgram> {
    let kernel_text = |w: TracedWorkload| {
        w.padded_text()
            .unwrap_or_else(|e| panic!("{} kernel must build: {e}", w.name()))
    };
    let synth = |profile: CodeProfile, bytes: u32, seed: u64| {
        generate_text(&profile, (bytes as usize).div_ceil(4) * 4, seed)
    };
    vec![
        CorpusProgram {
            name: "lex",
            paper_bytes: 53172,
            text: synth(CodeProfile::integer(), 53172, 0x1E0),
        },
        CorpusProgram {
            name: "pswarp",
            paper_bytes: 61364,
            text: synth(CodeProfile::floating(), 61364, 0x1E1),
        },
        CorpusProgram {
            name: "yacc",
            paper_bytes: 49076,
            text: synth(CodeProfile::integer(), 49076, 0x1E2),
        },
        CorpusProgram {
            name: "who",
            paper_bytes: 65940,
            text: synth(CodeProfile::integer(), 65940, 0x1E3),
        },
        CorpusProgram {
            name: "eightq",
            paper_bytes: 4020,
            text: kernel_text(TracedWorkload::Eightq),
        },
        CorpusProgram {
            name: "matrix25A",
            paper_bytes: 36766,
            text: kernel_text(TracedWorkload::Matrix25A),
        },
        CorpusProgram {
            name: "lloopO1",
            paper_bytes: 4020,
            text: kernel_text(TracedWorkload::Lloop01),
        },
        CorpusProgram {
            name: "xlisp",
            paper_bytes: 65940,
            text: synth(CodeProfile::integer(), 65940, 0x1E7),
        },
        CorpusProgram {
            name: "espresso",
            paper_bytes: 176052,
            text: kernel_text(TracedWorkload::Espresso),
        },
        CorpusProgram {
            name: "spim",
            paper_bytes: 147360,
            text: synth(CodeProfile::integer(), 147360, 0x1E9),
        },
    ]
}

/// The pooled byte histogram of the whole corpus — the input to the
/// preselected code, exactly as §2.2 constructs it ("A byte frequency
/// histogram was constructed based on all ten of the programs").
pub fn corpus_histogram() -> ByteHistogram {
    let mut h = ByteHistogram::new();
    for program in figure5_corpus() {
        h.update(&program.text);
    }
    h
}

/// The Preselected Bounded Huffman code used by every simulation in the
/// paper's §4 — built once from the corpus and cached (it is the
/// "hardwired" decoder).
pub fn preselected_code() -> &'static ByteCode {
    static CODE: OnceLock<ByteCode> = OnceLock::new();
    CODE.get_or_init(|| {
        ByteCode::preselected(&corpus_histogram()).expect("corpus histogram is non-empty")
    })
}

/// The pooled per-byte-position histograms of the whole corpus — the
/// positional analogue of [`corpus_histogram`], for the §5 extension
/// that trains one code per byte offset within the instruction word.
pub fn corpus_positional_histogram() -> PositionalHistogram {
    let mut h = PositionalHistogram::new();
    for program in figure5_corpus() {
        h.update(&program.text);
    }
    h
}

/// The corpus-trained Preselected Positional code (§5's "more
/// sophisticated encoding techniques") — built once and cached, like
/// [`preselected_code`].
pub fn preselected_positional_code() -> &'static PositionalCode {
    static CODE: OnceLock<PositionalCode> = OnceLock::new();
    CODE.get_or_init(|| {
        PositionalCode::preselected(&corpus_positional_histogram())
            .expect("corpus histogram is non-empty")
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_matches_paper_sizes() {
        let corpus = figure5_corpus();
        assert_eq!(corpus.len(), 10);
        let total: u32 = corpus.iter().map(|p| p.paper_bytes).sum();
        // Figure 5 prints 703752 under "Weighted Averages", but the ten
        // per-program sizes legible in the scan sum to 663710 — at least
        // one size is garbled in the source. We carry the legible
        // per-program numbers.
        assert_eq!(total, 663_710);
        for p in &corpus {
            let rounded = (p.paper_bytes as usize).div_ceil(4) * 4;
            // Kernel-derived entries may slightly exceed the paper size
            // when the kernel itself is larger; synthesized entries match
            // exactly.
            assert!(p.text.len() >= rounded, "{}", p.name);
            assert!(p.text.len() <= rounded.max(12 * 1024), "{}", p.name);
        }
    }

    #[test]
    fn preselected_code_is_complete_and_bounded() {
        let code = preselected_code();
        assert!(code.is_complete_alphabet());
        assert!(code.max_length() <= 16);
        // Zero (nop / low immediate bytes) must be the shortest code —
        // it dominates R2000 text.
        let zero_len = code.length_of(0);
        assert!(zero_len <= 4, "zero coded in {zero_len} bits");
    }

    #[test]
    fn corpus_compresses_like_code() {
        // Every corpus program must compress under the preselected code
        // (Figure 5 shows 61%–95% of original size).
        let code = preselected_code();
        for p in figure5_corpus() {
            let ratio = code.encoded_bits(&p.text) as f64 / (p.text.len() as f64 * 8.0);
            assert!(ratio < 1.0, "{} ratio {ratio}", p.name);
            assert!(ratio > 0.4, "{} implausibly compressible: {ratio}", p.name);
        }
    }
}
