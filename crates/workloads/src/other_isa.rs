//! Synthetic object code for instruction sets other than MIPS — the
//! paper's §5 proposal "to measure the effectiveness of this method on
//! instruction sets other than MIPS".
//!
//! Two contrasting dialects are synthesized with the same
//! compiler-output discipline as [`codegen`](crate::codegen) uses for
//! the R2000:
//!
//! * a **SPARC-like** fixed-width 32-bit RISC with a different field
//!   layout (2-bit op, destination high in the word, 13-bit immediates)
//!   — tests whether the CCRP's byte-Huffman approach depends on MIPS's
//!   particular encoding;
//! * a **68k-like** variable-length CISC of 16-bit words with optional
//!   immediate extensions — the already-dense encoding the paper's §1
//!   contrasts RISC against.
//!
//! The expectation the measurement confirms: any fixed-width RISC leaves
//! similar per-byte redundancy for a preselected code, while dense CISC
//! code leaves much less — quantifying why the paper targets RISC.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The synthesized instruction-set dialects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IsaDialect {
    /// MIPS R2000, via [`codegen`](crate::codegen) (the paper's ISA).
    MipsR2000,
    /// Fixed 32-bit RISC with SPARC-style field packing.
    SparcLike,
    /// Variable-length (16/32/48-bit) CISC with 68k-style opcodes.
    M68kLike,
}

impl IsaDialect {
    /// All dialects in presentation order.
    pub const ALL: [IsaDialect; 3] = [
        IsaDialect::MipsR2000,
        IsaDialect::SparcLike,
        IsaDialect::M68kLike,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            IsaDialect::MipsR2000 => "MIPS R2000",
            IsaDialect::SparcLike => "SPARC-like RISC",
            IsaDialect::M68kLike => "68k-like CISC",
        }
    }
}

/// Synthesizes `target_bytes` of text in the given dialect,
/// deterministically in `(dialect, target_bytes, seed)`.
///
/// # Panics
///
/// Panics if `target_bytes` is not a multiple of 4 (all three dialects
/// are padded to word multiples, as linkers do).
pub fn generate(dialect: IsaDialect, target_bytes: usize, seed: u64) -> Vec<u8> {
    assert_eq!(target_bytes % 4, 0, "text is padded to word multiples");
    match dialect {
        IsaDialect::MipsR2000 => crate::codegen::generate_text(
            &crate::codegen::CodeProfile::integer(),
            target_bytes,
            seed,
        ),
        IsaDialect::SparcLike => sparc_like(target_bytes, seed),
        IsaDialect::M68kLike => m68k_like(target_bytes, seed),
    }
}

/// SPARC register numbers as compilers use them: mostly %o and %l
/// registers (8..=23), occasionally %g1-%g7.
fn sparc_reg(rng: &mut StdRng) -> u32 {
    // Compilers concentrate on a handful of %o and %l registers.
    const POOL: [u32; 8] = [8, 9, 10, 16, 17, 18, 11, 19];
    if rng.gen_bool(0.9) {
        POOL[rng.gen_range(0..POOL.len())]
    } else {
        rng.gen_range(1..24)
    }
}

fn sparc_like(target_bytes: usize, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(target_bytes);
    let simm13 = |rng: &mut StdRng| -> u32 {
        // Small word-aligned offsets dominate, sign-extended to 13 bits.
        let value: i32 = if rng.gen_bool(0.9) {
            4 * rng.gen_range(0..12)
        } else {
            rng.gen_range(-256..256)
        };
        (value as u32) & 0x1FFF
    };
    while out.len() < target_bytes {
        let word: u32 = match rng.gen_range(0..100) {
            // Format 3 arithmetic: op=2 | rd | op3 | rs1 | i | simm13/rs2.
            0..=39 => {
                let op3 = [0x00u32, 0x00, 0x00, 0x02, 0x02, 0x04, 0x01, 0x14][rng.gen_range(0..8)]; // add-heavy
                let i_bit = u32::from(rng.gen_bool(0.6));
                let tail = if i_bit == 1 {
                    simm13(&mut rng)
                } else {
                    sparc_reg(&mut rng)
                };
                (2 << 30)
                    | (sparc_reg(&mut rng) << 25)
                    | (op3 << 19)
                    | (sparc_reg(&mut rng) << 14)
                    | (i_bit << 13)
                    | tail
            }
            // Loads/stores: op=3.
            40..=69 => {
                let op3 = [0x00u32, 0x00, 0x00, 0x04, 0x04, 0x01, 0x05][rng.gen_range(0..7)]; // ld/st-heavy
                (3 << 30)
                    | (sparc_reg(&mut rng) << 25)
                    | (op3 << 19)
                    | (sparc_reg(&mut rng) << 14)
                    | (1 << 13)
                    | simm13(&mut rng)
            }
            // sethi: op=0, op2=4 (the lui analogue).
            70..=76 => {
                let imm22 = if rng.gen_bool(0.85) {
                    0x0010_0000 + rng.gen_range(0u32..16)
                } else {
                    rng.gen::<u32>() & 0x003F_FFFF
                };
                (sparc_reg(&mut rng) << 25) | (4 << 22) | imm22
            }
            // Branches: op=0, op2=2, short displacements.
            77..=89 => {
                let cond = [8u32, 8, 9, 9, 1, 3][rng.gen_range(0..6)];
                let disp: i32 = if rng.gen_bool(0.6) {
                    -rng.gen_range(2..16)
                } else {
                    rng.gen_range(2..8)
                };
                (cond << 25) | (2 << 22) | ((disp as u32) & 0x003F_FFFF)
            }
            // Calls: op=1, 30-bit word displacement (kept local).
            90..=94 => (1 << 30) | (rng.gen_range(0u32..0x400) * 8),
            // nop (sethi %g0, 0).
            _ => 4 << 22,
        };
        // SPARC is big-endian.
        out.extend_from_slice(&word.to_be_bytes());
    }
    out.truncate(target_bytes);
    out
}

fn m68k_like(target_bytes: usize, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(target_bytes);
    let reg = |rng: &mut StdRng| rng.gen_range(0u16..8);
    while out.len() < target_bytes {
        match rng.gen_range(0..100) {
            // move.w/l register-to-register or register-indirect: 1 word.
            0..=39 => {
                let size = [0x3000u16, 0x2000, 0x1000][rng.gen_range(0..3)];
                let word = size
                    | (reg(&mut rng) << 9)
                    | (rng.gen_range(0u16..3) << 6)
                    | (rng.gen_range(0u16..3) << 3)
                    | reg(&mut rng);
                out.extend_from_slice(&word.to_be_bytes());
            }
            // move with 16-bit displacement: 2 words.
            40..=54 => {
                let word = 0x2028u16 | (reg(&mut rng) << 9) | reg(&mut rng);
                out.extend_from_slice(&word.to_be_bytes());
                let disp: i16 = 4 * rng.gen_range(0..16);
                out.extend_from_slice(&disp.to_be_bytes());
            }
            // addq/subq: 1 word, 3-bit immediate.
            55..=69 => {
                let word = 0x5080u16
                    | (rng.gen_range(1u16..8) << 9)
                    | (u16::from(rng.gen_bool(0.5)) << 8)
                    | reg(&mut rng);
                out.extend_from_slice(&word.to_be_bytes());
            }
            // Bcc with 8-bit displacement: 1 word.
            70..=84 => {
                let cond = [0x6600u16, 0x6700, 0x6A00, 0x6B00, 0x6000][rng.gen_range(0..5)];
                let disp: i8 = if rng.gen_bool(0.6) {
                    -(2 * rng.gen_range(1..32))
                } else {
                    2 * rng.gen_range(1..16)
                };
                out.extend_from_slice(&(cond | u16::from(disp as u8)).to_be_bytes());
            }
            // move.l #imm32: 3 words (the constant-heavy case).
            85..=92 => {
                let word = 0x203Cu16 | (reg(&mut rng) << 9);
                out.extend_from_slice(&word.to_be_bytes());
                let imm: u32 = if rng.gen_bool(0.6) {
                    rng.gen_range(0..4096) * 4
                } else {
                    rng.gen()
                };
                out.extend_from_slice(&imm.to_be_bytes());
            }
            // jsr with absolute word address: 2 words.
            93..=97 => {
                out.extend_from_slice(&0x4EB8u16.to_be_bytes());
                out.extend_from_slice(&(rng.gen_range(0u16..0x4000) & !1).to_be_bytes());
            }
            // rts / nop.
            _ => out.extend_from_slice(
                &if rng.gen_bool(0.5) { 0x4E75u16 } else { 0x4E71 }.to_be_bytes(),
            ),
        }
    }
    out.truncate(target_bytes);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccrp_compress::{ByteCode, ByteHistogram};

    #[test]
    fn deterministic_and_sized() {
        for dialect in IsaDialect::ALL {
            let a = generate(dialect, 8192, 5);
            let b = generate(dialect, 8192, 5);
            assert_eq!(a.len(), 8192, "{dialect:?}");
            assert_eq!(a, b, "{dialect:?}");
        }
    }

    #[test]
    fn risc_compresses_better_than_cisc() {
        // The premise of the whole paper, measured: fixed-width RISC
        // leaves more per-byte redundancy than a dense CISC encoding.
        let ratio = |dialect: IsaDialect| {
            let text = generate(dialect, 65536, 42);
            let code = ByteCode::preselected(&ByteHistogram::of(&text)).expect("code builds");
            code.encoded_bits(&text) as f64 / (text.len() as f64 * 8.0)
        };
        let mips = ratio(IsaDialect::MipsR2000);
        let sparc = ratio(IsaDialect::SparcLike);
        let cisc = ratio(IsaDialect::M68kLike);
        assert!(mips < 0.80, "mips {mips:.3}");
        assert!(sparc < 0.85, "sparc {sparc:.3}");
        assert!(
            cisc > mips + 0.05 && cisc > sparc + 0.03,
            "cisc {cisc:.3} should compress notably worse than RISC ({mips:.3}, {sparc:.3})"
        );
    }

    #[test]
    fn dialects_differ() {
        let a = generate(IsaDialect::SparcLike, 4096, 1);
        let b = generate(IsaDialect::M68kLike, 4096, 1);
        assert_ne!(a, b);
    }
}
