//! Benchmark programs for the CCRP reproduction.
//!
//! The paper evaluates on DECstation 3100 binaries and `pixie` traces we
//! do not have. This crate rebuilds that workload suite:
//!
//! * [`TracedWorkload`] — the eight programs of Tables 1–13, written as
//!   real MIPS kernels, assembled by `ccrp-asm` and executed under
//!   `ccrp-emu` to capture traces. Every kernel prints a self-check
//!   value verified against a Rust replication.
//! * [`figure5_corpus`] — the ten static programs of Figure 5 at the
//!   paper's exact object sizes, with synthesized-but-realistic MIPS
//!   bodies ([`codegen`]).
//! * [`preselected_code`] — the corpus-trained Preselected Bounded
//!   Huffman code used by every performance simulation.
//!
//! # Examples
//!
//! ```no_run
//! use ccrp_workloads::TracedWorkload;
//!
//! let eightq = TracedWorkload::Eightq.build()?;
//! println!(
//!     "{}: {} dynamic instructions over {} bytes of text",
//!     eightq.name,
//!     eightq.dynamic_instructions(),
//!     eightq.text.len(),
//! );
//! # Ok::<(), ccrp_workloads::WorkloadError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codegen;
mod corpus;
pub mod other_isa;
mod programs;
mod workload;

pub use codegen::{generate_text, CodeProfile};
pub use corpus::{
    corpus_histogram, corpus_positional_histogram, figure5_corpus, preselected_code,
    preselected_positional_code, CorpusProgram,
};
pub use other_isa::IsaDialect;
pub use workload::{TracedWorkload, Workload, WorkloadError};

#[cfg(test)]
mod tests {
    use super::*;

    /// Every traced workload assembles, runs, self-checks, and produces
    /// a trace in the paper's 10K–1M dynamic-instruction range.
    #[test]
    fn all_workloads_build() {
        for wl in TracedWorkload::ALL {
            let w = wl.build().unwrap_or_else(|e| panic!("{}: {e}", wl.name()));
            let n = w.dynamic_instructions();
            assert!(
                (10_000..=1_000_000).contains(&n),
                "{}: {n} dynamic instructions outside the paper's range",
                w.name
            );
            assert!(w.text.len() as u32 >= wl.paper_text_bytes());
        }
    }
}
