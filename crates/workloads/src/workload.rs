use std::error::Error;
use std::fmt;

use ccrp_asm::{assemble, AsmError, ProgramImage};
use ccrp_emu::{EmuError, Machine, ProgramTrace};

use crate::codegen::{generate_text, CodeProfile};
use crate::programs;

/// Errors while building a workload.
#[derive(Debug)]
#[non_exhaustive]
pub enum WorkloadError {
    /// The kernel source failed to assemble (a bug in this crate).
    Asm(AsmError),
    /// The kernel faulted during trace capture.
    Emu(EmuError),
    /// The kernel ran but printed the wrong answer.
    WrongOutput {
        /// Which workload failed.
        name: &'static str,
        /// What it should have printed.
        expected: String,
        /// What it printed.
        actual: String,
    },
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::Asm(e) => write!(f, "workload kernel failed to assemble: {e}"),
            WorkloadError::Emu(e) => write!(f, "workload kernel faulted: {e}"),
            WorkloadError::WrongOutput {
                name,
                expected,
                actual,
            } => {
                write!(
                    f,
                    "workload `{name}` printed `{actual}`, expected `{expected}`"
                )
            }
        }
    }
}

impl Error for WorkloadError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            WorkloadError::Asm(e) => Some(e),
            WorkloadError::Emu(e) => Some(e),
            WorkloadError::WrongOutput { .. } => None,
        }
    }
}

impl From<AsmError> for WorkloadError {
    fn from(e: AsmError) -> Self {
        WorkloadError::Asm(e)
    }
}

impl From<EmuError> for WorkloadError {
    fn from(e: EmuError) -> Self {
        WorkloadError::Emu(e)
    }
}

/// A built benchmark: its executable image, captured trace, and the
/// full-size program text used for the compression experiments.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Display name as in the paper's tables.
    pub name: &'static str,
    /// The assembled kernel (the part that executes).
    pub image: ProgramImage,
    /// The instruction/data trace captured by the emulator.
    pub trace: ProgramTrace,
    /// Program text sized like the paper's binary: the kernel followed
    /// by synthesized "library" code, for the static-compression runs.
    /// The executed kernel occupies the front, so every traced address
    /// falls inside it.
    pub text: Vec<u8>,
}

impl Workload {
    /// Dynamic instruction count of the captured trace.
    pub fn dynamic_instructions(&self) -> usize {
        self.trace.len()
    }
}

/// The eight programs the paper traces through the system simulator
/// (Tables 1–13).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TracedWorkload {
    /// Eight-queens backtracking search.
    Eightq,
    /// 25×25 double matrix multiply.
    Matrix25A,
    /// Livermore loop 1.
    Lloop01,
    /// Mesh relaxation kernel.
    Tomcatv,
    /// The seven NAS kernels.
    Nasa7,
    /// A single NAS-style vector kernel.
    Nasa1,
    /// Branchy logic-minimizer-style dispatcher.
    Espresso,
    /// Huge straight-line FP basic block.
    Fpppp,
}

impl TracedWorkload {
    /// All traced workloads in the paper's table order.
    pub const ALL: [TracedWorkload; 8] = [
        TracedWorkload::Nasa7,
        TracedWorkload::Matrix25A,
        TracedWorkload::Fpppp,
        TracedWorkload::Espresso,
        TracedWorkload::Nasa1,
        TracedWorkload::Eightq,
        TracedWorkload::Tomcatv,
        TracedWorkload::Lloop01,
    ];

    /// The name used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            TracedWorkload::Eightq => "eightq",
            TracedWorkload::Matrix25A => "matrix25A",
            TracedWorkload::Lloop01 => "lloopO1",
            TracedWorkload::Tomcatv => "tomcatv",
            TracedWorkload::Nasa7 => "NASA7",
            TracedWorkload::Nasa1 => "NASA1",
            TracedWorkload::Espresso => "espresso",
            TracedWorkload::Fpppp => "fpppp",
        }
    }

    /// Target size of the full program text in bytes. For the Figure-5
    /// programs these are the paper's exact object sizes; for the
    /// SPEC/NAS programs, plausible 1992 binary sizes within the paper's
    /// stated 4 KB–190 KB range.
    pub fn paper_text_bytes(self) -> u32 {
        match self {
            TracedWorkload::Eightq => 4020,
            TracedWorkload::Matrix25A => 36766,
            TracedWorkload::Lloop01 => 4020,
            TracedWorkload::Tomcatv => 24576,
            TracedWorkload::Nasa7 => 90112,
            TracedWorkload::Nasa1 => 61440,
            TracedWorkload::Espresso => 176052,
            TracedWorkload::Fpppp => 122880,
        }
    }

    /// Profile for the synthesized library padding.
    fn profile(self) -> CodeProfile {
        match self {
            TracedWorkload::Eightq | TracedWorkload::Espresso => CodeProfile::integer(),
            TracedWorkload::Fpppp => CodeProfile::constant_heavy(),
            _ => CodeProfile::floating(),
        }
    }

    /// The kernel's MIPS source.
    pub fn source(self) -> String {
        match self {
            TracedWorkload::Eightq => programs::eightq::source(),
            TracedWorkload::Matrix25A => programs::matrix::source(),
            TracedWorkload::Lloop01 => programs::lloop::source(),
            TracedWorkload::Tomcatv => programs::tomcatv::source(),
            TracedWorkload::Nasa7 => programs::nasa7::source(),
            TracedWorkload::Nasa1 => programs::nasa1::source(),
            TracedWorkload::Espresso => programs::espresso::source(),
            TracedWorkload::Fpppp => programs::fpppp::source(),
        }
    }

    /// What the kernel must print (its self-check).
    pub fn expected_output(self) -> String {
        match self {
            TracedWorkload::Eightq => programs::eightq::EXPECTED_OUTPUT.to_string(),
            TracedWorkload::Matrix25A => programs::matrix::EXPECTED_OUTPUT.to_string(),
            TracedWorkload::Lloop01 => programs::lloop::expected_output(),
            TracedWorkload::Tomcatv => programs::tomcatv::expected_output(),
            TracedWorkload::Nasa7 => programs::nasa7::expected_output(),
            TracedWorkload::Nasa1 => programs::nasa1::expected_output(),
            TracedWorkload::Espresso => programs::espresso::expected_output(),
            TracedWorkload::Fpppp => programs::fpppp::expected_output(),
        }
    }

    /// Assembles the kernel without executing it (used by the static
    /// corpus, which only needs bytes).
    ///
    /// # Errors
    ///
    /// [`WorkloadError::Asm`] on kernel bugs.
    pub fn assemble_kernel(self) -> Result<ProgramImage, WorkloadError> {
        Ok(assemble(&self.source())?)
    }

    /// Kernel text plus synthesized library padding, sized to
    /// [`paper_text_bytes`](Self::paper_text_bytes).
    ///
    /// # Errors
    ///
    /// [`WorkloadError::Asm`] on kernel bugs.
    pub fn padded_text(self) -> Result<Vec<u8>, WorkloadError> {
        let image = self.assemble_kernel()?;
        Ok(pad_text(
            image.text_bytes(),
            self.paper_text_bytes(),
            self.profile(),
            self.seed(),
        ))
    }

    fn seed(self) -> u64 {
        // Stable per-workload seed (never derived from hashes that could
        // change between Rust releases).
        match self {
            TracedWorkload::Eightq => 0xE1,
            TracedWorkload::Matrix25A => 0xA2,
            TracedWorkload::Lloop01 => 0x13,
            TracedWorkload::Tomcatv => 0x7C,
            TracedWorkload::Nasa7 => 0x77,
            TracedWorkload::Nasa1 => 0x71,
            TracedWorkload::Espresso => 0xE5,
            TracedWorkload::Fpppp => 0xF4,
        }
    }

    /// Assembles the kernel, executes it under the emulator capturing
    /// the trace, checks the printed answer, and attaches the padded
    /// text.
    ///
    /// # Errors
    ///
    /// Assembly or emulation failures, or a wrong self-check answer —
    /// all of which indicate bugs in this crate, surfaced loudly.
    pub fn build(self) -> Result<Workload, WorkloadError> {
        let image = assemble(&self.source())?;
        let mut trace = ProgramTrace::new();
        let mut machine = Machine::new(&image);
        machine.run(&mut trace)?;
        let expected = self.expected_output();
        if machine.output() != expected {
            return Err(WorkloadError::WrongOutput {
                name: self.name(),
                expected,
                actual: machine.output().to_string(),
            });
        }
        let text = pad_text(
            image.text_bytes(),
            self.paper_text_bytes(),
            self.profile(),
            self.seed(),
        );
        Ok(Workload {
            name: self.name(),
            image,
            trace,
            text,
        })
    }
}

/// Appends synthesized library code after the kernel up to
/// `target_bytes` (rounded up to a word; kernels larger than the target
/// are kept whole).
fn pad_text(kernel: &[u8], target_bytes: u32, profile: CodeProfile, seed: u64) -> Vec<u8> {
    let target = (target_bytes as usize).div_ceil(4) * 4;
    let mut text = kernel.to_vec();
    if text.len() < target {
        let filler = generate_text(&profile, target - text.len(), seed);
        text.extend_from_slice(&filler);
    }
    text
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eightq_builds_and_checks() {
        let w = TracedWorkload::Eightq.build().expect("eightq builds");
        assert!(w.dynamic_instructions() > 10_000);
        assert!(w.dynamic_instructions() < 2_000_000);
        assert_eq!(w.text.len(), 4020);
        // Kernel occupies the front of the padded text.
        assert_eq!(&w.text[..w.image.text_bytes().len()], w.image.text_bytes());
    }

    #[test]
    fn traces_stay_inside_kernels() {
        for wl in [TracedWorkload::Eightq, TracedWorkload::Lloop01] {
            let w = wl.build().expect("builds");
            let kernel_end = w.image.text_bytes().len() as u32;
            for (pc, _) in w.trace.iter() {
                assert!(pc < kernel_end, "{}: pc {pc:#x} outside kernel", w.name);
            }
        }
    }

    #[test]
    fn names_are_paper_names() {
        let names: Vec<&str> = TracedWorkload::ALL.iter().map(|w| w.name()).collect();
        assert!(names.contains(&"NASA7"));
        assert!(names.contains(&"espresso"));
        assert_eq!(names.len(), 8);
    }
}
