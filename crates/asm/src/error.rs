use std::error::Error;
use std::fmt;

use ccrp_isa::IsaError;

/// An assembly error with the 1-based source line it occurred on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number in the source text (0 for whole-program errors).
    pub line: usize,
    /// What went wrong.
    pub kind: AsmErrorKind,
}

impl AsmError {
    pub(crate) fn new(line: usize, kind: AsmErrorKind) -> Self {
        Self { line, kind }
    }
}

/// The reason an assembly failed.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AsmErrorKind {
    /// A character that starts no token.
    UnexpectedChar(char),
    /// A string literal with no closing quote.
    UnterminatedString,
    /// A malformed numeric literal.
    BadNumber(String),
    /// Generic parse failure with a human-readable explanation.
    Syntax(String),
    /// An unknown instruction mnemonic or directive.
    UnknownMnemonic(String),
    /// An instruction was given the wrong operands.
    BadOperands {
        /// The mnemonic being assembled.
        mnemonic: String,
        /// What the mnemonic expects.
        expected: &'static str,
    },
    /// A symbol was used but never defined.
    UndefinedSymbol(String),
    /// The same label was defined twice.
    DuplicateLabel(String),
    /// A value did not fit in its instruction field.
    ValueOutOfRange {
        /// Description of the field.
        what: &'static str,
        /// The offending value.
        value: i64,
    },
    /// A branch target too far away for a 16-bit word offset.
    BranchOutOfRange {
        /// Branch instruction address.
        from: u32,
        /// Target address.
        to: u32,
    },
    /// A branch or jump target that is not word aligned.
    MisalignedTarget(u32),
    /// Division by zero inside a constant expression.
    DivideByZero,
    /// An underlying ISA-level error (bad register, field overflow, ...).
    Isa(IsaError),
    /// The two assembler passes disagreed about an instruction's size;
    /// this indicates an assembler bug, surfaced as an error for safety.
    SizeMismatch {
        /// The mnemonic whose expansion changed size.
        mnemonic: String,
        /// Words planned in pass 1.
        planned: usize,
        /// Words emitted in pass 2.
        emitted: usize,
    },
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: ", self.line)?;
        }
        match &self.kind {
            AsmErrorKind::UnexpectedChar(c) => write!(f, "unexpected character `{c}`"),
            AsmErrorKind::UnterminatedString => write!(f, "unterminated string literal"),
            AsmErrorKind::BadNumber(s) => write!(f, "malformed number `{s}`"),
            AsmErrorKind::Syntax(msg) => write!(f, "syntax error: {msg}"),
            AsmErrorKind::UnknownMnemonic(m) => write!(f, "unknown mnemonic or directive `{m}`"),
            AsmErrorKind::BadOperands { mnemonic, expected } => {
                write!(f, "bad operands for `{mnemonic}`: expected {expected}")
            }
            AsmErrorKind::UndefinedSymbol(s) => write!(f, "undefined symbol `{s}`"),
            AsmErrorKind::DuplicateLabel(s) => write!(f, "label `{s}` defined more than once"),
            AsmErrorKind::ValueOutOfRange { what, value } => {
                write!(f, "value {value} out of range for {what}")
            }
            AsmErrorKind::BranchOutOfRange { from, to } => {
                write!(f, "branch from {from:#x} to {to:#x} out of 16-bit range")
            }
            AsmErrorKind::MisalignedTarget(addr) => {
                write!(f, "control-transfer target {addr:#x} is not word aligned")
            }
            AsmErrorKind::DivideByZero => write!(f, "division by zero in constant expression"),
            AsmErrorKind::Isa(e) => write!(f, "{e}"),
            AsmErrorKind::SizeMismatch {
                mnemonic,
                planned,
                emitted,
            } => write!(
                f,
                "internal: `{mnemonic}` planned {planned} words but emitted {emitted}"
            ),
        }
    }
}

impl Error for AsmError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match &self.kind {
            AsmErrorKind::Isa(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line() {
        let err = AsmError::new(7, AsmErrorKind::UndefinedSymbol("loop".into()));
        assert_eq!(err.to_string(), "line 7: undefined symbol `loop`");
    }

    #[test]
    fn whole_program_errors_omit_line() {
        let err = AsmError::new(0, AsmErrorKind::DivideByZero);
        assert!(!err.to_string().contains("line"));
    }

    #[test]
    fn isa_error_is_source() {
        use std::error::Error as _;
        let err = AsmError::new(
            1,
            AsmErrorKind::Isa(IsaError::RegisterOutOfRange { number: 99 }),
        );
        assert!(err.source().is_some());
    }
}
