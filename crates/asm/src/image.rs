use std::collections::BTreeMap;

/// An assembled embedded program: text and data segments plus symbols.
///
/// Matches the paper's system model: a contiguous instruction space
/// (the compressed-code experiments index the Line Address Table by a
/// shifted text address, which requires contiguous text) and a separate
/// data region. Instruction words are stored little-endian, as on the
/// DECstation 3100 the paper's programs came from.
///
/// # Examples
///
/// ```
/// use ccrp_asm::assemble;
///
/// let image = assemble("
///     .text
///     main: addiu $v0, $zero, 10
///           syscall
/// ")?;
/// assert_eq!(image.text_words().count(), 2);
/// assert_eq!(image.symbol("main"), Some(image.text_base()));
/// # Ok::<(), ccrp_asm::AsmError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramImage {
    text_base: u32,
    text: Vec<u8>,
    data_base: u32,
    data: Vec<u8>,
    entry: u32,
    symbols: BTreeMap<String, u32>,
}

impl ProgramImage {
    pub(crate) fn new(
        text_base: u32,
        text: Vec<u8>,
        data_base: u32,
        data: Vec<u8>,
        entry: u32,
        symbols: BTreeMap<String, u32>,
    ) -> Self {
        assert_eq!(text.len() % 4, 0, "text segment must be whole words");
        Self {
            text_base,
            text,
            data_base,
            data,
            entry,
            symbols,
        }
    }

    /// Builds an image directly from instruction words (no assembly),
    /// useful for synthetic code generators.
    pub fn from_words(text_base: u32, words: &[u32]) -> Self {
        let mut text = Vec::with_capacity(words.len() * 4);
        for w in words {
            text.extend_from_slice(&w.to_le_bytes());
        }
        Self {
            text_base,
            text,
            data_base: 0,
            data: Vec::new(),
            entry: text_base,
            symbols: BTreeMap::new(),
        }
    }

    /// First address of the text segment.
    pub fn text_base(&self) -> u32 {
        self.text_base
    }

    /// The raw text segment, little-endian byte order.
    pub fn text_bytes(&self) -> &[u8] {
        &self.text
    }

    /// Size of the text segment in bytes.
    pub fn text_size(&self) -> u32 {
        self.text.len() as u32
    }

    /// First address of the data segment.
    pub fn data_base(&self) -> u32 {
        self.data_base
    }

    /// The raw data segment bytes.
    pub fn data_bytes(&self) -> &[u8] {
        &self.data
    }

    /// The entry point (the `main` symbol if defined, else the text base).
    pub fn entry(&self) -> u32 {
        self.entry
    }

    /// Looks up a label address.
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).copied()
    }

    /// All defined symbols in name order.
    pub fn symbols(&self) -> impl Iterator<Item = (&str, u32)> {
        self.symbols.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Iterates the text segment as instruction words.
    pub fn text_words(&self) -> impl Iterator<Item = u32> + '_ {
        self.text
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
    }

    /// Number of 32-byte cache lines the text segment spans, counting
    /// the partial line at each end. This is the footprint that decides
    /// how many Line Address Table records a compressed build of this
    /// image needs, so program generators can size code to stress
    /// multi-entry / eviction behavior.
    pub fn text_lines(&self) -> u32 {
        if self.text.is_empty() {
            return 0;
        }
        let first = self.text_base / 32;
        let last = (self.text_base + self.text.len() as u32 - 1) / 32;
        last - first + 1
    }

    /// Fetches the instruction word at `addr`.
    ///
    /// Returns `None` when `addr` is outside the text segment or not
    /// word-aligned.
    pub fn word_at(&self, addr: u32) -> Option<u32> {
        if !addr.is_multiple_of(4) || addr < self.text_base {
            return None;
        }
        let off = (addr - self.text_base) as usize;
        let bytes = self.text.get(off..off + 4)?;
        Some(u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_words_roundtrips() {
        let image = ProgramImage::from_words(0x1000, &[0xDEAD_BEEF, 0x0000_000C]);
        assert_eq!(image.text_size(), 8);
        assert_eq!(image.word_at(0x1000), Some(0xDEAD_BEEF));
        assert_eq!(image.word_at(0x1004), Some(0x0000_000C));
        assert_eq!(image.word_at(0x1008), None);
        assert_eq!(image.word_at(0x1001), None);
        assert_eq!(image.word_at(0x0FFC), None);
        let words: Vec<u32> = image.text_words().collect();
        assert_eq!(words, vec![0xDEAD_BEEF, 0x0000_000C]);
    }

    #[test]
    fn little_endian_layout() {
        let image = ProgramImage::from_words(0, &[0x1122_3344]);
        assert_eq!(image.text_bytes(), &[0x44, 0x33, 0x22, 0x11]);
    }

    #[test]
    fn text_lines_counts_partial_lines() {
        assert_eq!(ProgramImage::from_words(0, &[]).text_lines(), 0);
        assert_eq!(ProgramImage::from_words(0, &[1]).text_lines(), 1);
        assert_eq!(ProgramImage::from_words(0, &[0; 8]).text_lines(), 1);
        assert_eq!(ProgramImage::from_words(0, &[0; 9]).text_lines(), 2);
        // A misaligned base straddles one extra line.
        assert_eq!(ProgramImage::from_words(28, &[0; 8]).text_lines(), 2);
    }
}
