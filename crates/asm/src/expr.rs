use std::collections::BTreeMap;

use crate::error::{AsmError, AsmErrorKind};
use crate::token::Token;

/// A constant expression appearing as an instruction or directive operand.
///
/// Symbols are resolved against the final symbol table during pass 2, so
/// forward references assemble correctly.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Num(i64),
    /// Symbol reference (label or `.equ` constant).
    Sym(String),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Unary negation.
    Neg(Box<Expr>),
    /// Bitwise complement.
    Not(Box<Expr>),
    /// `%hi(expr)` — the high 16 bits, adjusted for the signed `lo` part
    /// exactly as MIPS linkers compute it.
    Hi(Box<Expr>),
    /// `%lo(expr)` — the low 16 bits.
    Lo(Box<Expr>),
}

/// Binary operators, in C-like precedence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Truncating division.
    Div,
    /// Left shift (`<<`).
    Shl,
    /// Logical right shift (`>>`).
    Shr,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
}

/// A cursor over a token slice shared by the operand and expression parsers.
#[derive(Debug)]
pub struct Cursor<'a> {
    tokens: &'a [Token],
    pos: usize,
    line: usize,
}

impl<'a> Cursor<'a> {
    /// Creates a cursor at the start of `tokens`, reporting errors at `line`.
    pub fn new(tokens: &'a [Token], line: usize) -> Self {
        Self {
            tokens,
            pos: 0,
            line,
        }
    }

    /// Peeks the next token without consuming it.
    pub fn peek(&self) -> Option<&'a Token> {
        self.tokens.get(self.pos)
    }

    /// Peeks `ahead` tokens past the cursor (0 = same as [`peek`][Self::peek]).
    pub fn peek_at(&self, ahead: usize) -> Option<&'a Token> {
        self.tokens.get(self.pos + ahead)
    }

    /// Number of tokens consumed so far.
    pub fn consumed(&self) -> usize {
        self.pos
    }

    /// Consumes and returns the next token.
    pub fn next(&mut self) -> Option<&'a Token> {
        let tok = self.tokens.get(self.pos);
        if tok.is_some() {
            self.pos += 1;
        }
        tok
    }

    /// True when all tokens are consumed.
    pub fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// Consumes the next token if it equals `punct`.
    pub fn eat_punct(&mut self, punct: char) -> bool {
        if self.peek() == Some(&Token::Punct(punct)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Requires `punct` as the next token.
    pub fn expect_punct(&mut self, punct: char) -> Result<(), AsmError> {
        if self.eat_punct(punct) {
            Ok(())
        } else {
            Err(self.syntax(format!("expected `{punct}`")))
        }
    }

    /// Builds a syntax error at this cursor's line.
    pub fn syntax(&self, msg: impl Into<String>) -> AsmError {
        AsmError::new(self.line, AsmErrorKind::Syntax(msg.into()))
    }
}

/// Parses an expression at C-like precedence from `cur`.
///
/// Grammar (loosest to tightest): `|` `^` `&`, shifts, `+ -`, `* /`,
/// unary `- ~ %hi %lo`, atoms (number, symbol, parenthesized).
///
/// # Errors
///
/// Returns a syntax error if no valid expression starts at the cursor.
pub fn parse_expr(cur: &mut Cursor<'_>) -> Result<Expr, AsmError> {
    parse_or(cur)
}

fn parse_or(cur: &mut Cursor<'_>) -> Result<Expr, AsmError> {
    let mut lhs = parse_xor(cur)?;
    while cur.eat_punct('|') {
        let rhs = parse_xor(cur)?;
        lhs = Expr::Bin(BinOp::Or, Box::new(lhs), Box::new(rhs));
    }
    Ok(lhs)
}

fn parse_xor(cur: &mut Cursor<'_>) -> Result<Expr, AsmError> {
    let mut lhs = parse_and(cur)?;
    while cur.eat_punct('^') {
        let rhs = parse_and(cur)?;
        lhs = Expr::Bin(BinOp::Xor, Box::new(lhs), Box::new(rhs));
    }
    Ok(lhs)
}

fn parse_and(cur: &mut Cursor<'_>) -> Result<Expr, AsmError> {
    let mut lhs = parse_shift(cur)?;
    while cur.eat_punct('&') {
        let rhs = parse_shift(cur)?;
        lhs = Expr::Bin(BinOp::And, Box::new(lhs), Box::new(rhs));
    }
    Ok(lhs)
}

fn parse_shift(cur: &mut Cursor<'_>) -> Result<Expr, AsmError> {
    let mut lhs = parse_additive(cur)?;
    loop {
        if cur.peek() == Some(&Token::Punct('<')) {
            let save = cur.pos;
            cur.next();
            if !cur.eat_punct('<') {
                cur.pos = save;
                break;
            }
            let rhs = parse_additive(cur)?;
            lhs = Expr::Bin(BinOp::Shl, Box::new(lhs), Box::new(rhs));
        } else if cur.peek() == Some(&Token::Punct('>')) {
            let save = cur.pos;
            cur.next();
            if !cur.eat_punct('>') {
                cur.pos = save;
                break;
            }
            let rhs = parse_additive(cur)?;
            lhs = Expr::Bin(BinOp::Shr, Box::new(lhs), Box::new(rhs));
        } else {
            break;
        }
    }
    Ok(lhs)
}

fn parse_additive(cur: &mut Cursor<'_>) -> Result<Expr, AsmError> {
    let mut lhs = parse_multiplicative(cur)?;
    loop {
        if cur.eat_punct('+') {
            let rhs = parse_multiplicative(cur)?;
            lhs = Expr::Bin(BinOp::Add, Box::new(lhs), Box::new(rhs));
        } else if cur.eat_punct('-') {
            let rhs = parse_multiplicative(cur)?;
            lhs = Expr::Bin(BinOp::Sub, Box::new(lhs), Box::new(rhs));
        } else {
            break;
        }
    }
    Ok(lhs)
}

fn parse_multiplicative(cur: &mut Cursor<'_>) -> Result<Expr, AsmError> {
    let mut lhs = parse_unary(cur)?;
    loop {
        if cur.eat_punct('*') {
            let rhs = parse_unary(cur)?;
            lhs = Expr::Bin(BinOp::Mul, Box::new(lhs), Box::new(rhs));
        } else if cur.eat_punct('/') {
            let rhs = parse_unary(cur)?;
            lhs = Expr::Bin(BinOp::Div, Box::new(lhs), Box::new(rhs));
        } else {
            break;
        }
    }
    Ok(lhs)
}

fn parse_unary(cur: &mut Cursor<'_>) -> Result<Expr, AsmError> {
    if cur.eat_punct('-') {
        return Ok(Expr::Neg(Box::new(parse_unary(cur)?)));
    }
    if cur.eat_punct('~') {
        return Ok(Expr::Not(Box::new(parse_unary(cur)?)));
    }
    if cur.eat_punct('+') {
        return parse_unary(cur);
    }
    match cur.next() {
        Some(Token::Num(n)) => Ok(Expr::Num(*n)),
        Some(Token::Ident(name)) => Ok(Expr::Sym(name.clone())),
        Some(Token::HiOp) => {
            cur.expect_punct('(')?;
            let inner = parse_expr(cur)?;
            cur.expect_punct(')')?;
            Ok(Expr::Hi(Box::new(inner)))
        }
        Some(Token::LoOp) => {
            cur.expect_punct('(')?;
            let inner = parse_expr(cur)?;
            cur.expect_punct(')')?;
            Ok(Expr::Lo(Box::new(inner)))
        }
        Some(Token::Punct('(')) => {
            let inner = parse_expr(cur)?;
            cur.expect_punct(')')?;
            Ok(inner)
        }
        other => Err(cur.syntax(format!("expected expression, found {other:?}"))),
    }
}

impl Expr {
    /// Evaluates the expression against a symbol table.
    ///
    /// # Errors
    ///
    /// [`AsmErrorKind::UndefinedSymbol`] for an unknown name or
    /// [`AsmErrorKind::DivideByZero`] for a zero divisor; errors carry
    /// `line` for reporting.
    pub fn eval(&self, symbols: &BTreeMap<String, u32>, line: usize) -> Result<i64, AsmError> {
        match self {
            Expr::Num(n) => Ok(*n),
            Expr::Sym(name) => symbols
                .get(name)
                .map(|&v| i64::from(v))
                .ok_or_else(|| AsmError::new(line, AsmErrorKind::UndefinedSymbol(name.clone()))),
            Expr::Neg(e) => Ok(e.eval(symbols, line)?.wrapping_neg()),
            Expr::Not(e) => Ok(!e.eval(symbols, line)?),
            Expr::Hi(e) => {
                let v = e.eval(symbols, line)? as u32;
                // Adjust for the sign-extension of the paired %lo addend.
                Ok(i64::from((v.wrapping_add(0x8000)) >> 16))
            }
            Expr::Lo(e) => {
                let v = e.eval(symbols, line)? as u32;
                Ok(i64::from(v as u16 as i16))
            }
            Expr::Bin(op, lhs, rhs) => {
                let l = lhs.eval(symbols, line)?;
                let r = rhs.eval(symbols, line)?;
                match op {
                    BinOp::Add => Ok(l.wrapping_add(r)),
                    BinOp::Sub => Ok(l.wrapping_sub(r)),
                    BinOp::Mul => Ok(l.wrapping_mul(r)),
                    BinOp::Div => {
                        if r == 0 {
                            Err(AsmError::new(line, AsmErrorKind::DivideByZero))
                        } else {
                            Ok(l.wrapping_div(r))
                        }
                    }
                    BinOp::Shl => Ok(l.wrapping_shl(r as u32)),
                    BinOp::Shr => Ok(((l as u64).wrapping_shr(r as u32)) as i64),
                    BinOp::And => Ok(l & r),
                    BinOp::Or => Ok(l | r),
                    BinOp::Xor => Ok(l ^ r),
                }
            }
        }
    }

    /// True when the expression references no symbols (pure literal).
    pub fn is_constant(&self) -> bool {
        match self {
            Expr::Num(_) => true,
            Expr::Sym(_) => false,
            Expr::Neg(e) | Expr::Not(e) | Expr::Hi(e) | Expr::Lo(e) => e.is_constant(),
            Expr::Bin(_, l, r) => l.is_constant() && r.is_constant(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::tokenize_line;

    fn eval_str(src: &str, symbols: &[(&str, u32)]) -> Result<i64, AsmError> {
        let toks = tokenize_line(src, 1).unwrap();
        let mut cur = Cursor::new(&toks, 1);
        let expr = parse_expr(&mut cur)?;
        assert!(cur.at_end(), "trailing tokens in {src}");
        let table: BTreeMap<String, u32> =
            symbols.iter().map(|&(k, v)| (k.to_string(), v)).collect();
        expr.eval(&table, 1)
    }

    #[test]
    fn precedence() {
        assert_eq!(eval_str("2+3*4", &[]).unwrap(), 14);
        assert_eq!(eval_str("(2+3)*4", &[]).unwrap(), 20);
        assert_eq!(eval_str("1<<4|1", &[]).unwrap(), 17);
        assert_eq!(eval_str("255 & 0x0F", &[]).unwrap(), 15);
        assert_eq!(eval_str("6/2-1", &[]).unwrap(), 2);
        assert_eq!(eval_str("0x10 >> 2", &[]).unwrap(), 4);
    }

    #[test]
    fn unary() {
        assert_eq!(eval_str("-5", &[]).unwrap(), -5);
        assert_eq!(eval_str("~0", &[]).unwrap(), -1);
        assert_eq!(eval_str("--3", &[]).unwrap(), 3);
    }

    #[test]
    fn symbols_resolve() {
        assert_eq!(eval_str("base+8", &[("base", 0x100)]).unwrap(), 0x108);
        assert!(matches!(
            eval_str("missing", &[]).unwrap_err().kind,
            AsmErrorKind::UndefinedSymbol(_)
        ));
    }

    #[test]
    fn hi_lo_pair_reconstructs_address() {
        // The defining property: (hi << 16) + sign_extend(lo) == addr.
        for addr in [0u32, 0x1234_5678, 0x0001_8000, 0x00FF_FFFC, 0x7FFF_F000] {
            let hi = eval_str("%hi(a)", &[("a", addr)]).unwrap();
            let lo = eval_str("%lo(a)", &[("a", addr)]).unwrap();
            let rebuilt = ((hi as u32) << 16).wrapping_add(lo as u32);
            assert_eq!(rebuilt, addr, "addr {addr:#x}");
        }
    }

    #[test]
    fn divide_by_zero_is_caught() {
        assert!(matches!(
            eval_str("1/0", &[]).unwrap_err().kind,
            AsmErrorKind::DivideByZero
        ));
    }

    #[test]
    fn constant_detection() {
        let toks = tokenize_line("3*(4+1)", 1).unwrap();
        let expr = parse_expr(&mut Cursor::new(&toks, 1)).unwrap();
        assert!(expr.is_constant());
        let toks = tokenize_line("label+4", 1).unwrap();
        let expr = parse_expr(&mut Cursor::new(&toks, 1)).unwrap();
        assert!(!expr.is_constant());
    }
}
