//! A two-pass MIPS R2000 assembler.
//!
//! The CCRP reproduction needs realistic R2000 object code: the paper
//! compresses DECstation 3100 binaries and replays their traces. This
//! crate assembles hand-written workload kernels (and the output of the
//! synthetic code generator) into [`ProgramImage`]s that the emulator
//! executes and the compression stack compresses.
//!
//! Supported surface:
//!
//! * the full [`ccrp-isa`](ccrp_isa) instruction set, in standard syntax;
//! * the classic pseudo instructions: `nop`, `move`, `li`, `la`, `b`,
//!   `bal`, `beqz`/`bnez`, `blt`/`bgt`/`ble`/`bge` (+`u` forms), `not`,
//!   `neg`/`negu`, `mul`, 3-operand `div`/`divu`, `rem`/`remu`,
//!   `l.s`/`s.s`/`l.d`/`s.d`, and absolute-address loads (`lw $t0, sym`);
//! * directives: `.text`, `.data`, `.word`, `.half`, `.byte`, `.float`,
//!   `.double`, `.ascii`, `.asciiz`, `.space`, `.align`, `.equ`,
//!   `.globl` (ignored), `.set reorder|noreorder`;
//! * `%hi(...)`/`%lo(...)` relocation operators;
//! * branch delay slots: in the default `reorder` mode a `nop` is placed
//!   after every control transfer; `.set noreorder` regions emit exactly
//!   what is written so kernels can fill their own delay slots.
//!
//! # Examples
//!
//! ```
//! use ccrp_asm::assemble;
//!
//! let image = assemble(r"
//!     .data
//! value:  .word 41
//!     .text
//! main:   la   $t0, value
//!         lw   $t1, 0($t0)
//!         addiu $t1, $t1, 1      # 42
//!         jr   $ra
//! ")?;
//! assert_eq!(image.symbol("value"), Some(image.data_base()));
//! # Ok::<(), ccrp_asm::AsmError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod assembler;
mod error;
mod expr;
mod image;
mod instrs;
mod parser;
mod token;

pub use assembler::{assemble, assemble_with, AssembleOptions, DelaySlotMode};
pub use error::{AsmError, AsmErrorKind};
pub use expr::{BinOp, Expr};
pub use image::ProgramImage;
pub use parser::{DirArg, Item, Operand};

#[cfg(test)]
mod tests {
    use super::*;
    use ccrp_isa::{decode, Instruction, Reg};

    fn words(src: &str) -> Vec<u32> {
        assemble(src).expect("assembles").text_words().collect()
    }

    #[test]
    fn assembles_minimal_program() {
        let w = words("main: jr $ra");
        // reorder mode inserts the delay-slot nop
        assert_eq!(w, vec![0x03E0_0008, 0x0000_0000]);
    }

    #[test]
    fn labels_resolve_forward_and_backward() {
        let image = assemble(
            "
            .text
            start:  b end
            mid:    nop
            end:    b mid
            ",
        )
        .unwrap();
        let w: Vec<u32> = image.text_words().collect();
        // start: beq $0,$0,end  -> end at word 3, branch at word 0: offset = 3-1 = 2
        let b0 = decode(w[0]).unwrap();
        assert!(matches!(b0, Instruction::Branch { offset: 2, .. }), "{b0}");
        // end: b mid -> mid at word 2, branch at word 3: offset = 2-4 = -2
        let b3 = decode(w[3]).unwrap();
        assert!(matches!(b3, Instruction::Branch { offset: -2, .. }), "{b3}");
    }

    #[test]
    fn li_forms() {
        assert_eq!(words("li $t0, 5").len(), 1);
        assert_eq!(words("li $t0, -5").len(), 1);
        assert_eq!(words("li $t0, 0xFFFF").len(), 1);
        assert_eq!(words("li $t0, 0x10000").len(), 2);
        assert_eq!(words("li $t0, -40000").len(), 2);
        // wide value reconstructs
        let w = words("li $t0, 0x12345678");
        assert_eq!(decode(w[0]).unwrap().to_string(), "lui $t0, 0x1234");
        assert_eq!(decode(w[1]).unwrap().to_string(), "ori $t0, $t0, 0x5678");
    }

    #[test]
    fn la_reconstructs_address() {
        let image = assemble(
            "
            .data
            buf: .space 0x9000
            var: .word 7
            .text
            main: la $t0, var
            ",
        )
        .unwrap();
        let var = image.symbol("var").unwrap();
        let w: Vec<u32> = image.text_words().collect();
        let (lui, addiu) = (decode(w[0]).unwrap(), decode(w[1]).unwrap());
        let hi = match lui {
            Instruction::Lui { imm, .. } => u32::from(imm),
            other => panic!("{other}"),
        };
        let lo = match addiu {
            Instruction::IAlu { imm, .. } => i64::from(imm as i16),
            other => panic!("{other}"),
        };
        assert_eq!(((hi << 16) as i64 + lo) as u32, var);
    }

    #[test]
    fn noreorder_suppresses_nops() {
        let w = words(
            "
            .set noreorder
            main: jr $ra
                  addiu $sp, $sp, 8   # delay slot
            ",
        );
        assert_eq!(w.len(), 2);
        assert_ne!(w[1], 0);
    }

    #[test]
    fn pseudo_branches_expand() {
        let image = assemble(
            "
            main:   blt $t0, $t1, target
                    nop
            target: nop
            ",
        )
        .unwrap();
        let w: Vec<u32> = image.text_words().collect();
        // slt $at,$t0,$t1 ; bne $at,$zero,+off ; nop(auto) ; nop ; nop
        assert_eq!(w.len(), 5);
        match decode(w[0]).unwrap() {
            Instruction::RAlu { rd, .. } => assert_eq!(rd, Reg::AT),
            other => panic!("{other}"),
        }
        match decode(w[1]).unwrap() {
            // target is word 4, branch at word 1: offset = 4 - 2 = 2
            Instruction::Branch { offset, .. } => assert_eq!(offset, 2),
            other => panic!("{other}"),
        }
    }

    #[test]
    fn data_directives_layout() {
        let image = assemble(
            r#"
            .data
            a: .byte 1, 2
               .align 2
            b: .word 0xCAFE
            c: .asciiz "ok"
               .align 3
            d: .double 2.0
            "#,
        )
        .unwrap();
        let base = image.data_base();
        assert_eq!(image.symbol("a"), Some(base));
        assert_eq!(image.symbol("b"), Some(base + 4));
        assert_eq!(image.symbol("c"), Some(base + 8));
        assert_eq!(image.symbol("d"), Some(base + 16));
        let data = image.data_bytes();
        assert_eq!(&data[0..2], &[1, 2]);
        assert_eq!(&data[4..8], &0xCAFEu32.to_le_bytes());
        assert_eq!(&data[8..11], b"ok\0");
        assert_eq!(&data[16..24], &2.0f64.to_le_bytes());
    }

    #[test]
    fn jump_table_in_text() {
        let image = assemble(
            "
            main:   jr $ra
            table:  .word main, table
            ",
        )
        .unwrap();
        let main = image.symbol("main").unwrap();
        let table = image.symbol("table").unwrap();
        assert_eq!(image.word_at(table), Some(main));
        assert_eq!(image.word_at(table + 4), Some(table));
    }

    #[test]
    fn errors_are_reported_with_lines() {
        let err = assemble("\n\n bogus $t0").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(matches!(err.kind, AsmErrorKind::UnknownMnemonic(_)));

        let err = assemble("x: nop\nx: nop").unwrap_err();
        assert!(matches!(err.kind, AsmErrorKind::DuplicateLabel(_)));

        let err = assemble("lw $t0, 99999($sp)").unwrap_err();
        assert!(matches!(err.kind, AsmErrorKind::ValueOutOfRange { .. }));

        let err = assemble("b nowhere").unwrap_err();
        assert!(matches!(err.kind, AsmErrorKind::UndefinedSymbol(_)));
    }

    #[test]
    fn equ_constants() {
        // A symbolic `li` takes the two-instruction `la` form; the loaded
        // value must still be exactly SIZE/4.
        let image = assemble(
            "
            .equ SIZE, 64
            main: li $t0, SIZE/4
            ",
        )
        .unwrap();
        let w: Vec<u32> = image.text_words().collect();
        assert_eq!(w.len(), 2);
        let hi = match decode(w[0]).unwrap() {
            Instruction::Lui { imm, .. } => u32::from(imm),
            other => panic!("{other}"),
        };
        let lo = match decode(w[1]).unwrap() {
            Instruction::IAlu { imm, .. } => i64::from(imm as i16),
            other => panic!("{other}"),
        };
        assert_eq!(((hi << 16) as i64 + lo) as u32, 16);

        // A literal `li` still picks the single-instruction form.
        let w = words("main: li $t0, 64/4");
        assert_eq!(w.len(), 1);
        assert_eq!(decode(w[0]).unwrap().to_string(), "ori $t0, $zero, 0x10");
    }

    #[test]
    fn operand_count_errors_surface_at_assembly() {
        assert!(assemble("nop nop").is_err());
        assert!(assemble("add $t0, $t1").is_err());
    }

    #[test]
    fn double_load_pseudo() {
        let w = words(".set noreorder\n l.d $f4, 8($sp)");
        assert_eq!(w.len(), 2);
        assert_eq!(decode(w[0]).unwrap().to_string(), "lwc1 $f4, 8($sp)");
        assert_eq!(decode(w[1]).unwrap().to_string(), "lwc1 $f5, 12($sp)");
    }

    #[test]
    fn entry_defaults() {
        let with_main = assemble("nop\nmain: nop").unwrap();
        assert_eq!(with_main.entry(), with_main.text_base() + 4);
        let without = assemble("nop").unwrap();
        assert_eq!(without.entry(), without.text_base());
    }

    #[test]
    fn disassembly_reassembles() {
        // Display output of decoded instructions must assemble back to the
        // identical words (the branch-offset-as-constant convention).
        let image = assemble(
            "
            .set noreorder
            main:
                addiu $sp, $sp, -32
                sw    $ra, 28($sp)
                li    $t0, 100
            loop:
                addiu $t0, $t0, -1
                bne   $t0, $zero, loop
                nop
                lw    $ra, 28($sp)
                jr    $ra
                addiu $sp, $sp, 32
            ",
        )
        .unwrap();
        let mut src = String::from(".set noreorder\n");
        for w in image.text_words() {
            src.push_str(&decode(w).unwrap().to_string());
            src.push('\n');
        }
        let again = assemble(&src).unwrap();
        let a: Vec<u32> = image.text_words().collect();
        let b: Vec<u32> = again.text_words().collect();
        assert_eq!(a, b);
    }
}
