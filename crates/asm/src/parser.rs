use ccrp_isa::{FpReg, Reg};

use crate::error::AsmError;
use crate::expr::{parse_expr, Cursor, Expr};
use crate::token::{tokenize_line, Token};

/// One operand of an instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    /// A general-purpose register.
    Reg(Reg),
    /// A floating-point register.
    Fp(FpReg),
    /// A constant expression (immediate, branch target, symbol).
    Expr(Expr),
    /// A memory operand `offset(base)`.
    Mem {
        /// The signed displacement expression.
        offset: Expr,
        /// The base register.
        base: Reg,
    },
}

/// One argument of a directive.
#[derive(Debug, Clone, PartialEq)]
pub enum DirArg {
    /// A constant expression.
    Expr(Expr),
    /// A string literal.
    Str(String),
    /// A floating-point literal.
    Float(f64),
    /// A bare identifier (e.g. the mode name in `.set noreorder`).
    Ident(String),
}

/// A parsed source item. One source line can produce several items
/// (labels followed by an instruction, for example).
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// A label definition (`name:`).
    Label(String),
    /// An instruction or pseudo-instruction.
    Instr {
        /// Lower-cased mnemonic.
        mnemonic: String,
        /// Parsed operands in source order.
        operands: Vec<Operand>,
    },
    /// An assembler directive (leading `.` stripped, lower-cased).
    Directive {
        /// Directive name, e.g. `word`.
        name: String,
        /// Directive arguments.
        args: Vec<DirArg>,
    },
}

/// Parses one source line into items (possibly empty for blank/comment
/// lines).
///
/// # Errors
///
/// Propagates tokenizer errors and reports malformed operands, all tagged
/// with `line_no`.
pub fn parse_line(line: &str, line_no: usize) -> Result<Vec<Item>, AsmError> {
    let tokens = tokenize_line(line, line_no)?;
    let mut cur = Cursor::new(&tokens, line_no);
    let mut items = Vec::new();

    // Leading labels: `name:` possibly several on one line.
    loop {
        let is_label = matches!(
            (cur.peek(), tokens.get(pos_of(&cur) + 1)),
            (Some(Token::Ident(_)), Some(Token::Punct(':')))
        );
        if !is_label {
            break;
        }
        if let Some(Token::Ident(name)) = cur.next() {
            cur.next(); // the ':'
            items.push(Item::Label(name.clone()));
        }
    }

    match cur.peek() {
        None => Ok(items),
        Some(Token::Ident(name)) if name.starts_with('.') => {
            let name = name[1..].to_ascii_lowercase();
            cur.next();
            let args = parse_dir_args(&mut cur)?;
            items.push(Item::Directive { name, args });
            expect_end(&cur)?;
            Ok(items)
        }
        Some(Token::Ident(_)) => {
            let mnemonic = match cur.next() {
                Some(Token::Ident(name)) => name.to_ascii_lowercase(),
                _ => unreachable!("peeked an identifier"),
            };
            let operands = parse_operands(&mut cur)?;
            items.push(Item::Instr { mnemonic, operands });
            expect_end(&cur)?;
            Ok(items)
        }
        Some(other) => Err(cur.syntax(format!(
            "expected instruction or directive, found {other:?}"
        ))),
    }
}

// Cursor does not expose its position publicly; recover it by pointer
// arithmetic over the token slice for the two-token label lookahead.
fn pos_of(cur: &Cursor<'_>) -> usize {
    cur.consumed()
}

fn expect_end(cur: &Cursor<'_>) -> Result<(), AsmError> {
    if cur.at_end() {
        Ok(())
    } else {
        Err(cur.syntax("trailing tokens after statement"))
    }
}

fn parse_operands(cur: &mut Cursor<'_>) -> Result<Vec<Operand>, AsmError> {
    let mut ops = Vec::new();
    if cur.at_end() {
        return Ok(ops);
    }
    loop {
        ops.push(parse_operand(cur)?);
        if !cur.eat_punct(',') {
            break;
        }
    }
    Ok(ops)
}

fn parse_operand(cur: &mut Cursor<'_>) -> Result<Operand, AsmError> {
    match cur.peek() {
        Some(Token::Reg(r)) => {
            let r = *r;
            cur.next();
            Ok(Operand::Reg(r))
        }
        Some(Token::Fp(f)) => {
            let f = *f;
            cur.next();
            Ok(Operand::Fp(f))
        }
        Some(Token::Punct('(')) => {
            // `(reg)` is a memory operand with zero offset; `(expr...` is a
            // parenthesized expression. Disambiguate by the token after '('.
            if let Some(Token::Reg(_)) = cur.peek_at(1) {
                cur.next();
                let base = match cur.next() {
                    Some(Token::Reg(r)) => *r,
                    _ => unreachable!("peeked a register"),
                };
                cur.expect_punct(')')?;
                return Ok(Operand::Mem {
                    offset: Expr::Num(0),
                    base,
                });
            }
            let expr = parse_expr(cur)?;
            finish_expr_operand(cur, expr)
        }
        _ => {
            let expr = parse_expr(cur)?;
            finish_expr_operand(cur, expr)
        }
    }
}

fn finish_expr_operand(cur: &mut Cursor<'_>, expr: Expr) -> Result<Operand, AsmError> {
    if cur.eat_punct('(') {
        let base = match cur.next() {
            Some(Token::Reg(r)) => *r,
            other => return Err(cur.syntax(format!("expected base register, found {other:?}"))),
        };
        cur.expect_punct(')')?;
        Ok(Operand::Mem { offset: expr, base })
    } else {
        Ok(Operand::Expr(expr))
    }
}

fn parse_dir_args(cur: &mut Cursor<'_>) -> Result<Vec<DirArg>, AsmError> {
    let mut args = Vec::new();
    if cur.at_end() {
        return Ok(args);
    }
    loop {
        let arg = match cur.peek() {
            Some(Token::Str(s)) => {
                let s = s.clone();
                cur.next();
                DirArg::Str(s)
            }
            Some(Token::Float(v)) => {
                let v = *v;
                cur.next();
                DirArg::Float(v)
            }
            Some(Token::Punct('-')) if matches!(cur.peek_at(1), Some(Token::Float(_))) => {
                cur.next();
                let v = match cur.next() {
                    Some(Token::Float(v)) => *v,
                    _ => unreachable!("peeked a float"),
                };
                DirArg::Float(-v)
            }
            Some(Token::Ident(name)) if !looks_like_expression(cur) => {
                let name = name.clone();
                cur.next();
                DirArg::Ident(name)
            }
            _ => DirArg::Expr(parse_expr(cur)?),
        };
        args.push(arg);
        if !cur.eat_punct(',') {
            break;
        }
    }
    Ok(args)
}

/// An identifier followed by an arithmetic operator is an expression
/// (`.word table + 4`); a bare identifier or one followed by `,` is a name
/// argument (`.set noreorder`, `.globl main`). Symbol references in data
/// directives still work because `Ident` args are converted to symbol
/// expressions by the assembler when the directive expects values.
fn looks_like_expression(cur: &Cursor<'_>) -> bool {
    matches!(
        cur.peek_at(1),
        Some(Token::Punct('+'))
            | Some(Token::Punct('-'))
            | Some(Token::Punct('*'))
            | Some(Token::Punct('/'))
            | Some(Token::Punct('<'))
            | Some(Token::Punct('>'))
            | Some(Token::Punct('&'))
            | Some(Token::Punct('|'))
            | Some(Token::Punct('^'))
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_label_and_instruction() {
        let items = parse_line("loop: addiu $t0, $t0, -1", 1).unwrap();
        assert_eq!(items.len(), 2);
        assert_eq!(items[0], Item::Label("loop".into()));
        match &items[1] {
            Item::Instr { mnemonic, operands } => {
                assert_eq!(mnemonic, "addiu");
                assert_eq!(operands.len(), 3);
                assert_eq!(operands[0], Operand::Reg(Reg::T0));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_memory_operands() {
        let items = parse_line("lw $ra, 20($sp)", 1).unwrap();
        match &items[0] {
            Item::Instr { operands, .. } => {
                assert!(matches!(
                    &operands[1],
                    Operand::Mem { base, .. } if *base == Reg::SP
                ));
            }
            other => panic!("{other:?}"),
        }
        // Zero-offset shorthand.
        let items = parse_line("lw $t0, ($a0)", 1).unwrap();
        match &items[0] {
            Item::Instr { operands, .. } => {
                assert_eq!(
                    operands[1],
                    Operand::Mem {
                        offset: Expr::Num(0),
                        base: Reg::A0
                    }
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_directives() {
        let items = parse_line(".word 1, 2, table+8", 1).unwrap();
        match &items[0] {
            Item::Directive { name, args } => {
                assert_eq!(name, "word");
                assert_eq!(args.len(), 3);
                assert!(matches!(&args[2], DirArg::Expr(_)));
            }
            other => panic!("{other:?}"),
        }
        let items = parse_line(".set noreorder", 1).unwrap();
        match &items[0] {
            Item::Directive { name, args } => {
                assert_eq!(name, "set");
                assert_eq!(args[0], DirArg::Ident("noreorder".into()));
            }
            other => panic!("{other:?}"),
        }
        let items = parse_line(".double 1.5, -2.25", 1).unwrap();
        match &items[0] {
            Item::Directive { args, .. } => {
                assert_eq!(args[0], DirArg::Float(1.5));
                assert_eq!(args[1], DirArg::Float(-2.25));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn empty_and_comment_lines() {
        assert!(parse_line("", 1).unwrap().is_empty());
        assert!(parse_line("   # nothing", 1).unwrap().is_empty());
    }

    #[test]
    fn bare_label_line() {
        let items = parse_line("end:", 1).unwrap();
        assert_eq!(items, vec![Item::Label("end".into())]);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_line("lw $t0, 4($sp) $t1", 1).is_err());
        assert!(parse_line("add $t0, $t1 extra", 1).is_err());
        assert!(parse_line("1 + 2", 1).is_err());
    }

    #[test]
    fn fp_operands() {
        let items = parse_line("add.d $f4, $f2, $f0", 1).unwrap();
        match &items[0] {
            Item::Instr { mnemonic, operands } => {
                assert_eq!(mnemonic, "add.d");
                assert!(matches!(operands[0], Operand::Fp(_)));
            }
            other => panic!("{other:?}"),
        }
    }
}
