//! Mnemonic-level encoding: real R2000 instructions and the pseudo
//! instructions 1992-era MIPS assemblers accepted (`li`, `la`, `move`,
//! compound branches, `mul`, `l.d`, ...).

use std::collections::BTreeMap;

use ccrp_isa::{
    AluOp, BranchOp, BranchZOp, Cp1MoveOp, FpCond, FpFmt, FpOp, FpReg, FpUnaryOp, HiLoOp, IAluOp,
    Instruction, MemOp, MultDivOp, Reg, ShiftOp,
};

use crate::error::{AsmError, AsmErrorKind};
use crate::expr::Expr;
use crate::parser::Operand;

/// Operand accessor with uniform error reporting.
struct Ops<'a> {
    mnemonic: &'a str,
    ops: &'a [Operand],
    line: usize,
}

impl<'a> Ops<'a> {
    fn bad(&self, expected: &'static str) -> AsmError {
        AsmError::new(
            self.line,
            AsmErrorKind::BadOperands {
                mnemonic: self.mnemonic.to_string(),
                expected,
            },
        )
    }

    fn count(&self, n: usize, expected: &'static str) -> Result<(), AsmError> {
        if self.ops.len() == n {
            Ok(())
        } else {
            Err(self.bad(expected))
        }
    }

    fn reg(&self, i: usize, expected: &'static str) -> Result<Reg, AsmError> {
        match self.ops.get(i) {
            Some(Operand::Reg(r)) => Ok(*r),
            _ => Err(self.bad(expected)),
        }
    }

    fn fp(&self, i: usize, expected: &'static str) -> Result<FpReg, AsmError> {
        match self.ops.get(i) {
            Some(Operand::Fp(f)) => Ok(*f),
            _ => Err(self.bad(expected)),
        }
    }

    fn expr(&self, i: usize, expected: &'static str) -> Result<&'a Expr, AsmError> {
        match self.ops.get(i) {
            Some(Operand::Expr(e)) => Ok(e),
            _ => Err(self.bad(expected)),
        }
    }

    fn mem(&self, i: usize, expected: &'static str) -> Result<(&'a Expr, Reg), AsmError> {
        match self.ops.get(i) {
            Some(Operand::Mem { offset, base }) => Ok((offset, *base)),
            _ => Err(self.bad(expected)),
        }
    }
}

fn eval_range(
    expr: &Expr,
    symbols: &BTreeMap<String, u32>,
    line: usize,
    lo: i64,
    hi: i64,
    what: &'static str,
) -> Result<i64, AsmError> {
    let v = expr.eval(symbols, line)?;
    if v < lo || v > hi {
        return Err(AsmError::new(
            line,
            AsmErrorKind::ValueOutOfRange { what, value: v },
        ));
    }
    Ok(v)
}

fn eval_i16(
    expr: &Expr,
    symbols: &BTreeMap<String, u32>,
    line: usize,
    what: &'static str,
) -> Result<i16, AsmError> {
    Ok(eval_range(expr, symbols, line, -32768, 32767, what)? as i16)
}

fn eval_u16(
    expr: &Expr,
    symbols: &BTreeMap<String, u32>,
    line: usize,
    what: &'static str,
) -> Result<u16, AsmError> {
    Ok(eval_range(expr, symbols, line, 0, 0xFFFF, what)? as u16)
}

/// Computes a 16-bit branch word offset.
///
/// Convention: a symbol-bearing expression is an absolute target address;
/// a pure constant is the literal word offset (matching the
/// disassembler's output, so disassembly re-assembles bit-identically).
fn branch_offset(
    expr: &Expr,
    branch_addr: u32,
    symbols: &BTreeMap<String, u32>,
    line: usize,
) -> Result<i16, AsmError> {
    if expr.is_constant() {
        return eval_i16(expr, symbols, line, "branch offset");
    }
    let target = expr.eval(symbols, line)? as u32;
    if !target.is_multiple_of(4) {
        return Err(AsmError::new(line, AsmErrorKind::MisalignedTarget(target)));
    }
    let diff = i64::from(target) - i64::from(branch_addr) - 4;
    let words = diff / 4;
    if diff % 4 != 0 || !(-32768..=32767).contains(&words) {
        return Err(AsmError::new(
            line,
            AsmErrorKind::BranchOutOfRange {
                from: branch_addr,
                to: target,
            },
        ));
    }
    Ok(words as i16)
}

fn jump_target(expr: &Expr, symbols: &BTreeMap<String, u32>, line: usize) -> Result<u32, AsmError> {
    let target = expr.eval(symbols, line)? as u32;
    if !target.is_multiple_of(4) {
        return Err(AsmError::new(line, AsmErrorKind::MisalignedTarget(target)));
    }
    let field = target >> 2;
    if field >= (1 << 26) {
        return Err(AsmError::new(
            line,
            AsmErrorKind::ValueOutOfRange {
                what: "26-bit jump target",
                value: i64::from(target),
            },
        ));
    }
    Ok(field)
}

fn lookup_alu(name: &str) -> Option<AluOp> {
    AluOp::ALL.iter().copied().find(|op| op.mnemonic() == name)
}

fn lookup_ialu(name: &str) -> Option<IAluOp> {
    IAluOp::ALL.iter().copied().find(|op| op.mnemonic() == name)
}

fn lookup_mem(name: &str) -> Option<MemOp> {
    MemOp::ALL.iter().copied().find(|op| op.mnemonic() == name)
}

fn lookup_shift_imm(name: &str) -> Option<ShiftOp> {
    ShiftOp::ALL
        .iter()
        .copied()
        .find(|op| op.mnemonic_imm() == name)
}

fn lookup_shift_var(name: &str) -> Option<ShiftOp> {
    ShiftOp::ALL
        .iter()
        .copied()
        .find(|op| op.mnemonic_var() == name)
}

fn lookup_multdiv(name: &str) -> Option<MultDivOp> {
    MultDivOp::ALL
        .iter()
        .copied()
        .find(|op| op.mnemonic() == name)
}

fn lookup_hilo(name: &str) -> Option<HiLoOp> {
    HiLoOp::ALL.iter().copied().find(|op| op.mnemonic() == name)
}

fn lookup_branchz(name: &str) -> Option<BranchZOp> {
    BranchZOp::ALL
        .iter()
        .copied()
        .find(|op| op.mnemonic() == name)
}

fn lookup_cp1move(name: &str) -> Option<Cp1MoveOp> {
    Cp1MoveOp::ALL
        .iter()
        .copied()
        .find(|op| op.mnemonic() == name)
}

/// Splits `add.d` into (`add`, format). Returns `None` for non-FP names.
fn split_fp(name: &str) -> Option<(&str, FpFmt)> {
    let (stem, suffix) = name.rsplit_once('.')?;
    let fmt = match suffix {
        "s" => FpFmt::Single,
        "d" => FpFmt::Double,
        "w" => FpFmt::Word,
        _ => return None,
    };
    Some((stem, fmt))
}

/// Whether this mnemonic (real or pseudo) ends a basic block with a delay
/// slot, i.e. the assembler must insert a `nop` after it in reorder mode.
pub fn is_control_transfer(mnemonic: &str) -> bool {
    matches!(
        mnemonic,
        "j" | "jal"
            | "jr"
            | "jalr"
            | "beq"
            | "bne"
            | "blez"
            | "bgtz"
            | "bltz"
            | "bgez"
            | "bltzal"
            | "bgezal"
            | "bc1t"
            | "bc1f"
            | "b"
            | "bal"
            | "beqz"
            | "bnez"
            | "blt"
            | "bgt"
            | "ble"
            | "bge"
            | "bltu"
            | "bgtu"
            | "bleu"
            | "bgeu"
    )
}

/// Number of machine words `mnemonic operands` will occupy, *excluding*
/// any reorder-mode delay-slot `nop`.
///
/// Pass 1 of the assembler uses this to lay out addresses before symbols
/// are resolved, so the result must not depend on symbol values; `li`
/// sizes are decided by the literal form of the operand.
///
/// # Errors
///
/// Returns [`AsmErrorKind::UnknownMnemonic`] for unrecognized names and
/// operand-shape errors for malformed uses whose size is ambiguous.
pub fn plan_words(mnemonic: &str, operands: &[Operand], line: usize) -> Result<usize, AsmError> {
    let ops = Ops {
        mnemonic,
        ops: operands,
        line,
    };
    let two_op_pseudo_branch = matches!(
        mnemonic,
        "blt" | "bgt" | "ble" | "bge" | "bltu" | "bgtu" | "bleu" | "bgeu"
    );
    if two_op_pseudo_branch {
        return Ok(2);
    }
    match mnemonic {
        "li" => {
            ops.count(2, "li rt, imm")?;
            let expr = ops.expr(1, "li rt, imm")?;
            if expr.is_constant() {
                let v = expr.eval(&BTreeMap::new(), line)?;
                if (-32768..=0xFFFF).contains(&v) {
                    Ok(1)
                } else {
                    Ok(2)
                }
            } else {
                Ok(2)
            }
        }
        "la" => Ok(2),
        "mul" | "rem" | "remu" => Ok(2),
        "div" | "divu" => Ok(if operands.len() == 3 { 2 } else { 1 }),
        "l.d" | "s.d" => Ok(2),
        name if lookup_mem(name).is_some() || matches!(name, "lwc1" | "swc1" | "l.s" | "s.s") => {
            // Absolute-address form (`lw $t0, sym`) expands via $at.
            match operands.get(1) {
                Some(Operand::Expr(_)) => Ok(2),
                _ => Ok(1),
            }
        }
        name if known_single_word(name) => Ok(1),
        _ => Err(AsmError::new(
            line,
            AsmErrorKind::UnknownMnemonic(mnemonic.to_string()),
        )),
    }
}

fn known_single_word(name: &str) -> bool {
    if lookup_alu(name).is_some()
        || lookup_ialu(name).is_some()
        || lookup_shift_imm(name).is_some()
        || lookup_shift_var(name).is_some()
        || lookup_multdiv(name).is_some()
        || lookup_hilo(name).is_some()
        || lookup_branchz(name).is_some()
        || lookup_cp1move(name).is_some()
    {
        return true;
    }
    if matches!(
        name,
        "nop"
            | "move"
            | "not"
            | "neg"
            | "negu"
            | "jr"
            | "jalr"
            | "j"
            | "jal"
            | "syscall"
            | "break"
            | "lui"
            | "beq"
            | "bne"
            | "b"
            | "bal"
            | "beqz"
            | "bnez"
            | "bc1t"
            | "bc1f"
            | "l.s"
            | "s.s"
    ) {
        return true;
    }
    if let Some((stem, fmt)) = split_fp(name) {
        if fmt != FpFmt::Word
            && matches!(stem, "add" | "sub" | "mul" | "div" | "abs" | "mov" | "neg")
        {
            return true;
        }
        if matches!(stem, "c.eq" | "c.lt" | "c.le") && fmt != FpFmt::Word {
            return true;
        }
        if let Some(rest) = stem.strip_prefix("cvt.") {
            let to_ok = matches!(rest, "s" | "d" | "w");
            return to_ok;
        }
    }
    false
}

/// Encodes `mnemonic operands` at address `addr` into machine
/// instructions (one or more for pseudo instructions).
///
/// # Errors
///
/// Reports unknown mnemonics, operand-shape mismatches, out-of-range
/// immediates, undefined symbols, and unreachable branch targets, all
/// tagged with `line`.
pub fn encode_instr(
    mnemonic: &str,
    operands: &[Operand],
    addr: u32,
    symbols: &BTreeMap<String, u32>,
    line: usize,
) -> Result<Vec<Instruction>, AsmError> {
    let ops = Ops {
        mnemonic,
        ops: operands,
        line,
    };

    // Real three-register ALU ops.
    if let Some(op) = lookup_alu(mnemonic) {
        ops.count(3, "rd, rs, rt")?;
        return Ok(vec![Instruction::RAlu {
            op,
            rd: ops.reg(0, "rd, rs, rt")?,
            rs: ops.reg(1, "rd, rs, rt")?,
            rt: ops.reg(2, "rd, rs, rt")?,
        }]);
    }
    if let Some(op) = lookup_ialu(mnemonic) {
        ops.count(3, "rt, rs, imm")?;
        let rt = ops.reg(0, "rt, rs, imm")?;
        let rs = ops.reg(1, "rt, rs, imm")?;
        let expr = ops.expr(2, "rt, rs, imm")?;
        let imm = if op.sign_extends() {
            eval_i16(expr, symbols, line, "16-bit signed immediate")? as u16
        } else {
            eval_u16(expr, symbols, line, "16-bit unsigned immediate")?
        };
        return Ok(vec![Instruction::IAlu { op, rt, rs, imm }]);
    }
    if let Some(op) = lookup_shift_imm(mnemonic) {
        ops.count(3, "rd, rt, shamt")?;
        let shamt = eval_range(
            ops.expr(2, "rd, rt, shamt")?,
            symbols,
            line,
            0,
            31,
            "shift amount",
        )? as u8;
        return Ok(vec![Instruction::Shift {
            op,
            rd: ops.reg(0, "rd, rt, shamt")?,
            rt: ops.reg(1, "rd, rt, shamt")?,
            shamt,
        }]);
    }
    if let Some(op) = lookup_shift_var(mnemonic) {
        ops.count(3, "rd, rt, rs")?;
        return Ok(vec![Instruction::ShiftV {
            op,
            rd: ops.reg(0, "rd, rt, rs")?,
            rt: ops.reg(1, "rd, rt, rs")?,
            rs: ops.reg(2, "rd, rt, rs")?,
        }]);
    }
    if let Some(op) = lookup_hilo(mnemonic) {
        ops.count(1, "reg")?;
        return Ok(vec![Instruction::HiLo {
            op,
            reg: ops.reg(0, "reg")?,
        }]);
    }
    if let Some(op) = lookup_branchz(mnemonic) {
        ops.count(2, "rs, target")?;
        let rs = ops.reg(0, "rs, target")?;
        let offset = branch_offset(ops.expr(1, "rs, target")?, addr, symbols, line)?;
        return Ok(vec![Instruction::BranchZ { op, rs, offset }]);
    }
    if let Some(op) = lookup_cp1move(mnemonic) {
        ops.count(2, "rt, fs")?;
        return Ok(vec![Instruction::Cp1Move {
            op,
            rt: ops.reg(0, "rt, fs")?,
            fs: ops.fp(1, "rt, fs")?,
        }]);
    }

    match mnemonic {
        "nop" => {
            ops.count(0, "no operands")?;
            Ok(vec![Instruction::NOP])
        }
        "move" => {
            ops.count(2, "rd, rs")?;
            Ok(vec![Instruction::RAlu {
                op: AluOp::Addu,
                rd: ops.reg(0, "rd, rs")?,
                rs: ops.reg(1, "rd, rs")?,
                rt: Reg::ZERO,
            }])
        }
        "not" => {
            ops.count(2, "rd, rs")?;
            Ok(vec![Instruction::RAlu {
                op: AluOp::Nor,
                rd: ops.reg(0, "rd, rs")?,
                rs: ops.reg(1, "rd, rs")?,
                rt: Reg::ZERO,
            }])
        }
        "neg" | "negu" => {
            ops.count(2, "rd, rs")?;
            let op = if mnemonic == "neg" {
                AluOp::Sub
            } else {
                AluOp::Subu
            };
            Ok(vec![Instruction::RAlu {
                op,
                rd: ops.reg(0, "rd, rs")?,
                rs: Reg::ZERO,
                rt: ops.reg(1, "rd, rs")?,
            }])
        }
        "mult" | "multu" => {
            ops.count(2, "rs, rt")?;
            let op = lookup_multdiv(mnemonic).expect("mult/multu in table");
            Ok(vec![Instruction::MultDiv {
                op,
                rs: ops.reg(0, "rs, rt")?,
                rt: ops.reg(1, "rs, rt")?,
            }])
        }
        "div" | "divu" if operands.len() == 2 => {
            let op = lookup_multdiv(mnemonic).expect("div/divu in table");
            Ok(vec![Instruction::MultDiv {
                op,
                rs: ops.reg(0, "rs, rt")?,
                rt: ops.reg(1, "rs, rt")?,
            }])
        }
        "div" | "divu" => {
            ops.count(3, "rd, rs, rt")?;
            let op = lookup_multdiv(mnemonic).expect("div/divu in table");
            Ok(vec![
                Instruction::MultDiv {
                    op,
                    rs: ops.reg(1, "rd, rs, rt")?,
                    rt: ops.reg(2, "rd, rs, rt")?,
                },
                Instruction::HiLo {
                    op: HiLoOp::Mflo,
                    reg: ops.reg(0, "rd, rs, rt")?,
                },
            ])
        }
        "rem" | "remu" => {
            ops.count(3, "rd, rs, rt")?;
            let op = if mnemonic == "rem" {
                MultDivOp::Div
            } else {
                MultDivOp::Divu
            };
            Ok(vec![
                Instruction::MultDiv {
                    op,
                    rs: ops.reg(1, "rd, rs, rt")?,
                    rt: ops.reg(2, "rd, rs, rt")?,
                },
                Instruction::HiLo {
                    op: HiLoOp::Mfhi,
                    reg: ops.reg(0, "rd, rs, rt")?,
                },
            ])
        }
        "mul" => {
            ops.count(3, "rd, rs, rt")?;
            Ok(vec![
                Instruction::MultDiv {
                    op: MultDivOp::Mult,
                    rs: ops.reg(1, "rd, rs, rt")?,
                    rt: ops.reg(2, "rd, rs, rt")?,
                },
                Instruction::HiLo {
                    op: HiLoOp::Mflo,
                    reg: ops.reg(0, "rd, rs, rt")?,
                },
            ])
        }
        "jr" => {
            ops.count(1, "rs")?;
            Ok(vec![Instruction::Jr {
                rs: ops.reg(0, "rs")?,
            }])
        }
        "jalr" => match operands.len() {
            1 => Ok(vec![Instruction::Jalr {
                rd: Reg::RA,
                rs: ops.reg(0, "rs")?,
            }]),
            2 => Ok(vec![Instruction::Jalr {
                rd: ops.reg(0, "rd, rs")?,
                rs: ops.reg(1, "rd, rs")?,
            }]),
            _ => Err(ops.bad("rs or rd, rs")),
        },
        "syscall" | "break" => {
            let code = match operands.len() {
                0 => 0,
                1 => eval_range(
                    ops.expr(0, "code")?,
                    symbols,
                    line,
                    0,
                    (1 << 20) - 1,
                    "code",
                )? as u32,
                _ => return Err(ops.bad("optional code")),
            };
            if mnemonic == "syscall" {
                Ok(vec![Instruction::Syscall { code }])
            } else {
                Ok(vec![Instruction::Break { code }])
            }
        }
        "lui" => {
            ops.count(2, "rt, imm")?;
            let rt = ops.reg(0, "rt, imm")?;
            let imm = eval_u16(ops.expr(1, "rt, imm")?, symbols, line, "lui immediate")?;
            Ok(vec![Instruction::Lui { rt, imm }])
        }
        "beq" | "bne" => {
            ops.count(3, "rs, rt, target")?;
            let op = if mnemonic == "beq" {
                BranchOp::Beq
            } else {
                BranchOp::Bne
            };
            let offset = branch_offset(ops.expr(2, "rs, rt, target")?, addr, symbols, line)?;
            Ok(vec![Instruction::Branch {
                op,
                rs: ops.reg(0, "rs, rt, target")?,
                rt: ops.reg(1, "rs, rt, target")?,
                offset,
            }])
        }
        "beqz" | "bnez" => {
            ops.count(2, "rs, target")?;
            let op = if mnemonic == "beqz" {
                BranchOp::Beq
            } else {
                BranchOp::Bne
            };
            let offset = branch_offset(ops.expr(1, "rs, target")?, addr, symbols, line)?;
            Ok(vec![Instruction::Branch {
                op,
                rs: ops.reg(0, "rs, target")?,
                rt: Reg::ZERO,
                offset,
            }])
        }
        "b" => {
            ops.count(1, "target")?;
            let offset = branch_offset(ops.expr(0, "target")?, addr, symbols, line)?;
            Ok(vec![Instruction::Branch {
                op: BranchOp::Beq,
                rs: Reg::ZERO,
                rt: Reg::ZERO,
                offset,
            }])
        }
        "bal" => {
            ops.count(1, "target")?;
            let offset = branch_offset(ops.expr(0, "target")?, addr, symbols, line)?;
            Ok(vec![Instruction::BranchZ {
                op: BranchZOp::Bgezal,
                rs: Reg::ZERO,
                offset,
            }])
        }
        "blt" | "bgt" | "ble" | "bge" | "bltu" | "bgtu" | "bleu" | "bgeu" => {
            ops.count(3, "rs, rt, target")?;
            let rs = ops.reg(0, "rs, rt, target")?;
            let rt = ops.reg(1, "rs, rt, target")?;
            let unsigned = mnemonic.ends_with('u');
            let slt_op = if unsigned { AluOp::Sltu } else { AluOp::Slt };
            let stem = mnemonic.trim_end_matches('u');
            // blt: slt $at,rs,rt; bne  — bgt: slt $at,rt,rs; bne
            // ble: slt $at,rt,rs; beq  — bge: slt $at,rs,rt; beq
            let (a, b, branch) = match stem {
                "blt" => (rs, rt, BranchOp::Bne),
                "bgt" => (rt, rs, BranchOp::Bne),
                "ble" => (rt, rs, BranchOp::Beq),
                "bge" => (rs, rt, BranchOp::Beq),
                _ => unreachable!("matched above"),
            };
            // The branch word sits 4 bytes after the slt.
            let offset = branch_offset(ops.expr(2, "rs, rt, target")?, addr + 4, symbols, line)?;
            Ok(vec![
                Instruction::RAlu {
                    op: slt_op,
                    rd: Reg::AT,
                    rs: a,
                    rt: b,
                },
                Instruction::Branch {
                    op: branch,
                    rs: Reg::AT,
                    rt: Reg::ZERO,
                    offset,
                },
            ])
        }
        "j" | "jal" => {
            ops.count(1, "target")?;
            let target = jump_target(ops.expr(0, "target")?, symbols, line)?;
            Ok(vec![Instruction::Jump {
                link: mnemonic == "jal",
                target,
            }])
        }
        "bc1t" | "bc1f" => {
            ops.count(1, "target")?;
            let offset = branch_offset(ops.expr(0, "target")?, addr, symbols, line)?;
            Ok(vec![Instruction::Bc1 {
                on_true: mnemonic == "bc1t",
                offset,
            }])
        }
        "li" => {
            ops.count(2, "rt, imm")?;
            let rt = ops.reg(0, "rt, imm")?;
            let expr = ops.expr(1, "rt, imm")?;
            if expr.is_constant() {
                let v = eval_range(
                    expr,
                    symbols,
                    line,
                    i64::from(i32::MIN),
                    i64::from(u32::MAX),
                    "32-bit immediate",
                )?;
                if (0..=0xFFFF).contains(&v) {
                    return Ok(vec![Instruction::IAlu {
                        op: IAluOp::Ori,
                        rt,
                        rs: Reg::ZERO,
                        imm: v as u16,
                    }]);
                }
                if (-32768..0).contains(&v) {
                    return Ok(vec![Instruction::IAlu {
                        op: IAluOp::Addiu,
                        rt,
                        rs: Reg::ZERO,
                        imm: v as i16 as u16,
                    }]);
                }
                let v = v as u32;
                return Ok(vec![
                    Instruction::Lui {
                        rt,
                        imm: (v >> 16) as u16,
                    },
                    Instruction::IAlu {
                        op: IAluOp::Ori,
                        rt,
                        rs: rt,
                        imm: (v & 0xFFFF) as u16,
                    },
                ]);
            }
            encode_la(rt, expr, symbols, line)
        }
        "la" => {
            ops.count(2, "rt, address")?;
            let rt = ops.reg(0, "rt, address")?;
            encode_la(rt, ops.expr(1, "rt, address")?, symbols, line)
        }
        "lwc1" | "swc1" | "l.s" | "s.s" => {
            ops.count(2, "ft, offset(base)")?;
            let store = mnemonic == "swc1" || mnemonic == "s.s";
            let ft = ops.fp(0, "ft, offset(base)")?;
            match &operands[1] {
                Operand::Mem { offset, base } => {
                    let off = eval_i16(offset, symbols, line, "memory offset")?;
                    Ok(vec![Instruction::FpMem {
                        store,
                        ft,
                        base: *base,
                        offset: off,
                    }])
                }
                Operand::Expr(e) => {
                    let (hi, lo) = hi_lo_of(e, symbols, line)?;
                    Ok(vec![
                        Instruction::Lui {
                            rt: Reg::AT,
                            imm: hi,
                        },
                        Instruction::FpMem {
                            store,
                            ft,
                            base: Reg::AT,
                            offset: lo,
                        },
                    ])
                }
                _ => Err(ops.bad("ft, offset(base)")),
            }
        }
        "l.d" | "s.d" => {
            ops.count(2, "ft, offset(base)")?;
            let store = mnemonic == "s.d";
            let ft = ops.fp(0, "ft, offset(base)")?;
            if ft.number() % 2 != 0 {
                return Err(AsmError::new(
                    line,
                    AsmErrorKind::ValueOutOfRange {
                        what: "even FP register for double access",
                        value: i64::from(ft.number()),
                    },
                ));
            }
            let (offset, base) = ops.mem(1, "ft, offset(base)")?;
            let off = eval_range(offset, symbols, line, -32768, 32763, "memory offset")? as i16;
            let ft_hi = FpReg::new(ft.number() + 1).expect("even reg + 1 in range");
            Ok(vec![
                Instruction::FpMem {
                    store,
                    ft,
                    base,
                    offset: off,
                },
                Instruction::FpMem {
                    store,
                    ft: ft_hi,
                    base,
                    offset: off + 4,
                },
            ])
        }
        name => {
            if let Some(op) = lookup_mem(name) {
                ops.count(2, "rt, offset(base)")?;
                let rt = ops.reg(0, "rt, offset(base)")?;
                return match &operands[1] {
                    Operand::Mem { offset, base } => {
                        let off = eval_i16(offset, symbols, line, "memory offset")?;
                        Ok(vec![Instruction::Mem {
                            op,
                            rt,
                            base: *base,
                            offset: off,
                        }])
                    }
                    Operand::Expr(e) => {
                        let (hi, lo) = hi_lo_of(e, symbols, line)?;
                        Ok(vec![
                            Instruction::Lui {
                                rt: Reg::AT,
                                imm: hi,
                            },
                            Instruction::Mem {
                                op,
                                rt,
                                base: Reg::AT,
                                offset: lo,
                            },
                        ])
                    }
                    _ => Err(ops.bad("rt, offset(base)")),
                };
            }
            encode_fp(&ops, name, symbols, line)
        }
    }
}

fn encode_la(
    rt: Reg,
    expr: &Expr,
    symbols: &BTreeMap<String, u32>,
    line: usize,
) -> Result<Vec<Instruction>, AsmError> {
    let (hi, lo) = hi_lo_of(expr, symbols, line)?;
    Ok(vec![
        Instruction::Lui { rt, imm: hi },
        Instruction::IAlu {
            op: IAluOp::Addiu,
            rt,
            rs: rt,
            imm: lo as u16,
        },
    ])
}

/// The `%hi`/`%lo` pair of an address: `(hi << 16) + sign_extend(lo)`
/// reconstructs it.
fn hi_lo_of(
    expr: &Expr,
    symbols: &BTreeMap<String, u32>,
    line: usize,
) -> Result<(u16, i16), AsmError> {
    let v = expr.eval(symbols, line)? as u32;
    let hi = (v.wrapping_add(0x8000) >> 16) as u16;
    let lo = v as u16 as i16;
    Ok((hi, lo))
}

fn encode_fp(
    ops: &Ops<'_>,
    name: &str,
    _symbols: &BTreeMap<String, u32>,
    line: usize,
) -> Result<Vec<Instruction>, AsmError> {
    let Some((stem, fmt)) = split_fp(name) else {
        return Err(AsmError::new(
            line,
            AsmErrorKind::UnknownMnemonic(name.to_string()),
        ));
    };
    // cvt.to.from
    if let Some(to_suffix) = stem.strip_prefix("cvt.") {
        let to = match to_suffix {
            "s" => FpFmt::Single,
            "d" => FpFmt::Double,
            "w" => FpFmt::Word,
            _ => {
                return Err(AsmError::new(
                    line,
                    AsmErrorKind::UnknownMnemonic(name.to_string()),
                ))
            }
        };
        if to == fmt {
            return Err(AsmError::new(
                line,
                AsmErrorKind::UnknownMnemonic(name.to_string()),
            ));
        }
        ops.count(2, "fd, fs")?;
        return Ok(vec![Instruction::FpCvt {
            to,
            from: fmt,
            fd: ops.fp(0, "fd, fs")?,
            fs: ops.fp(1, "fd, fs")?,
        }]);
    }
    if fmt == FpFmt::Word {
        return Err(AsmError::new(
            line,
            AsmErrorKind::UnknownMnemonic(name.to_string()),
        ));
    }
    if let Some(cond_name) = stem.strip_prefix("c.") {
        let cond = FpCond::ALL
            .iter()
            .copied()
            .find(|c| c.mnemonic() == cond_name)
            .ok_or_else(|| AsmError::new(line, AsmErrorKind::UnknownMnemonic(name.to_string())))?;
        ops.count(2, "fs, ft")?;
        return Ok(vec![Instruction::FpCmp {
            cond,
            fmt,
            fs: ops.fp(0, "fs, ft")?,
            ft: ops.fp(1, "fs, ft")?,
        }]);
    }
    if let Some(op) = FpOp::ALL.iter().copied().find(|op| op.mnemonic() == stem) {
        ops.count(3, "fd, fs, ft")?;
        return Ok(vec![Instruction::FpArith {
            op,
            fmt,
            fd: ops.fp(0, "fd, fs, ft")?,
            fs: ops.fp(1, "fd, fs, ft")?,
            ft: ops.fp(2, "fd, fs, ft")?,
        }]);
    }
    if let Some(op) = FpUnaryOp::ALL
        .iter()
        .copied()
        .find(|op| op.mnemonic() == stem)
    {
        ops.count(2, "fd, fs")?;
        return Ok(vec![Instruction::FpUnary {
            op,
            fmt,
            fd: ops.fp(0, "fd, fs")?,
            fs: ops.fp(1, "fd, fs")?,
        }]);
    }
    Err(AsmError::new(
        line,
        AsmErrorKind::UnknownMnemonic(name.to_string()),
    ))
}
