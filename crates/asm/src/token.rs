use ccrp_isa::{FpReg, Reg};

use crate::error::{AsmError, AsmErrorKind};

/// A lexical token of MIPS assembly source.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Mnemonic, directive, or symbol name (may contain `.` and `_`).
    Ident(String),
    /// A general-purpose register (`$t0`, `$29`, ...).
    Reg(Reg),
    /// A floating-point register (`$f12`).
    Fp(FpReg),
    /// An integer literal (decimal, `0x` hex, `0b` binary, or `'c'` char).
    Num(i64),
    /// A floating-point literal (only valid after `.float`/`.double`).
    Float(f64),
    /// A quoted string literal with escapes processed.
    Str(String),
    /// Single punctuation character: `, ( ) : + - * / & | ^ ~ < >`.
    Punct(char),
    /// The `%hi` relocation operator.
    HiOp,
    /// The `%lo` relocation operator.
    LoOp,
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_' || c == '.'
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '.'
}

/// Splits one source line into tokens. Comments (`#` or `;` to end of
/// line) are stripped.
///
/// # Errors
///
/// Returns an [`AsmError`] (tagged with `line_no`) on malformed numbers,
/// unknown registers, unterminated strings, or stray characters.
pub fn tokenize_line(line: &str, line_no: usize) -> Result<Vec<Token>, AsmError> {
    let mut tokens = Vec::new();
    let mut chars = line.char_indices().peekable();
    let err = |kind| AsmError::new(line_no, kind);

    while let Some(&(start, c)) = chars.peek() {
        match c {
            '#' | ';' => break,
            c if c.is_whitespace() => {
                chars.next();
            }
            '"' => {
                chars.next();
                let mut s = String::new();
                let mut closed = false;
                while let Some((_, c)) = chars.next() {
                    match c {
                        '"' => {
                            closed = true;
                            break;
                        }
                        '\\' => {
                            let esc = chars
                                .next()
                                .ok_or_else(|| err(AsmErrorKind::UnterminatedString))?
                                .1;
                            s.push(unescape(esc));
                        }
                        c => s.push(c),
                    }
                }
                if !closed {
                    return Err(err(AsmErrorKind::UnterminatedString));
                }
                tokens.push(Token::Str(s));
            }
            '\'' => {
                chars.next();
                let c = chars
                    .next()
                    .ok_or_else(|| err(AsmErrorKind::UnterminatedString))?
                    .1;
                let value = if c == '\\' {
                    let esc = chars
                        .next()
                        .ok_or_else(|| err(AsmErrorKind::UnterminatedString))?
                        .1;
                    unescape(esc)
                } else {
                    c
                };
                match chars.next() {
                    Some((_, '\'')) => tokens.push(Token::Num(value as i64)),
                    _ => return Err(err(AsmErrorKind::UnterminatedString)),
                }
            }
            '$' => {
                chars.next();
                let mut name = String::from("$");
                while let Some(&(_, c)) = chars.peek() {
                    if c.is_ascii_alphanumeric() {
                        name.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                if let Ok(fp) = name.parse::<FpReg>() {
                    tokens.push(Token::Fp(fp));
                } else {
                    let reg = name.parse::<Reg>().map_err(|e| err(AsmErrorKind::Isa(e)))?;
                    tokens.push(Token::Reg(reg));
                }
            }
            '%' => {
                chars.next();
                let mut name = String::new();
                while let Some(&(_, c)) = chars.peek() {
                    if c.is_ascii_alphabetic() {
                        name.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                match name.as_str() {
                    "hi" => tokens.push(Token::HiOp),
                    "lo" => tokens.push(Token::LoOp),
                    _ => {
                        return Err(err(AsmErrorKind::Syntax(format!(
                            "unknown relocation operator %{name}"
                        ))))
                    }
                }
            }
            c if c.is_ascii_digit() => {
                let mut text = String::new();
                while let Some(&(_, c)) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '.' {
                        text.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                // Scientific notation: 1.5e-3 / 2e+6 need the sign pulled in.
                if text.ends_with('e') || text.ends_with('E') {
                    if let Some(&(_, sign)) = chars.peek() {
                        if sign == '+' || sign == '-' {
                            text.push(sign);
                            chars.next();
                            while let Some(&(_, c)) = chars.peek() {
                                if c.is_ascii_digit() {
                                    text.push(c);
                                    chars.next();
                                } else {
                                    break;
                                }
                            }
                        }
                    }
                }
                tokens.push(parse_number(&text, line_no)?);
                let _ = start;
            }
            c if is_ident_start(c) => {
                let mut name = String::new();
                while let Some(&(_, c)) = chars.peek() {
                    if is_ident_char(c) {
                        name.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                tokens.push(Token::Ident(name));
            }
            ',' | '(' | ')' | ':' | '+' | '-' | '*' | '/' | '&' | '|' | '^' | '~' | '<' | '>' => {
                chars.next();
                tokens.push(Token::Punct(c));
            }
            other => return Err(err(AsmErrorKind::UnexpectedChar(other))),
        }
    }
    Ok(tokens)
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\0',
        other => other,
    }
}

fn parse_number(text: &str, line_no: usize) -> Result<Token, AsmError> {
    let bad = || AsmError::new(line_no, AsmErrorKind::BadNumber(text.to_string()));
    if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        return u64::from_str_radix(hex, 16)
            .map(|v| Token::Num(v as i64))
            .map_err(|_| bad());
    }
    if let Some(bin) = text.strip_prefix("0b").or_else(|| text.strip_prefix("0B")) {
        return u64::from_str_radix(bin, 2)
            .map(|v| Token::Num(v as i64))
            .map_err(|_| bad());
    }
    if text.contains('.') || text.contains('e') || text.contains('E') {
        return text.parse::<f64>().map(Token::Float).map_err(|_| bad());
    }
    text.parse::<i64>().map(Token::Num).map_err(|_| bad())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_instruction_line() {
        let toks = tokenize_line("loop: addiu $t0, $t0, -1  # decrement", 1).unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("loop".into()),
                Token::Punct(':'),
                Token::Ident("addiu".into()),
                Token::Reg(Reg::T0),
                Token::Punct(','),
                Token::Reg(Reg::T0),
                Token::Punct(','),
                Token::Punct('-'),
                Token::Num(1),
            ]
        );
    }

    #[test]
    fn tokenizes_numbers() {
        assert_eq!(tokenize_line("0x1F", 1).unwrap(), vec![Token::Num(31)]);
        assert_eq!(tokenize_line("0b101", 1).unwrap(), vec![Token::Num(5)]);
        assert_eq!(tokenize_line("'A'", 1).unwrap(), vec![Token::Num(65)]);
        assert_eq!(tokenize_line("'\\n'", 1).unwrap(), vec![Token::Num(10)]);
        assert_eq!(tokenize_line("3.5", 1).unwrap(), vec![Token::Float(3.5)]);
        assert_eq!(tokenize_line("1e3", 1).unwrap(), vec![Token::Float(1000.0)]);
        assert_eq!(
            tokenize_line("2.5e-2", 1).unwrap(),
            vec![Token::Float(0.025)]
        );
    }

    #[test]
    fn tokenizes_registers_and_fp() {
        let toks = tokenize_line("mtc1 $a0, $f12", 1).unwrap();
        assert!(matches!(toks[1], Token::Reg(r) if r == Reg::A0));
        assert!(matches!(toks[3], Token::Fp(f) if f.number() == 12));
    }

    #[test]
    fn tokenizes_strings_with_escapes() {
        let toks = tokenize_line(r#".asciiz "hi\n""#, 1).unwrap();
        assert_eq!(toks[1], Token::Str("hi\n".into()));
    }

    #[test]
    fn tokenizes_mem_operand() {
        let toks = tokenize_line("lw $t0, 4($sp)", 1).unwrap();
        assert_eq!(toks[3], Token::Num(4));
        assert_eq!(toks[4], Token::Punct('('));
        assert_eq!(toks[6], Token::Punct(')'));
    }

    #[test]
    fn tokenizes_hi_lo() {
        let toks = tokenize_line("lui $at, %hi(table)", 1).unwrap();
        assert_eq!(toks[3], Token::HiOp);
    }

    #[test]
    fn rejects_garbage() {
        assert!(tokenize_line("@@@", 1).is_err());
        assert!(tokenize_line("\"open", 1).is_err());
        assert!(tokenize_line("$t99", 1).is_err());
        assert!(tokenize_line("0xZZ", 1).is_err());
    }

    #[test]
    fn comments_are_stripped() {
        assert!(tokenize_line("# whole line", 1).unwrap().is_empty());
        assert_eq!(tokenize_line("nop ; done", 1).unwrap().len(), 1);
    }
}
