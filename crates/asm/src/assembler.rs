use std::collections::BTreeMap;

use crate::error::{AsmError, AsmErrorKind};
use crate::expr::Expr;
use crate::image::ProgramImage;
use crate::instrs::{encode_instr, is_control_transfer, plan_words};
use crate::parser::{parse_line, DirArg, Item};

/// How the assembler handles branch delay slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DelaySlotMode {
    /// Insert a `nop` after every control transfer (the classic
    /// `.set reorder` behaviour). Default.
    #[default]
    Reorder,
    /// Emit instructions exactly as written; the programmer fills delay
    /// slots (`.set noreorder`).
    NoReorder,
}

/// Configuration for [`assemble_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AssembleOptions {
    /// Base address of the text segment. The CCRP Line Address Table
    /// indexes shifted text addresses, so text should start at a
    /// 256-byte-aligned address; 0 matches the paper's contiguous
    /// 24-bit instruction space.
    pub text_base: u32,
    /// Base address of the data segment.
    pub data_base: u32,
    /// Initial delay-slot mode (changeable per-region with `.set`).
    pub delay_slots: DelaySlotMode,
}

impl Default for AssembleOptions {
    fn default() -> Self {
        Self {
            text_base: 0x0000_0000,
            data_base: 0x0040_0000,
            delay_slots: DelaySlotMode::Reorder,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Section {
    Text,
    Data,
}

/// Assembles MIPS R2000 source with default options.
///
/// # Errors
///
/// Returns the first [`AsmError`] encountered, tagged with its source line.
///
/// # Examples
///
/// ```
/// use ccrp_asm::assemble;
///
/// let image = assemble("
///     .text
///     main:
///         li   $t0, 5
///         move $a0, $t0
///         jr   $ra
/// ")?;
/// assert!(image.text_size() > 0);
/// # Ok::<(), ccrp_asm::AsmError>(())
/// ```
pub fn assemble(source: &str) -> Result<ProgramImage, AsmError> {
    assemble_with(source, AssembleOptions::default())
}

/// Assembles MIPS R2000 source with explicit options.
///
/// # Errors
///
/// Returns the first [`AsmError`] encountered, tagged with its source line.
pub fn assemble_with(source: &str, options: AssembleOptions) -> Result<ProgramImage, AsmError> {
    let mut items: Vec<(usize, Item)> = Vec::new();
    for (idx, line) in source.lines().enumerate() {
        let line_no = idx + 1;
        for item in parse_line(line, line_no)? {
            items.push((line_no, item));
        }
    }

    // ---- Pass 1: addresses and symbols ----------------------------------
    let mut symbols: BTreeMap<String, u32> = BTreeMap::new();
    let mut section = Section::Text;
    let mut text_lc = options.text_base;
    let mut data_lc = options.data_base;
    let mut mode = options.delay_slots;

    for &(line_no, ref item) in &items {
        match item {
            Item::Label(name) => {
                let addr = match section {
                    Section::Text => text_lc,
                    Section::Data => data_lc,
                };
                if symbols.insert(name.clone(), addr).is_some() {
                    return Err(AsmError::new(
                        line_no,
                        AsmErrorKind::DuplicateLabel(name.clone()),
                    ));
                }
            }
            Item::Instr { mnemonic, operands } => {
                if section != Section::Text {
                    return Err(AsmError::new(
                        line_no,
                        AsmErrorKind::Syntax("instruction outside .text".into()),
                    ));
                }
                let mut words = plan_words(mnemonic, operands, line_no)?;
                if mode == DelaySlotMode::Reorder && is_control_transfer(mnemonic) {
                    words += 1;
                }
                text_lc += (words * 4) as u32;
            }
            Item::Directive { name, args } => {
                directive_pass1(
                    name,
                    args,
                    line_no,
                    &mut section,
                    &mut text_lc,
                    &mut data_lc,
                    &mut mode,
                    &mut symbols,
                )?;
            }
        }
    }

    // ---- Pass 2: encoding ------------------------------------------------
    let mut text: Vec<u8> = Vec::with_capacity((text_lc - options.text_base) as usize);
    let mut data: Vec<u8> = Vec::with_capacity((data_lc - options.data_base) as usize);
    section = Section::Text;
    mode = options.delay_slots;

    for &(line_no, ref item) in &items {
        match item {
            Item::Label(_) => {}
            Item::Instr { mnemonic, operands } => {
                let addr = options.text_base + text.len() as u32;
                let mut planned = plan_words(mnemonic, operands, line_no)?;
                let insert_nop = mode == DelaySlotMode::Reorder && is_control_transfer(mnemonic);
                if insert_nop {
                    planned += 1;
                }
                let mut encoded = encode_instr(mnemonic, operands, addr, &symbols, line_no)?;
                if insert_nop {
                    encoded.push(ccrp_isa::Instruction::NOP);
                }
                if encoded.len() != planned {
                    return Err(AsmError::new(
                        line_no,
                        AsmErrorKind::SizeMismatch {
                            mnemonic: mnemonic.clone(),
                            planned,
                            emitted: encoded.len(),
                        },
                    ));
                }
                for inst in encoded {
                    text.extend_from_slice(&inst.encode().to_le_bytes());
                }
            }
            Item::Directive { name, args } => {
                directive_pass2(
                    name,
                    args,
                    line_no,
                    &mut section,
                    &mut text,
                    &mut data,
                    &options,
                    &mut mode,
                    &symbols,
                )?;
            }
        }
    }

    let entry = symbols.get("main").copied().unwrap_or(options.text_base);
    Ok(ProgramImage::new(
        options.text_base,
        text,
        options.data_base,
        data,
        entry,
        symbols,
    ))
}

fn align_up(value: u32, align: u32) -> u32 {
    debug_assert!(align.is_power_of_two());
    (value + align - 1) & !(align - 1)
}

struct DirSize {
    bytes: u32,
}

/// Computes the size effect of a data-emitting directive without
/// evaluating symbol-dependent arguments (only `.space`/`.align` need a
/// value, and those must be constant).
fn directive_size(
    name: &str,
    args: &[DirArg],
    line_no: usize,
    symbols: &BTreeMap<String, u32>,
) -> Result<Option<DirSize>, AsmError> {
    let unit = match name {
        "byte" => 1,
        "half" => 2,
        "word" => 4,
        "float" => 4,
        "double" => 8,
        "ascii" | "asciiz" => {
            let mut total = 0u32;
            for arg in args {
                match arg {
                    DirArg::Str(s) => {
                        total += s.len() as u32;
                        if name == "asciiz" {
                            total += 1;
                        }
                    }
                    _ => {
                        return Err(AsmError::new(
                            line_no,
                            AsmErrorKind::Syntax(format!(".{name} expects string literals")),
                        ))
                    }
                }
            }
            return Ok(Some(DirSize { bytes: total }));
        }
        "space" => {
            let n = constant_arg(args, line_no, ".space", symbols)?;
            if n < 0 {
                return Err(AsmError::new(
                    line_no,
                    AsmErrorKind::ValueOutOfRange {
                        what: ".space size",
                        value: n,
                    },
                ));
            }
            return Ok(Some(DirSize { bytes: n as u32 }));
        }
        _ => return Ok(None),
    };
    Ok(Some(DirSize {
        bytes: unit * args.len() as u32,
    }))
}

/// Evaluates a directive's single expression argument. Symbols must have
/// been defined on earlier lines (labels or `.equ` constants), so both
/// passes compute identical values.
fn constant_arg(
    args: &[DirArg],
    line_no: usize,
    what: &str,
    symbols: &BTreeMap<String, u32>,
) -> Result<i64, AsmError> {
    match args {
        [DirArg::Expr(e)] => e.eval(symbols, line_no),
        [DirArg::Ident(sym)] => Expr::Sym(sym.clone()).eval(symbols, line_no),
        _ => Err(AsmError::new(
            line_no,
            AsmErrorKind::Syntax(format!("{what} expects one constant expression")),
        )),
    }
}

#[allow(clippy::too_many_arguments)]
fn directive_pass1(
    name: &str,
    args: &[DirArg],
    line_no: usize,
    section: &mut Section,
    text_lc: &mut u32,
    data_lc: &mut u32,
    mode: &mut DelaySlotMode,
    symbols: &mut BTreeMap<String, u32>,
) -> Result<(), AsmError> {
    match name {
        "text" => *section = Section::Text,
        "data" => *section = Section::Data,
        "globl" | "global" | "ent" | "end" | "extern" | "frame" | "mask" | "fmask" | "file" => {}
        "set" => apply_set(args, line_no, mode)?,
        "equ" => {
            let (name, value) = equ_args(args, symbols, line_no)?;
            if symbols.insert(name.clone(), value).is_some() {
                return Err(AsmError::new(line_no, AsmErrorKind::DuplicateLabel(name)));
            }
        }
        "align" => {
            let n = constant_arg(args, line_no, ".align", symbols)?;
            if !(0..=16).contains(&n) {
                return Err(AsmError::new(
                    line_no,
                    AsmErrorKind::ValueOutOfRange {
                        what: ".align exponent",
                        value: n,
                    },
                ));
            }
            let align = 1u32 << n;
            match *section {
                Section::Text => *text_lc = align_up(*text_lc, align),
                Section::Data => *data_lc = align_up(*data_lc, align),
            }
        }
        _ => {
            let Some(size) = directive_size(name, args, line_no, symbols)? else {
                return Err(AsmError::new(
                    line_no,
                    AsmErrorKind::UnknownMnemonic(format!(".{name}")),
                ));
            };
            let lc = match *section {
                Section::Text => text_lc,
                Section::Data => data_lc,
            };
            *lc += size.bytes;
        }
    }
    Ok(())
}

fn apply_set(args: &[DirArg], line_no: usize, mode: &mut DelaySlotMode) -> Result<(), AsmError> {
    match args {
        [DirArg::Ident(word)] => {
            match word.as_str() {
                "reorder" => *mode = DelaySlotMode::Reorder,
                "noreorder" => *mode = DelaySlotMode::NoReorder,
                // accepted and ignored for source compatibility
                "noat" | "at" | "nomacro" | "macro" | "volatile" | "novolatile" => {}
                other => {
                    return Err(AsmError::new(
                        line_no,
                        AsmErrorKind::Syntax(format!("unknown .set option `{other}`")),
                    ))
                }
            }
            Ok(())
        }
        _ => Err(AsmError::new(
            line_no,
            AsmErrorKind::Syntax(".set expects one option name".into()),
        )),
    }
}

fn equ_args(
    args: &[DirArg],
    symbols: &BTreeMap<String, u32>,
    line_no: usize,
) -> Result<(String, u32), AsmError> {
    match args {
        [DirArg::Ident(name), DirArg::Expr(e)] => {
            // .equ may reference previously defined symbols only, so both
            // passes compute identical values.
            let v = e.eval(symbols, line_no)?;
            Ok((name.clone(), v as u32))
        }
        _ => Err(AsmError::new(
            line_no,
            AsmErrorKind::Syntax(".equ expects `name, expression`".into()),
        )),
    }
}

#[allow(clippy::too_many_arguments)]
fn directive_pass2(
    name: &str,
    args: &[DirArg],
    line_no: usize,
    section: &mut Section,
    text: &mut Vec<u8>,
    data: &mut Vec<u8>,
    options: &AssembleOptions,
    mode: &mut DelaySlotMode,
    symbols: &BTreeMap<String, u32>,
) -> Result<(), AsmError> {
    match name {
        "text" => {
            *section = Section::Text;
            return Ok(());
        }
        "data" => {
            *section = Section::Data;
            return Ok(());
        }
        "globl" | "global" | "ent" | "end" | "extern" | "frame" | "mask" | "fmask" | "file"
        | "equ" => return Ok(()),
        "set" => return apply_set(args, line_no, mode),
        _ => {}
    }

    let (buf, base) = match *section {
        Section::Text => (text, options.text_base),
        Section::Data => (data, options.data_base),
    };

    if name == "align" {
        let n = constant_arg(args, line_no, ".align", symbols)?;
        let align = 1u32 << n;
        let target = align_up(base + buf.len() as u32, align);
        buf.resize((target - base) as usize, 0);
        return Ok(());
    }

    // Data directives emit at the current location counter; alignment is
    // the programmer's responsibility via `.align`, as in classic `as`.
    let arg_value = |arg: &DirArg| -> Result<i64, AsmError> {
        match arg {
            DirArg::Expr(e) => e.eval(symbols, line_no),
            DirArg::Ident(sym) => Expr::Sym(sym.clone()).eval(symbols, line_no),
            DirArg::Float(_) | DirArg::Str(_) => Err(AsmError::new(
                line_no,
                AsmErrorKind::Syntax(format!(".{name} expects integer expressions")),
            )),
        }
    };

    match name {
        "byte" => {
            for arg in args {
                let v = arg_value(arg)?;
                if !(-128..=255).contains(&v) {
                    return Err(AsmError::new(
                        line_no,
                        AsmErrorKind::ValueOutOfRange {
                            what: ".byte value",
                            value: v,
                        },
                    ));
                }
                buf.push(v as u8);
            }
        }
        "half" => {
            for arg in args {
                let v = arg_value(arg)?;
                if !(-32768..=65535).contains(&v) {
                    return Err(AsmError::new(
                        line_no,
                        AsmErrorKind::ValueOutOfRange {
                            what: ".half value",
                            value: v,
                        },
                    ));
                }
                buf.extend_from_slice(&(v as u16).to_le_bytes());
            }
        }
        "word" => {
            for arg in args {
                let v = arg_value(arg)?;
                if v < i64::from(i32::MIN) || v > i64::from(u32::MAX) {
                    return Err(AsmError::new(
                        line_no,
                        AsmErrorKind::ValueOutOfRange {
                            what: ".word value",
                            value: v,
                        },
                    ));
                }
                buf.extend_from_slice(&(v as u32).to_le_bytes());
            }
        }
        "float" => {
            for arg in args {
                let v = match arg {
                    DirArg::Float(v) => *v,
                    DirArg::Expr(e) if e.is_constant() => e.eval(symbols, line_no)? as f64,
                    _ => {
                        return Err(AsmError::new(
                            line_no,
                            AsmErrorKind::Syntax(".float expects numeric literals".into()),
                        ))
                    }
                };
                buf.extend_from_slice(&(v as f32).to_le_bytes());
            }
        }
        "double" => {
            for arg in args {
                let v = match arg {
                    DirArg::Float(v) => *v,
                    DirArg::Expr(e) if e.is_constant() => e.eval(symbols, line_no)? as f64,
                    _ => {
                        return Err(AsmError::new(
                            line_no,
                            AsmErrorKind::Syntax(".double expects numeric literals".into()),
                        ))
                    }
                };
                buf.extend_from_slice(&v.to_le_bytes());
            }
        }
        "ascii" | "asciiz" => {
            for arg in args {
                match arg {
                    DirArg::Str(s) => {
                        buf.extend_from_slice(s.as_bytes());
                        if name == "asciiz" {
                            buf.push(0);
                        }
                    }
                    _ => {
                        return Err(AsmError::new(
                            line_no,
                            AsmErrorKind::Syntax(format!(".{name} expects string literals")),
                        ))
                    }
                }
            }
        }
        "space" => {
            let n = constant_arg(args, line_no, ".space", symbols)?;
            buf.resize(buf.len() + n as usize, 0);
        }
        other => {
            return Err(AsmError::new(
                line_no,
                AsmErrorKind::UnknownMnemonic(format!(".{other}")),
            ))
        }
    }
    Ok(())
}
