//! Assembler surface coverage: every pseudo-instruction, every
//! directive, and the error paths, checked against hand-computed
//! encodings.

use ccrp_asm::{assemble, assemble_with, AsmErrorKind, AssembleOptions, DelaySlotMode};
use ccrp_isa::{decode, disassemble_word, Instruction, Reg};

fn words_noreorder(body: &str) -> Vec<u32> {
    assemble(&format!(".set noreorder\n{body}\n"))
        .expect("fragment assembles")
        .text_words()
        .collect()
}

#[test]
fn every_real_mnemonic_assembles() {
    let lines = [
        "add $t0, $t1, $t2",
        "addu $t0, $t1, $t2",
        "sub $t0, $t1, $t2",
        "subu $t0, $t1, $t2",
        "and $t0, $t1, $t2",
        "or $t0, $t1, $t2",
        "xor $t0, $t1, $t2",
        "nor $t0, $t1, $t2",
        "slt $t0, $t1, $t2",
        "sltu $t0, $t1, $t2",
        "sll $t0, $t1, 3",
        "srl $t0, $t1, 3",
        "sra $t0, $t1, 3",
        "sllv $t0, $t1, $t2",
        "srlv $t0, $t1, $t2",
        "srav $t0, $t1, $t2",
        "mult $t0, $t1",
        "multu $t0, $t1",
        "div $t0, $t1",
        "divu $t0, $t1",
        "mfhi $t0",
        "mflo $t0",
        "mthi $t0",
        "mtlo $t0",
        "jr $ra",
        "jalr $t0",
        "jalr $t1, $t0",
        "syscall",
        "break",
        "break 7",
        "addi $t0, $t1, -5",
        "addiu $t0, $t1, -5",
        "slti $t0, $t1, 5",
        "sltiu $t0, $t1, 5",
        "andi $t0, $t1, 0xFF",
        "ori $t0, $t1, 0xFF",
        "xori $t0, $t1, 0xFF",
        "lui $t0, 0x1234",
        "lb $t0, 0($sp)",
        "lbu $t0, 1($sp)",
        "lh $t0, 2($sp)",
        "lhu $t0, 2($sp)",
        "lw $t0, 4($sp)",
        "lwl $t0, 3($sp)",
        "lwr $t0, 0($sp)",
        "sb $t0, 0($sp)",
        "sh $t0, 2($sp)",
        "sw $t0, 4($sp)",
        "swl $t0, 3($sp)",
        "swr $t0, 0($sp)",
        "lwc1 $f2, 0($sp)",
        "swc1 $f2, 4($sp)",
        "mfc1 $t0, $f2",
        "mtc1 $t0, $f2",
        "cfc1 $t0, $f31",
        "ctc1 $t0, $f31",
        "add.s $f0, $f2, $f4",
        "add.d $f0, $f2, $f4",
        "sub.s $f0, $f2, $f4",
        "sub.d $f0, $f2, $f4",
        "mul.s $f0, $f2, $f4",
        "mul.d $f0, $f2, $f4",
        "div.s $f0, $f2, $f4",
        "div.d $f0, $f2, $f4",
        "abs.s $f0, $f2",
        "abs.d $f0, $f2",
        "neg.s $f0, $f2",
        "neg.d $f0, $f2",
        "mov.s $f0, $f2",
        "mov.d $f0, $f2",
        "cvt.s.d $f0, $f2",
        "cvt.s.w $f0, $f2",
        "cvt.d.s $f0, $f2",
        "cvt.d.w $f0, $f2",
        "cvt.w.s $f0, $f2",
        "cvt.w.d $f0, $f2",
        "c.eq.s $f0, $f2",
        "c.eq.d $f0, $f2",
        "c.lt.s $f0, $f2",
        "c.lt.d $f0, $f2",
        "c.le.s $f0, $f2",
        "c.le.d $f0, $f2",
        "nop",
    ];
    for line in lines {
        let words = words_noreorder(line);
        assert_eq!(words.len(), 1, "{line}");
        // Every emitted word decodes and the decode agrees with itself.
        decode(words[0]).unwrap_or_else(|e| panic!("{line}: {e}"));
    }
}

#[test]
fn pseudo_expansions_by_shape() {
    // (source, expected disassembly of the expansion)
    let cases: &[(&str, &[&str])] = &[
        ("move $t0, $t1", &["addu $t0, $t1, $zero"]),
        ("not $t0, $t1", &["nor $t0, $t1, $zero"]),
        ("neg $t0, $t1", &["sub $t0, $zero, $t1"]),
        ("negu $t0, $t1", &["subu $t0, $zero, $t1"]),
        ("li $t0, 7", &["ori $t0, $zero, 0x7"]),
        ("li $t0, -7", &["addiu $t0, $zero, -7"]),
        ("li $t0, 0x00050006", &["lui $t0, 0x5", "ori $t0, $t0, 0x6"]),
        ("mul $t0, $t1, $t2", &["mult $t1, $t2", "mflo $t0"]),
        ("div $t0, $t1, $t2", &["div $t1, $t2", "mflo $t0"]),
        ("rem $t0, $t1, $t2", &["div $t1, $t2", "mfhi $t0"]),
        ("remu $t0, $t1, $t2", &["divu $t1, $t2", "mfhi $t0"]),
        ("l.s $f2, 8($sp)", &["lwc1 $f2, 8($sp)"]),
        ("s.s $f2, 8($sp)", &["swc1 $f2, 8($sp)"]),
        (
            "l.d $f2, 8($sp)",
            &["lwc1 $f2, 8($sp)", "lwc1 $f3, 12($sp)"],
        ),
        (
            "s.d $f2, 8($sp)",
            &["swc1 $f2, 8($sp)", "swc1 $f3, 12($sp)"],
        ),
    ];
    for (source, expected) in cases {
        let words = words_noreorder(source);
        let got: Vec<String> = words.iter().map(|&w| disassemble_word(w)).collect();
        assert_eq!(got, *expected, "{source}");
    }
}

#[test]
fn pseudo_branches_encode_correct_comparisons() {
    // blt/bgt/ble/bge and their unsigned forms, each against a target
    // label two instructions ahead.
    for (mn, slt_args, branch) in [
        ("blt", "$at, $t0, $t1", "bne"),
        ("bgt", "$at, $t1, $t0", "bne"),
        ("ble", "$at, $t1, $t0", "beq"),
        ("bge", "$at, $t0, $t1", "beq"),
    ] {
        let words = words_noreorder(&format!("{mn} $t0, $t1, target\n nop\ntarget: nop"));
        let slt = disassemble_word(words[0]);
        assert_eq!(slt, format!("slt {slt_args}"), "{mn}");
        let b = disassemble_word(words[1]);
        assert!(b.starts_with(branch), "{mn}: {b}");
        // unsigned form swaps slt for sltu
        let words = words_noreorder(&format!("{mn}u $t0, $t1, target\n nop\ntarget: nop"));
        assert!(disassemble_word(words[0]).starts_with("sltu"), "{mn}u");
    }
}

#[test]
fn absolute_load_pseudo_uses_at() {
    let image = assemble(
        "
        .data
var:    .word 42
        .text
main:   lw $t0, var
        ",
    )
    .unwrap();
    let words: Vec<u32> = image.text_words().collect();
    match decode(words[0]).unwrap() {
        Instruction::Lui { rt, .. } => assert_eq!(rt, Reg::AT),
        other => panic!("{other}"),
    }
    match decode(words[1]).unwrap() {
        Instruction::Mem { base, .. } => assert_eq!(base, Reg::AT),
        other => panic!("{other}"),
    }
}

#[test]
fn branch_range_checks() {
    // A branch 40000 instructions away cannot encode.
    let mut source = String::from("main: beq $t0, $t1, far\n");
    for _ in 0..40_000 {
        source.push_str(" nop\n");
    }
    source.push_str("far: nop\n");
    let err = assemble(&source).unwrap_err();
    assert!(matches!(err.kind, AsmErrorKind::BranchOutOfRange { .. }));
}

#[test]
fn delay_slot_modes_differ_in_size() {
    let reorder = assemble("main: jr $ra").unwrap().text_size();
    let noreorder = assemble_with(
        "main: jr $ra",
        AssembleOptions {
            delay_slots: DelaySlotMode::NoReorder,
            ..AssembleOptions::default()
        },
    )
    .unwrap()
    .text_size();
    assert_eq!(reorder, 8);
    assert_eq!(noreorder, 4);
}

#[test]
fn directive_coverage() {
    let image = assemble(
        r#"
        .equ COUNT, 3
        .globl main
        .data
bytes:  .byte 1, -1, 255
halves: .half -2, 0xBEEF
        .align 2
words:  .word COUNT, bytes, 1 << 16
text1:  .ascii "ab"
text2:  .asciiz "cd"
gap:    .space COUNT * 2
        .align 3
dbl:    .double 0.5
flt:    .float -1.5
        .text
main:   jr $ra
        "#,
    )
    .unwrap();
    let base = image.data_base();
    assert_eq!(image.symbol("bytes"), Some(base));
    assert_eq!(image.symbol("halves"), Some(base + 3));
    assert_eq!(image.symbol("words"), Some(base + 8));
    assert_eq!(image.symbol("text1"), Some(base + 20));
    assert_eq!(image.symbol("text2"), Some(base + 22));
    assert_eq!(image.symbol("gap"), Some(base + 25));
    let data = image.data_bytes();
    assert_eq!(data[0], 1);
    assert_eq!(data[1], 0xFF);
    assert_eq!(&data[3..5], &(-2i16 as u16).to_le_bytes());
    assert_eq!(&data[8..12], &3u32.to_le_bytes());
    assert_eq!(&data[12..16], &base.to_le_bytes());
    assert_eq!(&data[16..20], &(1u32 << 16).to_le_bytes());
    assert_eq!(&data[20..22], b"ab");
    assert_eq!(&data[22..25], b"cd\0");
    let dbl_at = image.symbol("dbl").unwrap() - base;
    assert_eq!(
        &data[dbl_at as usize..dbl_at as usize + 8],
        &0.5f64.to_le_bytes()
    );
    let flt_at = image.symbol("flt").unwrap() - base;
    assert_eq!(
        &data[flt_at as usize..flt_at as usize + 4],
        &(-1.5f32).to_le_bytes()
    );
}

type KindCheck = fn(&AsmErrorKind) -> bool;

#[test]
fn error_taxonomy() {
    let cases: &[(&str, KindCheck)] = &[
        ("main: frobnicate $t0", |k| {
            matches!(k, AsmErrorKind::UnknownMnemonic(_))
        }),
        ("main: add $t0, $t1", |k| {
            matches!(k, AsmErrorKind::BadOperands { .. })
        }),
        ("main: sll $t0, $t1, 32", |k| {
            matches!(k, AsmErrorKind::ValueOutOfRange { .. })
        }),
        ("main: lui $t0, 0x10000", |k| {
            matches!(k, AsmErrorKind::ValueOutOfRange { .. })
        }),
        ("main: b missing", |k| {
            matches!(k, AsmErrorKind::UndefinedSymbol(_))
        }),
        ("x: nop\nx: nop", |k| {
            matches!(k, AsmErrorKind::DuplicateLabel(_))
        }),
        (".data\n nop", |k| matches!(k, AsmErrorKind::Syntax(_))),
        (".word 1/0", |k| matches!(k, AsmErrorKind::DivideByZero)),
        (".bogus 1", |k| {
            matches!(k, AsmErrorKind::UnknownMnemonic(_))
        }),
        ("main: l.d $f3, 0($sp)", |k| {
            matches!(k, AsmErrorKind::ValueOutOfRange { .. })
        }),
        ("main: j 2", |k| {
            matches!(k, AsmErrorKind::MisalignedTarget(_))
        }),
    ];
    for (source, matches_kind) in cases {
        let err = assemble(source).unwrap_err();
        assert!(matches_kind(&err.kind), "{source}: got {:?}", err.kind);
        assert!(err.line >= 1, "{source}: errors carry line numbers");
    }
}

#[test]
fn hi_lo_relocation_operators() {
    let image = assemble(
        "
        .data
        .space 0x8100
var:    .word 9
        .text
main:   lui $t0, %hi(var)
        lw  $t1, %lo(var)($t0)
        ",
    )
    .unwrap();
    let var = image.symbol("var").unwrap();
    let words: Vec<u32> = image.text_words().collect();
    let hi = match decode(words[0]).unwrap() {
        Instruction::Lui { imm, .. } => u32::from(imm),
        other => panic!("{other}"),
    };
    let lo = match decode(words[1]).unwrap() {
        Instruction::Mem { offset, .. } => i64::from(offset),
        other => panic!("{other}"),
    };
    assert_eq!(
        ((hi << 16) as i64 + lo) as u32,
        var,
        "%hi/%lo must reconstruct"
    );
}

#[test]
fn comments_and_blank_lines_everywhere() {
    let image = assemble(
        "
        # leading comment
main:                      ; trailing-style comment
        nop                # after instruction

        jr $ra             # done
        ",
    )
    .unwrap();
    assert_eq!(image.text_words().count(), 3); // nop, jr, auto-nop
}
